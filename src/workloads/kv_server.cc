#include "workloads/kv_server.hh"

#include <algorithm>

#include "hash/mix.hh"
#include "util/log.hh"

namespace mosaic
{

namespace
{

/** Unbiased map of a 64-bit hash onto [0, n): the multiply-shift
 *  range mapping (Lemire). A plain `hash % n` over-weights the low
 *  residues whenever n does not divide 2^64. */
std::uint64_t
mapToRange(std::uint64_t hash, std::uint64_t n)
{
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(hash) * n) >> 64);
}

std::uint64_t
hotKeysOf(const KvServerConfig &config)
{
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(config.numKeys) *
               config.hotKeyFraction));
}

} // namespace

KvServer::KvServer(const KvServerConfig &config)
    : config_(config), zipf_(hotKeysOf(config), config.zipfTheta)
{
    ensure(config.numKeys >= 1, "kvserver: need at least one key");
    ensure(config.indexSlotsPerKey > 1.05,
           "kvserver: index must have slack");
    ensure(!config.classes.empty(), "kvserver: need a value class");
    unsigned weight_sum = 0;
    for (const KvValueClass &c : config.classes) {
        ensure(c.bytes >= 1, "kvserver: empty value class");
        weight_sum += c.weightPct;
    }
    ensure(weight_sum == 100, "kvserver: class weights must sum to 100");

    const auto slots = static_cast<std::uint64_t>(
        static_cast<double>(config.numKeys) * config.indexSlotsPerKey);
    index_.resize(slots);

    // Assign each key a size class (hash-weighted) and a slot in its
    // class heap, then insert it into the open-addressing index.
    keyClass_.resize(config.numKeys);
    keySlot_.resize(config.numKeys);
    std::vector<std::uint32_t> classCount(config.classes.size(), 0);
    const std::uint64_t class_salt = mix64(config.seed ^ 0xC1A5'5E5Full);
    for (std::uint64_t key = 0; key < config.numKeys; ++key) {
        const std::uint64_t draw =
            mapToRange(mix64(key ^ class_salt), 100);
        unsigned cls = 0;
        for (std::uint64_t cum = 0; cls + 1 < config.classes.size();
             ++cls) {
            cum += config.classes[cls].weightPct;
            if (draw < cum)
                break;
        }
        keyClass_[key] = static_cast<std::uint8_t>(cls);
        keySlot_[key] = classCount[cls]++;

        std::size_t slot = startSlot(key);
        while (index_[slot].used)
            slot = (slot + 1) % index_.size();
        index_[slot] = Slot{key, true};
    }

    indexRegion_ = arena_.allocate("kvs_index", slots * 16);
    classRegions_.reserve(config.classes.size());
    for (std::size_t c = 0; c < config.classes.size(); ++c) {
        classRegions_.push_back(arena_.allocate(
            "kvs_class" + std::to_string(c),
            std::max<std::uint64_t>(1, classCount[c]) *
                config.classes[c].bytes));
    }
    info_.name = "kvserver";
    info_.footprintBytes = arena_.footprintBytes();
}

std::size_t
KvServer::startSlot(std::uint64_t key) const
{
    return static_cast<std::size_t>(
        mapToRange(mix64(key), index_.size()));
}

std::size_t
KvServer::probe(std::uint64_t key, AccessSink &sink) const
{
    std::size_t slot = startSlot(key);
    while (true) {
        sink.access(indexRegion_.element(slot, 16), false);
        if (!index_[slot].used ||
            (index_[slot].used && index_[slot].key == key))
            return slot;
        slot = (slot + 1) % index_.size();
    }
}

void
KvServer::touchValue(std::uint64_t key, bool write,
                     AccessSink &sink) const
{
    const unsigned cls = keyClass_[key];
    const unsigned bytes = config_.classes[cls].bytes;
    const Addr base = classRegions_[cls].element(keySlot_[key], bytes);
    for (Addr offset = 0; offset < bytes; offset += 64)
        sink.access(base + offset, write);
}

void
KvServer::run(AccessSink &sink)
{
    opCounts_.assign(config_.numKeys, 0);

    if (config_.includeLoadPhase) {
        for (std::uint64_t slot = 0; slot < index_.size(); ++slot) {
            if ((indexRegion_.element(slot, 16) & 63) == 0 || slot == 0)
                sink.access(indexRegion_.element(slot, 16), true);
        }
        for (std::uint64_t key = 0; key < config_.numKeys; ++key)
            touchValue(key, true, sink);
    }

    // Per-phase streams: key identity, hot/cold routing, and the
    // GET/SET decision each own a generator, so changing the skew (or
    // the mix) of one axis cannot shift the draws of another.
    Rng keyRng(mix64(config_.seed ^ 0x4B53'4B45ull));
    Rng routeRng(mix64(config_.seed ^ 0x4B53'4D49ull));
    Rng opRng(mix64(config_.seed ^ 0x4B53'4F50ull));

    for (std::uint64_t op = 0; op < config_.numOps; ++op) {
        const std::uint64_t key = routeRng.chance(config_.hotOpFraction)
                                      ? zipf_.sample(keyRng)
                                      : keyRng.below(config_.numKeys);
        ++opCounts_[key];
        const bool isGet = opRng.chance(config_.getFraction);
        const std::size_t slot = probe(key, sink);
        ensure(index_[slot].used && index_[slot].key == key,
               "kvserver: loaded key must be present");
        touchValue(key, !isGet, sink);
    }
}

} // namespace mosaic
