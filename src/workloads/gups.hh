/**
 * @file
 * GUPS (Giga-Updates Per Second): random read-modify-write updates
 * over a large table. The paper uses it as the adversarial case —
 * accesses are uniformly random, so virtual locality barely exists
 * and mosaic's gains are smallest (§4.1).
 */

#ifndef MOSAIC_WORKLOADS_GUPS_HH_
#define MOSAIC_WORKLOADS_GUPS_HH_

#include <cstdint>

#include "util/random.hh"
#include "workloads/virtual_arena.hh"
#include "workloads/workload.hh"

namespace mosaic
{

/** Parameters of the GUPS workload. */
struct GupsConfig
{
    /** 8-byte table entries; footprint = 8 * tableEntries. */
    std::uint64_t tableEntries = std::uint64_t{1} << 24;

    /** Random read-modify-write updates. */
    std::uint64_t numUpdates = 4'000'000;

    std::uint64_t seed = 1;
};

/** Random-update microbenchmark. */
class Gups : public Workload
{
  public:
    explicit Gups(const GupsConfig &config);

    const WorkloadInfo &info() const override { return info_; }

    void run(AccessSink &sink) override;

  private:
    GupsConfig config_;
    WorkloadInfo info_;
    VirtualArena arena_;
    ArenaRegion tableRegion_;
};

} // namespace mosaic

#endif // MOSAIC_WORKLOADS_GUPS_HH_
