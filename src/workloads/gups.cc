#include "workloads/gups.hh"

namespace mosaic
{

Gups::Gups(const GupsConfig &config)
    : config_(config)
{
    tableRegion_ = arena_.allocate("gups_table", config.tableEntries * 8);
    info_.name = "gups";
    info_.footprintBytes = arena_.footprintBytes();
}

void
Gups::run(AccessSink &sink)
{
    Rng rng(config_.seed ^ 0x60B5u);
    for (std::uint64_t i = 0; i < config_.numUpdates; ++i) {
        const std::uint64_t idx = rng.below(config_.tableEntries);
        const Addr addr = tableRegion_.element(idx, 8);
        sink.access(addr, false); // load
        sink.access(addr, true);  // xor-update store
    }
}

} // namespace mosaic
