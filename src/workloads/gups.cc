#include "workloads/gups.hh"

namespace mosaic
{

Gups::Gups(const GupsConfig &config)
    : config_(config)
{
    tableRegion_ = arena_.allocate("gups_table", config.tableEntries * 8);
    info_.name = "gups";
    info_.footprintBytes = arena_.footprintBytes();
}

void
Gups::run(AccessSink &sink)
{
    // Sampling audit (PR 8): below() is Lemire-rejection uniform (no
    // modulo bias), and the single phase means there is no cross-phase
    // seed reuse to untangle. Do not reseed or split this stream — the
    // fig6 golden table pins it.
    Rng rng(config_.seed ^ 0x60B5u);
    for (std::uint64_t i = 0; i < config_.numUpdates; ++i) {
        const std::uint64_t idx = rng.below(config_.tableEntries);
        const Addr addr = tableRegion_.element(idx, 8);
        sink.access(addr, false); // load
        sink.access(addr, true);  // xor-update store
    }
}

} // namespace mosaic
