#include "workloads/factory.hh"

#include <algorithm>

#include "util/log.hh"
#include "workloads/btree.hh"
#include "workloads/graph500.hh"
#include "workloads/gups.hh"
#include "workloads/kv_server.hh"
#include "workloads/kvstore.hh"
#include "workloads/scan_analytics.hh"
#include "workloads/warp.hh"
#include "workloads/web_session.hh"
#include "workloads/xsbench.hh"

namespace mosaic
{

std::string
workloadName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Graph500:
        return "Graph500";
      case WorkloadKind::BTree:
        return "BTree";
      case WorkloadKind::Gups:
        return "GUPS";
      case WorkloadKind::XsBench:
        return "XSBench";
      case WorkloadKind::KvStore:
        return "KVStore";
      case WorkloadKind::WarpGpu:
        return "WarpGPU";
      case WorkloadKind::KvServer:
        return "KVServer";
      case WorkloadKind::WebSession:
        return "WebSession";
      case WorkloadKind::ScanAnalytics:
        return "ScanAnalytics";
    }
    panic("factory: unknown workload kind");
}

std::unique_ptr<Workload>
makeFig6Workload(WorkloadKind kind, double scale, std::uint64_t seed)
{
    ensure(scale > 0, "factory: scale must be positive");
    const auto scaled = [scale](std::uint64_t v) {
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(static_cast<double>(v) * scale));
    };

    switch (kind) {
      case WorkloadKind::Graph500: {
        Graph500Config c;
        c.numVertices = scaled(std::uint64_t{1} << 20);
        c.edgeFactor = 8;
        c.numBfsRoots = 1;
        c.seed = seed;
        return std::make_unique<Graph500>(c);
      }
      case WorkloadKind::BTree: {
        BTreeConfig c;
        c.numKeys = scaled(std::uint64_t{4} << 20);
        c.numLookups = scaled(400'000);
        c.seed = seed;
        return std::make_unique<BTreeIndex>(c);
      }
      case WorkloadKind::Gups: {
        GupsConfig c;
        c.tableEntries = scaled(std::uint64_t{1} << 24);
        c.numUpdates = scaled(4'000'000);
        c.seed = seed;
        return std::make_unique<Gups>(c);
      }
      case WorkloadKind::XsBench: {
        XsBenchConfig c;
        c.gridpointsPerNuclide =
            static_cast<unsigned>(scaled(8192));
        c.numLookups = scaled(200'000);
        c.seed = seed;
        return std::make_unique<XsBench>(c);
      }
      case WorkloadKind::KvStore: {
        KvStoreConfig c;
        c.numKeys = scaled(std::uint64_t{1} << 19);
        c.numOps = scaled(500'000);
        c.seed = seed;
        return std::make_unique<KvStore>(c);
      }
      case WorkloadKind::WarpGpu: {
        WarpConfig c;
        c.bufferBytes = scaled(std::uint64_t{64} << 20);
        c.numInstructions = scaled(200'000);
        c.seed = seed;
        return std::make_unique<WarpGpu>(c);
      }
      case WorkloadKind::KvServer: {
        KvServerConfig c;
        c.numKeys = scaled(std::uint64_t{1} << 19);
        c.numOps = scaled(400'000);
        c.seed = seed;
        return std::make_unique<KvServer>(c);
      }
      case WorkloadKind::WebSession: {
        WebSessionConfig c;
        c.maxSessions = std::max<std::uint64_t>(2, scaled(4096));
        c.numRequests = scaled(400'000);
        c.meanLifetimeRequests = static_cast<unsigned>(
            std::max<std::uint64_t>(2, scaled(20'000)));
        c.seed = seed;
        return std::make_unique<WebSession>(c);
      }
      case WorkloadKind::ScanAnalytics: {
        ScanAnalyticsConfig c;
        c.rowCount = scaled(2'000'000);
        c.dimRows = scaled(16'384);
        c.aggBytes =
            std::max<std::uint64_t>(4096, scaled(std::uint64_t{1} << 20));
        c.seed = seed;
        return std::make_unique<ScanAnalytics>(c);
      }
    }
    panic("factory: unknown workload kind");
}

std::unique_ptr<Workload>
makeFootprintWorkload(WorkloadKind kind, std::uint64_t footprint_bytes,
                      std::uint64_t seed)
{
    ensure(footprint_bytes >= (std::uint64_t{8} << 20),
           "factory: footprint targets below 8 MiB are not supported");

    switch (kind) {
      case WorkloadKind::Graph500: {
        // footprint ~= n*(16) + 2*(n*ef)*4 + padding = n*(16 + 8*ef)
        Graph500Config c;
        c.edgeFactor = 8;
        c.numVertices = footprint_bytes / (16 + 8ull * c.edgeFactor);
        c.numBfsRoots = 2;
        c.seed = seed;
        return std::make_unique<Graph500>(c);
      }
      case WorkloadKind::BTree: {
        // footprint ~= nodes * 4096, nodes ~= keys/256 * 256/255.
        BTreeConfig c;
        c.numKeys = (footprint_bytes / 16) * 255 / 256;
        c.numLookups = c.numKeys / 4;
        c.seed = seed;
        return std::make_unique<BTreeIndex>(c);
      }
      case WorkloadKind::Gups: {
        GupsConfig c;
        c.tableEntries = footprint_bytes / 8;
        c.numUpdates = 3 * c.tableEntries;
        c.seed = seed;
        return std::make_unique<Gups>(c);
      }
      case WorkloadKind::XsBench: {
        // Per gridpoint-per-nuclide: egrid 8*n + index 4*n*n +
        // nuclide 48*n bytes, with n nuclides.
        XsBenchConfig c;
        const std::uint64_t n = c.numNuclides;
        const std::uint64_t per_gpp = 8 * n + 4 * n * n + 48 * n;
        c.gridpointsPerNuclide =
            static_cast<unsigned>(footprint_bytes / per_gpp);
        ensure(c.gridpointsPerNuclide >= 16,
               "factory: xsbench footprint too small");
        // Enough lookups that nearly every index-grid page is
        // touched (one lookup touches one random unionized row;
        // ~8 rows per page gives > 99.9 % page coverage).
        c.numLookups = 8 * n * c.gridpointsPerNuclide *
                       (4 * n) / pageSize;
        c.seed = seed;
        return std::make_unique<XsBench>(c);
      }
      case WorkloadKind::KvStore: {
        // footprint ~= keys * (16 * slotsPerKey + valueBytes).
        KvStoreConfig c;
        c.numKeys = footprint_bytes /
                    static_cast<std::uint64_t>(
                        16 * c.indexSlotsPerKey + c.valueBytes);
        c.numOps = c.numKeys;
        c.includeLoadPhase = true;
        c.seed = seed;
        return std::make_unique<KvStore>(c);
      }
      case WorkloadKind::WarpGpu: {
        // footprint == buffer; the init sweep covers it, the kernel
        // re-references roughly one more buffer's worth of elements.
        WarpConfig c;
        c.bufferBytes = footprint_bytes;
        c.numInstructions =
            footprint_bytes /
            (std::uint64_t{c.warpWidth} * c.elemBytes);
        c.includeInitSweep = true;
        c.seed = seed;
        return std::make_unique<WarpGpu>(c);
      }
      case WorkloadKind::KvServer: {
        // footprint ~= keys * (16 * slotsPerKey + E[valueBytes]);
        // class counts are hash-assigned, so the realized footprint
        // deviates from the expectation by well under a percent at
        // these key counts.
        KvServerConfig c;
        std::uint64_t weighted = 0;
        for (const KvValueClass &cls : c.classes)
            weighted += std::uint64_t{cls.bytes} * cls.weightPct;
        const double per_key =
            16 * c.indexSlotsPerKey +
            static_cast<double>(weighted) / 100.0;
        c.numKeys = static_cast<std::uint64_t>(
            static_cast<double>(footprint_bytes) / per_key);
        c.numOps = c.numKeys;
        c.includeLoadPhase = true;
        c.seed = seed;
        return std::make_unique<KvServer>(c);
      }
      case WorkloadKind::WebSession: {
        // footprint ~= sessions * (64-byte table entry + working set).
        WebSessionConfig c;
        c.maxSessions = footprint_bytes / (64 + c.sessionBytes);
        c.numRequests = c.maxSessions * 16;
        c.meanLifetimeRequests = static_cast<unsigned>(
            std::max<std::uint64_t>(2, c.numRequests / 8));
        c.includeInitSweep = true;
        c.seed = seed;
        return std::make_unique<WebSession>(c);
      }
      case WorkloadKind::ScanAnalytics: {
        // Dimension and aggregation areas each take 1/32 of the
        // footprint; the rest is split across the fact columns.
        ScanAnalyticsConfig c;
        c.dimRows = footprint_bytes / 32 / 64;
        c.aggBytes = footprint_bytes / 32;
        const std::uint64_t column_bytes =
            footprint_bytes - c.dimRows * 64 - c.aggBytes;
        c.rowCount = column_bytes /
                     (std::uint64_t{c.numColumns} * c.columnBytes);
        c.seed = seed;
        return std::make_unique<ScanAnalytics>(c);
      }
    }
    panic("factory: unknown workload kind");
}

} // namespace mosaic
