/**
 * @file
 * A Graph500-style workload: Kronecker (R-MAT) graph generation, CSR
 * construction, and breadth-first search (the benchmark's kernel 2),
 * emitting the BFS's data references. BFS over an R-MAT graph is the
 * canonical TLB-hostile workload the paper leads with: large
 * footprint, pointer-chasing, poor locality.
 */

#ifndef MOSAIC_WORKLOADS_GRAPH500_HH_
#define MOSAIC_WORKLOADS_GRAPH500_HH_

#include <cstdint>
#include <vector>

#include "util/random.hh"
#include "workloads/virtual_arena.hh"
#include "workloads/workload.hh"

namespace mosaic
{

/** Parameters of the Graph500 workload. */
struct Graph500Config
{
    /** Vertices; need not be a power of two. */
    std::uint64_t numVertices = std::uint64_t{1} << 20;

    /** Directed edges generated = numVertices * edgeFactor. */
    unsigned edgeFactor = 8;

    /** BFS traversals from distinct random roots. */
    unsigned numBfsRoots = 1;

    /** Also emit kernel 1 (CSR construction: degree count, prefix
     *  sum, adjacency scatter) at the start of run(). */
    bool traceConstruction = false;

    std::uint64_t seed = 1;
};

/** R-MAT generation + CSR + BFS. */
class Graph500 : public Workload
{
  public:
    explicit Graph500(const Graph500Config &config);

    const WorkloadInfo &info() const override { return info_; }

    void run(AccessSink &sink) override;

    /** Undirected edge endpoints stored in the CSR (2x generated). */
    std::uint64_t numAdjEntries() const { return adj_.size(); }

    /** Vertices reached by the most recent BFS (for tests). */
    std::uint64_t lastBfsReached() const { return lastReached_; }

  private:
    void generateAndBuild();
    void bfs(std::uint64_t root, AccessSink &sink);
    void traceConstruction(AccessSink &sink);

    Graph500Config config_;
    WorkloadInfo info_;
    VirtualArena arena_;

    /** CSR row offsets (numVertices + 1). */
    std::vector<std::uint64_t> xadj_;

    /** CSR adjacency entries. */
    std::vector<std::uint32_t> adj_;

    /** BFS state, reused across roots. */
    std::vector<std::uint32_t> parent_;
    std::vector<std::uint32_t> queue_;

    ArenaRegion xadjRegion_;
    ArenaRegion adjRegion_;
    ArenaRegion parentRegion_;
    ArenaRegion queueRegion_;

    /** Endpoint pairs as generated (kernel 1 input), kept only to
     *  replay construction accesses faithfully. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
    ArenaRegion edgeRegion_;

    std::uint64_t lastReached_ = 0;
};

} // namespace mosaic

#endif // MOSAIC_WORKLOADS_GRAPH500_HH_
