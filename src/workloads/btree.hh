/**
 * @file
 * A B+-tree index workload: bulk-loaded tree with 4 KiB nodes and
 * random point lookups, modeling the paper's "BTree" benchmark
 * ("index lookups on a B+ Tree data structure", Table 2). Every key
 * probe during the root-to-leaf descent is emitted as a reference
 * into the node's page.
 */

#ifndef MOSAIC_WORKLOADS_BTREE_HH_
#define MOSAIC_WORKLOADS_BTREE_HH_

#include <cstdint>
#include <vector>

#include "util/random.hh"
#include "workloads/virtual_arena.hh"
#include "workloads/workload.hh"

namespace mosaic
{

/** Parameters of the B+-tree workload. */
struct BTreeConfig
{
    /** Keys bulk-loaded into the tree (keys are 2*i, so half of all
     *  probes in the key range miss). */
    std::uint64_t numKeys = std::uint64_t{4} << 20;

    /** Random point lookups to execute. */
    std::uint64_t numLookups = 400'000;

    /** Random inserts interleaved with the lookups (each one may
     *  split nodes up the descent path, like a live index). */
    std::uint64_t numInserts = 0;

    std::uint64_t seed = 1;
};

/** Bulk-loaded B+-tree with random probes. */
class BTreeIndex : public Workload
{
  public:
    /** 4 KiB nodes of 16-byte (key, value-or-child) slots. */
    static constexpr unsigned nodeBytes = 4096;
    static constexpr unsigned slotBytes = 16;
    static constexpr unsigned fanout = nodeBytes / slotBytes;

    explicit BTreeIndex(const BTreeConfig &config);

    const WorkloadInfo &info() const override { return info_; }

    void run(AccessSink &sink) override;

    /** Levels in the tree, leaves included. */
    unsigned height() const { return height_; }

    /** Point lookup used by run(); exposed for tests.
     *  @return true when the key is present. */
    bool lookup(std::uint64_t key, AccessSink &sink);

    /**
     * Insert a key (no value semantics beyond presence). Splits
     * full nodes on the way back up; exposed for tests.
     * @return false when the key already existed.
     */
    bool insert(std::uint64_t key, AccessSink &sink);

    /** Lookups that found their key in the last run(). */
    std::uint64_t lastRunHits() const { return lastHits_; }

    /** Total nodes (grows as inserts split). */
    std::size_t nodeCount() const { return nodes_.size(); }

    /** Node splits performed by inserts. */
    std::uint64_t splits() const { return splits_; }

  private:
    struct Node
    {
        /** Separator or leaf keys, ascending. */
        std::vector<std::uint64_t> keys;

        /** Child node ids (inner) — values are implicit for leaves. */
        std::vector<std::uint32_t> children;

        bool leaf = true;
    };

    std::uint32_t buildLevel(std::vector<std::uint32_t> level_nodes);

    /** Recursive insert; returns the id of a new right sibling and
     *  its separator key when the child split. */
    struct SplitResult
    {
        bool split = false;
        std::uint64_t separator = 0;
        std::uint32_t right = 0;
    };
    SplitResult insertInto(std::uint32_t node_id, std::uint64_t key,
                           bool &inserted, AccessSink &sink);

    /** Emit one access into a node's page. */
    void touchNode(std::uint32_t node_id, std::size_t slot,
                   unsigned field_offset, bool write,
                   AccessSink &sink) const;

    /** Emit the writes of shifting/copying a slot range (one write
     *  per cache line, like a memmove). */
    void touchSlotRange(std::uint32_t node_id, std::size_t first,
                        std::size_t last, AccessSink &sink) const;

    BTreeConfig config_;
    WorkloadInfo info_;
    VirtualArena arena_;
    ArenaRegion nodeRegion_;
    std::vector<Node> nodes_;
    std::uint32_t root_ = 0;
    unsigned height_ = 0;
    std::uint64_t lastHits_ = 0;
    std::uint64_t splits_ = 0;
    std::uint64_t nodeCapacity_ = 0;
};

} // namespace mosaic

#endif // MOSAIC_WORKLOADS_BTREE_HH_
