#include "workloads/btree.hh"

#include <algorithm>

#include "util/log.hh"

namespace mosaic
{

BTreeIndex::BTreeIndex(const BTreeConfig &config)
    : config_(config)
{
    ensure(config.numKeys >= 2, "btree: need at least two keys");

    // Bulk-load leaves with keys 2*i, then build inner levels until a
    // single root remains.
    std::vector<std::uint32_t> level;
    std::uint64_t next_key = 0;
    for (std::uint64_t remaining = config.numKeys; remaining > 0;) {
        const std::uint64_t take =
            std::min<std::uint64_t>(remaining, fanout);
        Node node;
        node.leaf = true;
        node.keys.reserve(take);
        for (std::uint64_t i = 0; i < take; ++i, ++next_key)
            node.keys.push_back(2 * next_key);
        level.push_back(static_cast<std::uint32_t>(nodes_.size()));
        nodes_.push_back(std::move(node));
        remaining -= take;
    }
    height_ = 1;
    root_ = buildLevel(std::move(level));

    // Reserve virtual space for growth: every insert can split at
    // most one node per level plus a new root (bulk-loaded leaves
    // are full, so early inserts split eagerly). Virtual space is
    // cheap; only touched pages count.
    const std::uint64_t capacity =
        nodes_.size() + config.numInserts * (height_ + 2) + 16;
    nodeCapacity_ = capacity;
    nodeRegion_ =
        arena_.allocate("btree_nodes", capacity * nodeBytes);
    info_.name = "btree";
    info_.footprintBytes = arena_.footprintBytes();
}

void
BTreeIndex::touchNode(std::uint32_t node_id, std::size_t slot,
                      unsigned field_offset, bool write,
                      AccessSink &sink) const
{
    sink.access(nodeRegion_.at(std::uint64_t{node_id} * nodeBytes +
                               slot * slotBytes + field_offset),
                write);
}

void
BTreeIndex::touchSlotRange(std::uint32_t node_id, std::size_t first,
                           std::size_t last, AccessSink &sink) const
{
    for (std::size_t s = first; s <= last; s += 64 / slotBytes)
        touchNode(node_id, s, 0, true, sink);
}

std::uint32_t
BTreeIndex::buildLevel(std::vector<std::uint32_t> level_nodes)
{
    if (level_nodes.size() == 1)
        return level_nodes.front();

    std::vector<std::uint32_t> parents;
    for (std::size_t i = 0; i < level_nodes.size(); i += fanout) {
        const std::size_t take =
            std::min<std::size_t>(fanout, level_nodes.size() - i);
        Node node;
        node.leaf = false;
        node.keys.reserve(take);
        node.children.reserve(take);
        for (std::size_t k = 0; k < take; ++k) {
            const Node &child = nodes_[level_nodes[i + k]];
            node.keys.push_back(child.keys.front());
            node.children.push_back(level_nodes[i + k]);
        }
        parents.push_back(static_cast<std::uint32_t>(nodes_.size()));
        nodes_.push_back(std::move(node));
    }
    ++height_;
    return buildLevel(std::move(parents));
}

bool
BTreeIndex::lookup(std::uint64_t key, AccessSink &sink)
{
    std::uint32_t node_id = root_;
    while (true) {
        const Node &node = nodes_[node_id];
        const Addr node_base = nodeRegion_.at(
            std::uint64_t{node_id} * nodeBytes);

        // Binary search over the node's slots; each probe touches
        // the slot's key field within the node page.
        std::size_t lo = 0, hi = node.keys.size();
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            sink.access(node_base + mid * slotBytes, false);
            if (node.keys[mid] <= key)
                lo = mid + 1;
            else
                hi = mid;
        }

        if (node.leaf) {
            if (lo == 0)
                return false;
            // Re-read the matching slot's value field.
            sink.access(node_base + (lo - 1) * slotBytes + 8, false);
            return node.keys[lo - 1] == key;
        }

        const std::size_t child_idx = lo == 0 ? 0 : lo - 1;
        sink.access(node_base + child_idx * slotBytes + 8, false);
        node_id = node.children[child_idx];
    }
}

BTreeIndex::SplitResult
BTreeIndex::insertInto(std::uint32_t node_id, std::uint64_t key,
                       bool &inserted, AccessSink &sink)
{
    // Binary search probes, as in lookup().
    {
        const Node &node = nodes_[node_id];
        std::size_t lo = 0, hi = node.keys.size();
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            touchNode(node_id, mid, 0, false, sink);
            if (node.keys[mid] <= key)
                lo = mid + 1;
            else
                hi = mid;
        }

        if (node.leaf) {
            if (lo > 0 && node.keys[lo - 1] == key) {
                inserted = false;
                return {};
            }
            Node &leaf = nodes_[node_id];
            leaf.keys.insert(leaf.keys.begin() +
                                 static_cast<std::ptrdiff_t>(lo),
                             key);
            touchSlotRange(node_id, lo, leaf.keys.size() - 1, sink);
            inserted = true;
        } else {
            const std::size_t child_idx = lo == 0 ? 0 : lo - 1;
            touchNode(node_id, child_idx, 8, false, sink);
            const std::uint32_t child = node.children[child_idx];
            const SplitResult below =
                insertInto(child, key, inserted, sink);
            if (below.split) {
                // Re-fetch: the recursion may have grown nodes_.
                Node &inner = nodes_[node_id];
                inner.keys.insert(
                    inner.keys.begin() +
                        static_cast<std::ptrdiff_t>(child_idx + 1),
                    below.separator);
                inner.children.insert(
                    inner.children.begin() +
                        static_cast<std::ptrdiff_t>(child_idx + 1),
                    below.right);
                touchSlotRange(node_id, child_idx + 1,
                               inner.keys.size() - 1, sink);
            }
        }
    }

    // Split on overflow (identical for leaves and inner nodes).
    Node &node = nodes_[node_id];
    if (node.keys.size() <= fanout)
        return {};
    ensure(nodes_.size() < nodeCapacity_,
           "btree: node arena exhausted (raise numInserts headroom)");
    ++splits_;
    const std::size_t half = node.keys.size() / 2;
    Node right;
    right.leaf = node.leaf;
    right.keys.assign(node.keys.begin() +
                          static_cast<std::ptrdiff_t>(half),
                      node.keys.end());
    if (!node.leaf) {
        right.children.assign(node.children.begin() +
                                  static_cast<std::ptrdiff_t>(half),
                              node.children.end());
        node.children.resize(half);
    }
    node.keys.resize(half);
    const auto right_id = static_cast<std::uint32_t>(nodes_.size());
    const std::uint64_t separator = right.keys.front();
    nodes_.push_back(std::move(right));
    // The copy-out writes the new node's slots.
    touchSlotRange(right_id, 0, nodes_[right_id].keys.size() - 1, sink);
    return {true, separator, right_id};
}

bool
BTreeIndex::insert(std::uint64_t key, AccessSink &sink)
{
    bool inserted = false;
    const SplitResult top = insertInto(root_, key, inserted, sink);
    if (top.split) {
        ensure(nodes_.size() < nodeCapacity_,
               "btree: node arena exhausted");
        Node new_root;
        new_root.leaf = false;
        new_root.keys = {nodes_[root_].keys.front(), top.separator};
        new_root.children = {root_, top.right};
        root_ = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(std::move(new_root));
        touchSlotRange(root_, 0, 1, sink);
        ++height_;
    }
    return inserted;
}

void
BTreeIndex::run(AccessSink &sink)
{
    Rng rng(config_.seed ^ 0xB7EEu);
    lastHits_ = 0;
    const std::uint64_t ops = config_.numLookups + config_.numInserts;
    std::uint64_t inserts_left = config_.numInserts;
    for (std::uint64_t i = 0; i < ops; ++i) {
        // Interleave inserts evenly among the lookups.
        const bool do_insert =
            inserts_left > 0 &&
            (config_.numLookups == 0 ||
             i % (ops / std::max<std::uint64_t>(1, config_.numInserts) +
                  1) == 0);
        if (do_insert) {
            --inserts_left;
            // Odd keys: never loaded, so most inserts succeed.
            insert(rng.below(2 * config_.numKeys) | 1, sink);
        } else {
            const std::uint64_t key = rng.below(2 * config_.numKeys);
            lastHits_ += lookup(key, sink) ? 1 : 0;
        }
    }
}

} // namespace mosaic
