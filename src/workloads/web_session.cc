#include "workloads/web_session.hh"

#include <algorithm>

#include "hash/mix.hh"
#include "util/log.hh"

namespace mosaic
{

namespace
{

/** 64-byte session-table entry per slot. */
constexpr unsigned tableEntryBytes = 64;

/** Bytes initialized on session creation (header pages). */
constexpr std::uint64_t initBytes = 4096;

} // namespace

WebSession::WebSession(const WebSessionConfig &config)
    : config_(config)
{
    ensure(config.maxSessions >= 2, "websession: need session slots");
    ensure(config.sessionBytes >= 64,
           "websession: session working set too small");
    ensure(config.arrivalEvery >= 1, "websession: bad arrival rate");
    ensure(config.meanLifetimeRequests >= 2,
           "websession: lifetime too short");
    ensure(config.requestTouchBytes >= 64 &&
               config.requestTouchBytes <= config.sessionBytes,
           "websession: request touch must fit a session");

    table_ = arena_.allocate("ws_table",
                             config.maxSessions * tableEntryBytes);
    slab_ = arena_.allocate("ws_slab",
                            config.maxSessions * config.sessionBytes);
    info_.name = "websession";
    info_.footprintBytes = arena_.footprintBytes();
}

void
WebSession::createSession(std::uint64_t slot, std::uint64_t expiry,
                          AccessSink &sink)
{
    sink.access(table_.element(slot, tableEntryBytes), true);
    const Addr base = slab_.element(slot, config_.sessionBytes);
    const std::uint64_t init =
        std::min<std::uint64_t>(initBytes, config_.sessionBytes);
    for (Addr off = 0; off < init; off += 64)
        sink.access(base + off, true);

    active_.push_back(slot);
    expiryHeap_.emplace_back(expiry, slot);
    std::push_heap(expiryHeap_.begin(), expiryHeap_.end(),
                   std::greater<>());
    ++created_;
    peakActive_ = std::max<std::uint64_t>(peakActive_, active_.size());
}

void
WebSession::run(AccessSink &sink)
{
    created_ = 0;
    expired_ = 0;
    peakActive_ = 0;
    active_.clear();
    expiryHeap_.clear();
    freeSlots_.clear();
    for (std::uint64_t s = config_.maxSessions; s > 0; --s)
        freeSlots_.push_back(s - 1); // pop order: slot 0 first

    if (config_.includeInitSweep) {
        for (std::uint64_t off = 0; off < table_.bytes; off += 64)
            sink.access(table_.at(off), true);
        for (std::uint64_t off = 0; off < slab_.bytes; off += 64)
            sink.access(slab_.at(off), true);
    }

    // Per-phase streams: arrivals, lifetimes, session picks, and
    // within-session offsets are independent generators.
    Rng arriveRng(mix64(config_.seed ^ 0x5753'4152ull));
    Rng lifeRng(mix64(config_.seed ^ 0x5753'4C49ull));
    Rng pickRng(mix64(config_.seed ^ 0x5753'5049ull));
    Rng offsetRng(mix64(config_.seed ^ 0x5753'4F46ull));

    const auto drawLifetime = [&]() -> std::uint64_t {
        const std::uint64_t mean = config_.meanLifetimeRequests;
        return mean / 2 + lifeRng.below(std::max<std::uint64_t>(1, mean));
    };

    // Warm-up: a quarter of the slots start occupied, with staggered
    // lifetimes so expiries begin immediately rather than in a burst.
    const std::uint64_t warm = std::max<std::uint64_t>(
        1, config_.maxSessions / 4);
    for (std::uint64_t i = 0; i < warm; ++i) {
        const std::uint64_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        createSession(slot, drawLifetime() * (i + 1) / warm, sink);
    }

    for (std::uint64_t tick = 0; tick < config_.numRequests; ++tick) {
        // Expiries first: tear down every session past its deadline
        // (a header write models the free), recycling its slot.
        while (!expiryHeap_.empty() && expiryHeap_.front().first <= tick) {
            std::pop_heap(expiryHeap_.begin(), expiryHeap_.end(),
                          std::greater<>());
            const std::uint64_t slot = expiryHeap_.back().second;
            expiryHeap_.pop_back();
            sink.access(table_.element(slot, tableEntryBytes), true);
            const auto it =
                std::find(active_.begin(), active_.end(), slot);
            ensure(it != active_.end(), "websession: expiring dead slot");
            *it = active_.back();
            active_.pop_back();
            freeSlots_.push_back(slot);
            ++expired_;
        }

        // Arrival?
        if (!freeSlots_.empty() &&
            arriveRng.chance(1.0 / config_.arrivalEvery)) {
            const std::uint64_t slot = freeSlots_.back();
            freeSlots_.pop_back();
            createSession(slot, tick + drawLifetime(), sink);
        }

        if (active_.empty())
            continue;

        // Serve one request against a recency-skewed session pick
        // (min of two uniforms — triangular skew, integer math only).
        const std::uint64_t a = pickRng.below(active_.size());
        const std::uint64_t b = pickRng.below(active_.size());
        const std::uint64_t slot = active_[std::min(a, b)];

        sink.access(table_.element(slot, tableEntryBytes), false);
        const Addr base = slab_.element(slot, config_.sessionBytes);
        const std::uint64_t window =
            config_.sessionBytes - config_.requestTouchBytes;
        const Addr start =
            window == 0 ? 0 : (offsetRng.below(window / 64 + 1)) * 64;
        for (Addr off = 0; off < config_.requestTouchBytes; off += 64)
            sink.access(base + start + off, off == 0);
    }
}

} // namespace mosaic
