/**
 * @file
 * The workload-engine interface. Each engine executes a real
 * algorithm (BFS, B+-tree probes, random updates, cross-section
 * lookups) over data structures laid out by a VirtualArena, emitting
 * every data reference into an AccessSink.
 */

#ifndef MOSAIC_WORKLOADS_WORKLOAD_HH_
#define MOSAIC_WORKLOADS_WORKLOAD_HH_

#include <cstdint>
#include <memory>
#include <string>

#include "workloads/access_sink.hh"

namespace mosaic
{

/** Static description of a constructed workload. */
struct WorkloadInfo
{
    std::string name;

    /** Bytes of simulated virtual memory the workload uses. */
    std::uint64_t footprintBytes = 0;
};

/** A runnable workload engine. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const WorkloadInfo &info() const = 0;

    /** Execute the workload, emitting its reference stream. May be
     *  called repeatedly; each run re-executes the algorithm. */
    virtual void run(AccessSink &sink) = 0;
};

} // namespace mosaic

#endif // MOSAIC_WORKLOADS_WORKLOAD_HH_
