#include "workloads/scan_analytics.hh"

#include <algorithm>

#include "hash/mix.hh"
#include "util/log.hh"

namespace mosaic
{

ScanAnalytics::ScanAnalytics(const ScanAnalyticsConfig &config)
    : config_(config)
{
    ensure(config.numColumns >= 1, "scan: need a column");
    ensure(config.rowCount >= 1, "scan: need rows");
    ensure(config.columnBytes >= 1, "scan: bad element width");
    ensure(config.dimRows >= 1, "scan: need dimension rows");
    ensure(config.aggBytes >= 64, "scan: aggregation area too small");
    ensure(config.lookupEvery >= 1, "scan: bad lookup cadence");
    ensure(config.passes >= 1, "scan: need at least one pass");

    columns_.reserve(config.numColumns);
    for (unsigned c = 0; c < config.numColumns; ++c)
        columns_.push_back(arena_.allocate(
            "scan_col" + std::to_string(c),
            config.rowCount * config.columnBytes));
    dim_ = arena_.allocate("scan_dim", config.dimRows * 64);
    agg_ = arena_.allocate("scan_agg", config.aggBytes);
    info_.name = "scananalytics";
    info_.footprintBytes = arena_.footprintBytes();
}

void
ScanAnalytics::run(AccessSink &sink)
{
    linesScanned_ = 0;
    lookups_ = 0;

    // Build phases: the dimension table is written sequentially (the
    // hash-build side of the join), the aggregation area initialized.
    for (std::uint64_t off = 0; off < dim_.bytes; off += 64)
        sink.access(dim_.at(off), true);
    for (std::uint64_t off = 0; off < agg_.bytes; off += 64)
        sink.access(agg_.at(off), true);

    Rng probeRng(mix64(config_.seed ^ 0x5343'4C4Bull));
    const std::uint64_t aggLines = agg_.bytes / 64;

    for (unsigned pass = 0; pass < config_.passes; ++pass) {
        for (const ArenaRegion &column : columns_) {
            std::uint64_t sinceLookup = 0;
            for (std::uint64_t off = 0; off < column.bytes; off += 64) {
                sink.access(column.at(off), false);
                ++linesScanned_;
                if (++sinceLookup < config_.lookupEvery)
                    continue;
                sinceLookup = 0;
                sink.access(
                    dim_.element(probeRng.below(config_.dimRows), 64),
                    false);
                sink.access(agg_.element(probeRng.below(aggLines), 64),
                            true);
                ++lookups_;
            }
        }
    }
}

} // namespace mosaic
