/**
 * @file
 * A warp-style GPU access engine, after the Mosaic-for-GPUs line of
 * work (Ausavarungnirun et al., PAPERS.md): many warps execute in
 * round-robin, and each warp instruction issues one memory reference
 * per lane. Three instruction shapes cover the canonical GPU access
 * patterns:
 *
 *  - coalesced: lane l reads cursor + l*elemBytes — all lanes land in
 *    one or two cache segments (and almost always one page);
 *  - strided: lane l reads cursor + l*laneStrideBytes — the
 *    column-of-a-pitched-matrix pattern; with a page-crossing lane
 *    stride, consecutive lane references step the VPN by a constant,
 *    which is exactly the food a stride prefetcher confirms on;
 *  - divergent: every lane references an independent random element.
 *
 * The buffer is partitioned into per-warp slices (a grid-stride
 * loop's block mapping), and warps interleave instruction by
 * instruction, so the emitted stream is the interleaving of numWarps
 * structured lane streams.
 */

#ifndef MOSAIC_WORKLOADS_WARP_HH_
#define MOSAIC_WORKLOADS_WARP_HH_

#include <cstdint>
#include <vector>

#include "util/random.hh"
#include "workloads/virtual_arena.hh"
#include "workloads/workload.hh"

namespace mosaic
{

/** Parameters of the warp engine. */
struct WarpConfig
{
    /** Lanes per warp (one memory reference each per instruction). */
    unsigned warpWidth = 32;

    /** Warps scheduled round-robin (interleaved lane streams). */
    unsigned numWarps = 8;

    /** Element size of coalesced accesses. */
    unsigned elemBytes = 8;

    /** Per-lane stride of strided instructions. Defaults to two
     *  pages (an 8 KiB-pitch matrix column), so lane references walk
     *  the VPN space at a constant non-zero stride. */
    std::uint64_t laneStrideBytes = 8192;

    /** Of the non-divergent instructions, the fraction that are
     *  coalesced (the rest are strided). */
    double coalesceFactor = 0.6;

    /** Probability an instruction diverges (random per-lane). */
    double divergenceRate = 0.05;

    /** Fraction of instructions that are stores. */
    double storeFraction = 0.3;

    /** Device buffer size (the engine's footprint). */
    std::uint64_t bufferBytes = std::uint64_t{64} << 20;

    /** Warp instructions to execute (references = this * warpWidth). */
    std::uint64_t numInstructions = 300'000;

    /** Write the whole buffer once before the kernel (models the
     *  host-side initialization / cudaMemset); the memory-pressure
     *  experiments need the whole footprint touched. */
    bool includeInitSweep = false;

    std::uint64_t seed = 1;
};

/** Interleaved warp lane streams over a partitioned device buffer. */
class WarpGpu : public Workload
{
  public:
    explicit WarpGpu(const WarpConfig &config);

    const WorkloadInfo &info() const override { return info_; }

    void run(AccessSink &sink) override;

    /** Warp instructions issued during the last run(). */
    std::uint64_t instructionsIssued() const { return instructions_; }

    /** 128-byte memory transactions those instructions generated
     *  (distinct segments per instruction, summed). The coalescing
     *  ratio is transactions/instructions: 1–2 when fully coalesced,
     *  warpWidth when fully scattered. */
    std::uint64_t memoryTransactions() const { return transactions_; }

    /** Divergent instructions during the last run(). */
    std::uint64_t divergentInstructions() const { return divergent_; }

  private:
    WarpConfig config_;
    WorkloadInfo info_;
    VirtualArena arena_;
    ArenaRegion buffer_;
    std::uint64_t sliceBytes_ = 0;

    std::uint64_t instructions_ = 0;
    std::uint64_t transactions_ = 0;
    std::uint64_t divergent_ = 0;
};

} // namespace mosaic

#endif // MOSAIC_WORKLOADS_WARP_HH_
