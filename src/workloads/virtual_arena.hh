/**
 * @file
 * A model of a process's virtual address-space layout. Workload
 * engines keep their data structures in ordinary host memory but
 * report accesses at virtual addresses assigned by this arena, so the
 * simulated reference stream has a realistic layout: each array is a
 * virtually contiguous region.
 *
 * Regions are aligned to the largest mosaic page (256 KiB), which
 * models the paper's suggestion that applications be linked with
 * alignment directives (§2.1).
 */

#ifndef MOSAIC_WORKLOADS_VIRTUAL_ARENA_HH_
#define MOSAIC_WORKLOADS_VIRTUAL_ARENA_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "util/log.hh"
#include "util/types.hh"

namespace mosaic
{

/** A named, virtually contiguous region of the address space. */
struct ArenaRegion
{
    std::string name;
    Addr base = 0;
    std::uint64_t bytes = 0;

    /** Virtual address of byte index i of this region. */
    Addr
    at(std::uint64_t i) const
    {
        return base + i;
    }

    /** Virtual address of element i of an array of element_size. */
    Addr
    element(std::uint64_t i, unsigned element_size) const
    {
        return base + i * element_size;
    }
};

/** A bump allocator over the virtual address space. */
class VirtualArena
{
  public:
    /** Regions are aligned to this boundary (max mosaic page). */
    static constexpr Addr regionAlign = Addr{64} * pageSize;

    /** @param base first virtual address handed out (heap start). */
    explicit VirtualArena(Addr base = Addr{1} << 30)
        : next_(alignUp(base))
    {
    }

    /** Reserve a region of at least @p bytes. */
    ArenaRegion
    allocate(std::string name, std::uint64_t bytes)
    {
        ensure(bytes > 0, "arena: empty region");
        ArenaRegion region{std::move(name), next_, bytes};
        next_ = alignUp(next_ + bytes);
        ensure(next_ < (Addr{1} << (vpnBits + pageShift)),
               "arena: virtual address space exhausted");
        regions_.push_back(region);
        return region;
    }

    /** Total bytes reserved (the workload's memory footprint). */
    std::uint64_t
    footprintBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &r : regions_)
            total += r.bytes;
        return total;
    }

    /** Footprint in 4 KiB pages, counting per-region rounding. */
    std::uint64_t
    footprintPages() const
    {
        std::uint64_t total = 0;
        for (const auto &r : regions_)
            total += (r.bytes + pageSize - 1) / pageSize;
        return total;
    }

    const std::vector<ArenaRegion> &regions() const { return regions_; }

  private:
    static Addr
    alignUp(Addr a)
    {
        return (a + regionAlign - 1) & ~(regionAlign - 1);
    }

    Addr next_;
    std::vector<ArenaRegion> regions_;
};

} // namespace mosaic

#endif // MOSAIC_WORKLOADS_VIRTUAL_ARENA_HH_
