/**
 * @file
 * The memory-reference stream interface between workload engines and
 * the translation simulator: workloads execute their algorithms and
 * emit each data access (virtual address + read/write) into a sink.
 */

#ifndef MOSAIC_WORKLOADS_ACCESS_SINK_HH_
#define MOSAIC_WORKLOADS_ACCESS_SINK_HH_

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace mosaic
{

/** One memory reference. */
struct MemRef
{
    Addr vaddr = 0;
    bool write = false;
};

/** Receives the reference stream of a running workload. */
class AccessSink
{
  public:
    virtual ~AccessSink() = default;

    /** One data reference at a virtual byte address. */
    virtual void access(Addr vaddr, bool write) = 0;

    /**
     * Drain any buffered references. Workload engines call this (via
     * the driver) before reading stats off the consumer; sinks that
     * forward eagerly need not override it.
     */
    virtual void flush() {}
};

/** Counts references and touched pages; useful in tests. */
class CountingSink : public AccessSink
{
  public:
    void
    access(Addr vaddr, bool write) override
    {
        ++accesses_;
        writes_ += write ? 1 : 0;
        const Vpn vpn = vpnOf(vaddr);
        if (vpn < minVpn_)
            minVpn_ = vpn;
        if (vpn > maxVpn_)
            maxVpn_ = vpn;
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t writes() const { return writes_; }
    Vpn minVpn() const { return minVpn_; }
    Vpn maxVpn() const { return maxVpn_; }

  private:
    std::uint64_t accesses_ = 0;
    std::uint64_t writes_ = 0;
    Vpn minVpn_ = invalidVpn;
    Vpn maxVpn_ = 0;
};

/** Records the full trace; for tests on small workloads only. */
class VectorSink : public AccessSink
{
  public:
    void
    access(Addr vaddr, bool write) override
    {
        trace_.push_back(MemRef{vaddr, write});
    }

    const std::vector<MemRef> &trace() const { return trace_; }

  private:
    std::vector<MemRef> trace_;
};

/** Duplicates a stream into several sinks. */
class TeeSink : public AccessSink
{
  public:
    void add(AccessSink *sink) { sinks_.push_back(sink); }

    void
    access(Addr vaddr, bool write) override
    {
        for (AccessSink *sink : sinks_)
            sink->access(vaddr, write);
    }

    void
    flush() override
    {
        for (AccessSink *sink : sinks_)
            sink->flush();
    }

  private:
    std::vector<AccessSink *> sinks_;
};

} // namespace mosaic

#endif // MOSAIC_WORKLOADS_ACCESS_SINK_HH_
