/**
 * @file
 * A generic, stable Iceberg hash table (Bender et al., "All-Purpose
 * Hashing"), the hashing scheme underlying Mosaic page allocation
 * (paper §2.3).
 *
 * Structure: the table is an array of buckets; each bucket has a
 * large *front yard* of f slots and a small *backyard* of b slots.
 * A key hashes to one front-yard bucket (h0) and to d backyard
 * buckets (h1..hd). Insertion first tries the front yard; if it is
 * full, the key goes to the emptiest of its d candidate backyards
 * (power of d choices).
 *
 * The three properties Mosaic needs hold by construction:
 *  - low associativity: a key can live in only f + d*b slots;
 *  - stability: an item never moves after insertion;
 *  - high utilization: with f = 56, b = 8, d = 6 the first failed
 *    insertion empirically occurs at ~98 % load (Table 3).
 */

#ifndef MOSAIC_ICEBERG_ICEBERG_TABLE_HH_
#define MOSAIC_ICEBERG_ICEBERG_TABLE_HH_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "hash/tabulation.hh"
#include "util/log.hh"

namespace mosaic
{

/** Static shape parameters of an iceberg table / mosaic memory. */
struct IcebergConfig
{
    /** Number of buckets. */
    std::size_t buckets = 1024;

    /** Front-yard slots per bucket (f). */
    unsigned frontSlots = 56;

    /** Backyard slots per bucket (b). */
    unsigned backSlots = 8;

    /** Number of backyard candidate buckets (d). */
    unsigned backChoices = 6;

    /** Seed for the tabulation hash tables. */
    std::uint64_t seed = 1;

    /** Total slots: f + b per bucket. */
    std::size_t capacity() const
    {
        return buckets * (frontSlots + backSlots);
    }

    /** Associativity h = f + d*b (104 with paper defaults). */
    unsigned associativity() const
    {
        return frontSlots + backChoices * backSlots;
    }
};

/** Which yard a slot belongs to. */
enum class Yard : std::uint8_t { Front, Back };

/** Identifies one slot in the table. */
struct SlotRef
{
    Yard yard = Yard::Front;
    std::size_t bucket = 0;
    unsigned slot = 0;

    bool operator==(const SlotRef &) const = default;
};

/**
 * The iceberg hash table, mapping 64-bit keys to values.
 *
 * @tparam Value the mapped type; must be movable.
 */
template <typename Value>
class IcebergTable
{
  public:
    explicit IcebergTable(const IcebergConfig &config)
        : config_(config),
          hasher_(config.seed),
          buckets_(config.buckets)
    {
        ensure(config.buckets > 0, "iceberg: need at least one bucket");
        ensure(config.backChoices >= 1, "iceberg: need d >= 1");
        for (auto &bucket : buckets_) {
            bucket.front.resize(config.frontSlots);
            bucket.back.resize(config.backSlots);
            for (auto &slot : bucket.back)
                slot.inBackyard = true;
        }
    }

    /** Shape parameters this table was built with. */
    const IcebergConfig &config() const { return config_; }

    /** Number of stored items. */
    std::size_t size() const { return size_; }

    /** Total slot capacity. */
    std::size_t capacity() const { return config_.capacity(); }

    /** Current load factor in [0, 1]. */
    double loadFactor() const
    {
        return static_cast<double>(size_) / static_cast<double>(capacity());
    }

    /** Items currently stored in backyards (for balance analysis). */
    std::size_t backyardSize() const { return backSize_; }

    /**
     * Install a fault hook consulted on each fresh insert (after the
     * overwrite fast path): when it returns true, the insert fails
     * as if by an associativity conflict and the table is unchanged.
     * Used by the fault-injection harness ("iceberg.insert" site,
     * DESIGN.md §11) without this header depending on it. An empty
     * function clears the hook.
     */
    void setFaultHook(std::function<bool()> hook)
    {
        faultHook_ = std::move(hook);
    }

    /**
     * Insert or overwrite. Returns false on an associativity
     * conflict: all f + d*b candidate slots are occupied by other
     * keys. The table is unchanged in that case.
     */
    bool
    insert(std::uint64_t key, Value value)
    {
        if (Slot *existing = findSlot(key)) {
            existing->value = std::move(value);
            return true;
        }

        if (faultHook_ && faultHook_())
            return false; // injected insert failure; table unchanged

        Bucket &fb = buckets_[frontBucket(key)];
        for (auto &slot : fb.front) {
            if (!slot.used) {
                fill(slot, key, std::move(value));
                return true;
            }
        }

        // Front yard full: power-of-d-choices over backyards.
        std::size_t best = config_.buckets; // invalid
        unsigned best_occupancy = config_.backSlots + 1;
        for (unsigned k = 0; k < config_.backChoices; ++k) {
            const std::size_t b = backBucket(key, k);
            const unsigned occ = backOccupancy(b);
            if (occ < best_occupancy) {
                best_occupancy = occ;
                best = b;
            }
        }
        if (best == config_.buckets ||
                best_occupancy >= config_.backSlots) {
            return false; // associativity conflict
        }
        for (auto &slot : buckets_[best].back) {
            if (!slot.used) {
                fill(slot, key, std::move(value));
                ++backSize_;
                return true;
            }
        }
        panic("iceberg: occupancy accounting out of sync");
    }

    /** Look up a key; nullptr when absent. Pointer stays valid until
     *  the key is erased (stability). */
    Value *
    find(std::uint64_t key)
    {
        Slot *slot = findSlot(key);
        return slot ? &slot->value : nullptr;
    }

    const Value *
    find(std::uint64_t key) const
    {
        auto *self = const_cast<IcebergTable *>(this);
        return self->find(key);
    }

    /** True when the key is present. */
    bool contains(std::uint64_t key) const { return find(key) != nullptr; }

    /** Remove a key. Returns false when it was absent. */
    bool
    erase(std::uint64_t key)
    {
        Slot *slot = findSlot(key);
        if (!slot)
            return false;
        if (slot->inBackyard)
            --backSize_;
        slot->used = false;
        slot->value = Value{};
        --size_;
        return true;
    }

    /**
     * Where a key is stored, for stability tests and analysis;
     * nullopt when the key is absent.
     */
    std::optional<SlotRef>
    locate(std::uint64_t key) const
    {
        const Bucket &fb = buckets_[frontBucket(key)];
        for (unsigned i = 0; i < config_.frontSlots; ++i) {
            if (fb.front[i].used && fb.front[i].key == key)
                return SlotRef{Yard::Front, frontBucket(key), i};
        }
        for (unsigned k = 0; k < config_.backChoices; ++k) {
            const std::size_t b = backBucket(key, k);
            for (unsigned i = 0; i < config_.backSlots; ++i) {
                if (buckets_[b].back[i].used && buckets_[b].back[i].key == key)
                    return SlotRef{Yard::Back, b, i};
            }
        }
        return std::nullopt;
    }

    /** Front-yard bucket index for a key (h0). */
    std::size_t
    frontBucket(std::uint64_t key) const
    {
        return hasher_.hash(key, 0) % config_.buckets;
    }

    /** k-th backyard candidate bucket for a key (h_{k+1}). */
    std::size_t
    backBucket(std::uint64_t key, unsigned k) const
    {
        return hasher_.hash(key, k + 1) % config_.buckets;
    }

    /** Number of used backyard slots in bucket b. */
    unsigned
    backOccupancy(std::size_t b) const
    {
        unsigned occ = 0;
        for (const auto &slot : buckets_[b].back)
            occ += slot.used ? 1 : 0;
        return occ;
    }

    /** Number of used front-yard slots in bucket b. */
    unsigned
    frontOccupancy(std::size_t b) const
    {
        unsigned occ = 0;
        for (const auto &slot : buckets_[b].front)
            occ += slot.used ? 1 : 0;
        return occ;
    }

    /**
     * Visit every used slot as (ref, key, value). Lets an external
     * oracle verify that the table holds exactly the keys it should
     * — no strays, no leaks — without widening the mutation API.
     */
    template <typename Fn>
    void
    forEachSlot(Fn &&fn) const
    {
        for (std::size_t b = 0; b < buckets_.size(); ++b) {
            for (unsigned i = 0; i < config_.frontSlots; ++i) {
                const Slot &slot = buckets_[b].front[i];
                if (slot.used)
                    fn(SlotRef{Yard::Front, b, i}, slot.key, slot.value);
            }
            for (unsigned i = 0; i < config_.backSlots; ++i) {
                const Slot &slot = buckets_[b].back[i];
                if (slot.used)
                    fn(SlotRef{Yard::Back, b, i}, slot.key, slot.value);
            }
        }
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        Value value{};
        bool used = false;
        bool inBackyard = false;
    };

    struct Bucket
    {
        std::vector<Slot> front;
        std::vector<Slot> back;
    };

    void
    fill(Slot &slot, std::uint64_t key, Value value)
    {
        slot.key = key;
        slot.value = std::move(value);
        slot.used = true;
        ++size_;
    }

    Slot *
    findSlot(std::uint64_t key)
    {
        Bucket &fb = buckets_[frontBucket(key)];
        for (auto &slot : fb.front) {
            if (slot.used && slot.key == key)
                return &slot;
        }
        for (unsigned k = 0; k < config_.backChoices; ++k) {
            Bucket &bb = buckets_[backBucket(key, k)];
            for (auto &slot : bb.back) {
                if (slot.used && slot.key == key)
                    return &slot;
            }
        }
        return nullptr;
    }

    IcebergConfig config_;
    TabulationHash hasher_;
    std::vector<Bucket> buckets_;
    std::size_t size_ = 0;
    std::size_t backSize_ = 0;
    std::function<bool()> faultHook_;
};

} // namespace mosaic

#endif // MOSAIC_ICEBERG_ICEBERG_TABLE_HH_
