/**
 * @file
 * A generic, stable Iceberg hash table (Bender et al., "All-Purpose
 * Hashing"), the hashing scheme underlying Mosaic page allocation
 * (paper §2.3).
 *
 * Structure: the table is an array of buckets; each bucket has a
 * large *front yard* of f slots and a small *backyard* of b slots.
 * A key hashes to one front-yard bucket (h0) and to d backyard
 * buckets (h1..hd). Insertion first tries the front yard; if it is
 * full, the key goes to the emptiest of its d candidate backyards
 * (power of d choices).
 *
 * The three properties Mosaic needs hold by construction:
 *  - low associativity: a key can live in only f + d*b slots;
 *  - stability: an item never moves after insertion;
 *  - high utilization: with f = 56, b = 8, d = 6 the first failed
 *    insertion empirically occurs at ~98 % load (Table 3).
 *
 * Probe mechanics (DESIGN.md §12): occupancy is a per-bucket bitmask
 * (one bit per slot), so free-slot choice is countr_zero, fill counts
 * are popcount, and the power-of-d comparison never scans slots. Key
 * search goes through one-byte fingerprints packed eight per word and
 * matched with SWAR; full keys are compared only on fingerprint hits.
 * All d+1 bucket choices come from one batched tabulation pass
 * (TabulationHash::probeAll, 8 table reads total). Every placement
 * decision is bit-identical to the former slot-scanning code.
 */

#ifndef MOSAIC_ICEBERG_ICEBERG_TABLE_HH_
#define MOSAIC_ICEBERG_ICEBERG_TABLE_HH_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "hash/mix.hh"
#include "hash/tabulation.hh"
#include "util/fastmod.hh"
#include "util/log.hh"

namespace mosaic
{

/** Static shape parameters of an iceberg table / mosaic memory. */
struct IcebergConfig
{
    /** Number of buckets. */
    std::size_t buckets = 1024;

    /** Front-yard slots per bucket (f). */
    unsigned frontSlots = 56;

    /** Backyard slots per bucket (b). */
    unsigned backSlots = 8;

    /** Number of backyard candidate buckets (d). */
    unsigned backChoices = 6;

    /** Seed for the tabulation hash tables. */
    std::uint64_t seed = 1;

    /** Total slots: f + b per bucket. */
    std::size_t capacity() const
    {
        return buckets * (frontSlots + backSlots);
    }

    /** Associativity h = f + d*b (104 with paper defaults). */
    unsigned associativity() const
    {
        return frontSlots + backChoices * backSlots;
    }
};

/** Which yard a slot belongs to. */
enum class Yard : std::uint8_t { Front, Back };

/** Identifies one slot in the table. */
struct SlotRef
{
    Yard yard = Yard::Front;
    std::size_t bucket = 0;
    unsigned slot = 0;

    bool operator==(const SlotRef &) const = default;
};

/**
 * The iceberg hash table, mapping 64-bit keys to values.
 *
 * @tparam Value the mapped type; must be movable and
 *         default-constructible.
 */
template <typename Value>
class IcebergTable
{
  public:
    /**
     * Word traffic on the probe path, for the complexity tests: a
     * lookup or insert must touch a constant number of words (the
     * bucket's occupancy and fingerprint words), never O(slots)
     * structures, and full-key comparisons should stay near one per
     * probe (fingerprint false positives are ~occupancy/256).
     */
    struct ProbeCounters
    {
        /** Occupancy + fingerprint words read while probing. */
        std::uint64_t wordReads = 0;

        /** Full 64-bit key comparisons (fingerprint hits only). */
        std::uint64_t keyCompares = 0;
    };

    explicit IcebergTable(const IcebergConfig &config)
        : config_(config),
          hasher_(config.seed),
          frontWords_((config.frontSlots + 63) / 64),
          backWords_((config.backSlots + 63) / 64),
          frontFpWords_((config.frontSlots + 7) / 8),
          backFpWords_((config.backSlots + 7) / 8)
    {
        ensure(config.buckets > 0, "iceberg: need at least one bucket");
        ensure(config.backChoices >= 1, "iceberg: need d >= 1");
        ensure(config.frontSlots > 0, "iceberg: need front slots");
        ensure(config.backSlots > 0, "iceberg: need back slots");
        ensure(config.backChoices + 1 <= maxProbeBatch,
               "iceberg: too many backyard choices");
        if (config.buckets <= UINT32_MAX)
            bucketMod_ = FastMod32(
                static_cast<std::uint32_t>(config.buckets));

        occFront_.assign(config.buckets * frontWords_, 0);
        occBack_.assign(config.buckets * backWords_, 0);
        fpFront_.assign(config.buckets * frontFpWords_, 0);
        fpBack_.assign(config.buckets * backFpWords_, 0);
        keysFront_.assign(config.buckets * config.frontSlots, 0);
        keysBack_.assign(config.buckets * config.backSlots, 0);
        valsFront_.resize(config.buckets * config.frontSlots);
        valsBack_.resize(config.buckets * config.backSlots);
    }

    /** Shape parameters this table was built with. */
    const IcebergConfig &config() const { return config_; }

    /** Number of stored items. */
    std::size_t size() const { return size_; }

    /** Total slot capacity. */
    std::size_t capacity() const { return config_.capacity(); }

    /** Current load factor in [0, 1]. */
    double loadFactor() const
    {
        return static_cast<double>(size_) / static_cast<double>(capacity());
    }

    /** Items currently stored in backyards (for balance analysis). */
    std::size_t backyardSize() const { return backSize_; }

    /** Probe-path word traffic since the last reset (testing). */
    const ProbeCounters &probeCounters() const { return counters_; }

    /** Reset the probe counters (testing). */
    void resetProbeCounters() { counters_ = {}; }

    /**
     * Install a fault hook consulted on each fresh insert (after the
     * overwrite fast path): when it returns true, the insert fails
     * as if by an associativity conflict and the table is unchanged.
     * Used by the fault-injection harness ("iceberg.insert" site,
     * DESIGN.md §11) without this header depending on it. An empty
     * function clears the hook.
     */
    void setFaultHook(std::function<bool()> hook)
    {
        faultHook_ = std::move(hook);
    }

    /**
     * Insert or overwrite. Returns false on an associativity
     * conflict: all f + d*b candidate slots are occupied by other
     * keys. The table is unchanged in that case.
     */
    bool
    insert(std::uint64_t key, Value value)
    {
        const unsigned n = config_.backChoices + 1;
        std::size_t bkts[maxProbeBatch];
        probeBuckets(key, bkts, n);

        const Loc loc = findLoc(key, bkts, n);
        if (loc.found) {
            valueAt(loc) = std::move(value);
            return true;
        }

        if (faultHook_ && faultHook_())
            return false; // injected insert failure; table unchanged

        const int fs = firstFree(&occFront_[bkts[0] * frontWords_],
                                 frontWords_, config_.frontSlots);
        if (fs >= 0) {
            fill(Loc{true, false, bkts[0], unsigned(fs)}, key,
                 std::move(value));
            return true;
        }

        // Front yard full: power-of-d-choices over backyards.
        std::size_t best = config_.buckets; // invalid
        unsigned best_occupancy = config_.backSlots + 1;
        for (unsigned k = 0; k < config_.backChoices; ++k) {
            const std::size_t b = bkts[k + 1];
            const unsigned occ = backOccupancy(b);
            if (occ < best_occupancy) {
                best_occupancy = occ;
                best = b;
            }
        }
        if (best == config_.buckets ||
                best_occupancy >= config_.backSlots) {
            return false; // associativity conflict
        }
        const int bs = firstFree(&occBack_[best * backWords_],
                                 backWords_, config_.backSlots);
        if (bs < 0)
            panic("iceberg: occupancy accounting out of sync");
        fill(Loc{true, true, best, unsigned(bs)}, key, std::move(value));
        ++backSize_;
        return true;
    }

    /** Look up a key; nullptr when absent. Pointer stays valid until
     *  the key is erased (stability). */
    Value *
    find(std::uint64_t key)
    {
        const Loc loc = locateLoc(key);
        return loc.found ? &valueAt(loc) : nullptr;
    }

    const Value *
    find(std::uint64_t key) const
    {
        auto *self = const_cast<IcebergTable *>(this);
        return self->find(key);
    }

    /** True when the key is present. */
    bool contains(std::uint64_t key) const { return find(key) != nullptr; }

    /**
     * Batched lookup: out[i] receives exactly the pointer
     * find(keys[i]) would return. The block is software-pipelined:
     * (1) all h0 hashes in one batched tabulation sweep, (2) a
     * stable sort by front bucket so keys sharing a bucket form
     * runs, (3) a prefetch stage that issues the fingerprint /
     * occupancy cache lines one stage before (4) the multi-key SWAR
     * compare consumes them, sweeping every key of a run over each
     * bucket word loaded once. Front-yard misses fall through to
     * batched backyard probing (probeAllMany) in scalar probe order.
     * Results land in the caller's original key order and the probe
     * counters advance exactly as keys.size() scalar find() calls
     * would — batching shares physical cache traffic, not modeled
     * per-key cost.
     */
    void
    findMany(std::span<const std::uint64_t> keys, Value **out)
    {
        for (std::size_t base = 0; base < keys.size();
             base += maxProbeBatch) {
            const std::size_t n =
                std::min<std::size_t>(maxProbeBatch, keys.size() - base);
            findChunk(keys.subspan(base, n), out + base);
        }
    }

    void
    findMany(std::span<const std::uint64_t> keys,
             const Value **out) const
    {
        auto *self = const_cast<IcebergTable *>(this);
        self->findMany(keys, const_cast<Value **>(out));
    }

    /** Remove a key. Returns false when it was absent. */
    bool
    erase(std::uint64_t key)
    {
        const Loc loc = locateLoc(key);
        if (!loc.found)
            return false;
        if (loc.back)
            --backSize_;
        occWord(loc) &= ~(1ull << (loc.slot % 64));
        valueAt(loc) = Value{};
        --size_;
        return true;
    }

    /**
     * Where a key is stored, for stability tests and analysis;
     * nullopt when the key is absent.
     */
    std::optional<SlotRef>
    locate(std::uint64_t key) const
    {
        const Loc loc = locateLoc(key);
        if (!loc.found)
            return std::nullopt;
        return SlotRef{loc.back ? Yard::Back : Yard::Front, loc.bucket,
                       loc.slot};
    }

    /** Front-yard bucket index for a key (h0). */
    std::size_t
    frontBucket(std::uint64_t key) const
    {
        return reduce(hasher_.hash(key, 0));
    }

    /** k-th backyard candidate bucket for a key (h_{k+1}). */
    std::size_t
    backBucket(std::uint64_t key, unsigned k) const
    {
        return reduce(hasher_.hash(key, k + 1));
    }

    /** Number of used backyard slots in bucket b. */
    unsigned
    backOccupancy(std::size_t b) const
    {
        return popcountWords(&occBack_[b * backWords_], backWords_);
    }

    /** Number of used front-yard slots in bucket b. */
    unsigned
    frontOccupancy(std::size_t b) const
    {
        return popcountWords(&occFront_[b * frontWords_], frontWords_);
    }

    /**
     * Visit every used slot as (ref, key, value). Lets an external
     * oracle verify that the table holds exactly the keys it should
     * — no strays, no leaks — without widening the mutation API.
     */
    template <typename Fn>
    void
    forEachSlot(Fn &&fn) const
    {
        for (std::size_t b = 0; b < config_.buckets; ++b) {
            forEachUsed(&occFront_[b * frontWords_], frontWords_,
                        [&](unsigned i) {
                fn(SlotRef{Yard::Front, b, i},
                   keysFront_[b * config_.frontSlots + i],
                   valsFront_[b * config_.frontSlots + i]);
            });
            forEachUsed(&occBack_[b * backWords_], backWords_,
                        [&](unsigned i) {
                fn(SlotRef{Yard::Back, b, i},
                   keysBack_[b * config_.backSlots + i],
                   valsBack_[b * config_.backSlots + i]);
            });
        }
    }

  private:
    /** Largest d+1 the stack probe buffers support. */
    static constexpr unsigned maxProbeBatch = 64;

    static constexpr std::uint64_t lowBytes = 0x0101010101010101ull;
    static constexpr std::uint64_t highBits = 0x8080808080808080ull;

    struct Loc
    {
        bool found = false;
        bool back = false;
        std::size_t bucket = 0;
        unsigned slot = 0;
    };

    /** One-byte key fingerprint; collisions only cost a key compare. */
    static std::uint8_t
    fingerprint(std::uint64_t key)
    {
        return static_cast<std::uint8_t>(mix64(key) >> 56);
    }

    std::size_t
    reduce(std::uint32_t h) const
    {
        if (config_.buckets <= UINT32_MAX)
            return bucketMod_.mod(h);
        return h % config_.buckets;
    }

    /** All n bucket choices of a key in one batched hash pass. */
    void
    probeBuckets(std::uint64_t key, std::size_t *bkts, unsigned n) const
    {
        std::uint32_t h[maxProbeBatch];
        if (n <= TabulationHash::maxProbes)
            hasher_.probeAll(key, {h, n});
        else
            hasher_.hashMany(key, {h, n});
        for (unsigned i = 0; i < n; ++i)
            bkts[i] = reduce(h[i]);
    }

    std::uint64_t &
    occWord(const Loc &loc)
    {
        return loc.back
            ? occBack_[loc.bucket * backWords_ + loc.slot / 64]
            : occFront_[loc.bucket * frontWords_ + loc.slot / 64];
    }

    Value &
    valueAt(const Loc &loc)
    {
        return loc.back
            ? valsBack_[loc.bucket * config_.backSlots + loc.slot]
            : valsFront_[loc.bucket * config_.frontSlots + loc.slot];
    }

    /**
     * SWAR fingerprint search for key in one yard of one bucket.
     * Touches one fingerprint word per 8 slots plus the occupancy
     * byte; compares full keys only where a fingerprint byte matches.
     * Returns the lowest matching slot, or -1.
     */
    int
    matchIn(bool back, std::size_t b, std::uint64_t key,
            std::uint64_t fp_pattern) const
    {
        const unsigned fp_words = back ? backFpWords_ : frontFpWords_;
        const unsigned slots = back ? config_.backSlots
                                    : config_.frontSlots;
        const std::uint64_t *fps = back
            ? &fpBack_[b * backFpWords_]
            : &fpFront_[b * frontFpWords_];
        const std::uint64_t *occ = back
            ? &occBack_[b * backWords_]
            : &occFront_[b * frontWords_];
        const std::uint64_t *keys = back
            ? &keysBack_[b * slots]
            : &keysFront_[b * slots];

        counters_.wordReads += back ? backWords_ : frontWords_;
        for (unsigned w = 0; w < fp_words; ++w) {
            ++counters_.wordReads;
            const std::uint64_t x = fps[w] ^ fp_pattern;
            const std::uint64_t hit = (x - lowBytes) & ~x & highBits;
            if (!hit)
                continue;
            // Compress the per-byte high bits to one bit per slot,
            // then mask with this 8-slot window's occupancy byte.
            std::uint64_t cand =
                ((hit >> 7) * 0x0102040810204080ull) >> 56;
            cand &= (occ[w / 8] >> ((w % 8) * 8)) & 0xFF;
            while (cand) {
                const unsigned slot =
                    8 * w + unsigned(std::countr_zero(cand));
                cand &= cand - 1;
                ++counters_.keyCompares;
                if (keys[slot] == key)
                    return int(slot);
            }
        }
        return -1;
    }

    /** Find the key among precomputed bucket choices (front first,
     *  then backyards in probe order — same as the scanning code). */
    Loc
    findLoc(std::uint64_t key, const std::size_t *bkts,
            unsigned n) const
    {
        const std::uint64_t pattern = lowBytes * fingerprint(key);
        int s = matchIn(false, bkts[0], key, pattern);
        if (s >= 0)
            return Loc{true, false, bkts[0], unsigned(s)};
        for (unsigned k = 1; k < n; ++k) {
            s = matchIn(true, bkts[k], key, pattern);
            if (s >= 0)
                return Loc{true, true, bkts[k], unsigned(s)};
        }
        return Loc{};
    }

    /**
     * Lazy lookup: most keys live in their front-yard bucket, so
     * hash only h0 first and batch the backyard probes on a front
     * miss. A front hit costs 8 table reads + one SWAR scan, like
     * the hardware's common case.
     */
    Loc
    locateLoc(std::uint64_t key) const
    {
        const std::uint64_t pattern = lowBytes * fingerprint(key);
        const std::size_t fb = reduce(hasher_.hash(key, 0));
        const int s = matchIn(false, fb, key, pattern);
        if (s >= 0)
            return Loc{true, false, fb, unsigned(s)};
        const unsigned n = config_.backChoices + 1;
        std::size_t bkts[maxProbeBatch];
        probeBuckets(key, bkts, n);
        for (unsigned k = 1; k < n; ++k) {
            const int bs = matchIn(true, bkts[k], key, pattern);
            if (bs >= 0)
                return Loc{true, true, bkts[k], unsigned(bs)};
        }
        return Loc{};
    }

    /** Prefetch the probe-path cache lines of one yard of bucket b
     *  (occupancy word, first fingerprint word, first key line). */
    void
    prefetchYard(bool back, std::size_t b) const
    {
        if (back) {
            __builtin_prefetch(&occBack_[b * backWords_]);
            __builtin_prefetch(&fpBack_[b * backFpWords_]);
            __builtin_prefetch(&keysBack_[b * config_.backSlots]);
        } else {
            __builtin_prefetch(&occFront_[b * frontWords_]);
            __builtin_prefetch(&fpFront_[b * frontFpWords_]);
            __builtin_prefetch(&keysFront_[b * config_.frontSlots]);
        }
    }

    /**
     * Multi-key SWAR search: all `run` keys hash to the same bucket
     * of one yard, so every fingerprint word is loaded once and swept
     * against each still-unresolved key's pattern. slots[r] gets the
     * lowest match of keys[r], or -1. The counters advance exactly as
     * `run` scalar matchIn() calls: each key is charged the occupancy
     * words up front and one read per fingerprint word it is still
     * unresolved at, and one key compare per occupied fingerprint hit
     * up to and including its match — identical early-exit shape.
     */
    void
    matchRunIn(bool back, std::size_t b,
               const std::uint64_t *run_keys,
               const std::uint64_t *patterns, std::size_t run,
               int *slots_out) const
    {
        const unsigned fp_words = back ? backFpWords_ : frontFpWords_;
        const std::uint64_t *fps = back
            ? &fpBack_[b * backFpWords_]
            : &fpFront_[b * frontFpWords_];
        const std::uint64_t *occ = back
            ? &occBack_[b * backWords_]
            : &occFront_[b * frontWords_];
        const std::uint64_t *keys = back
            ? &keysBack_[b * config_.backSlots]
            : &keysFront_[b * config_.frontSlots];

        counters_.wordReads +=
            std::uint64_t{back ? backWords_ : frontWords_} * run;
        bool done[maxProbeBatch] = {};
        std::size_t open = run;
        for (std::size_t r = 0; r < run; ++r)
            slots_out[r] = -1;
        for (unsigned w = 0; w < fp_words && open > 0; ++w) {
            const std::uint64_t fpw = fps[w];
            const std::uint64_t occ_byte =
                (occ[w / 8] >> ((w % 8) * 8)) & 0xFF;
            for (std::size_t r = 0; r < run; ++r) {
                if (done[r])
                    continue;
                ++counters_.wordReads;
                const std::uint64_t x = fpw ^ patterns[r];
                const std::uint64_t hit =
                    (x - lowBytes) & ~x & highBits;
                if (!hit)
                    continue;
                std::uint64_t cand =
                    ((hit >> 7) * 0x0102040810204080ull) >> 56;
                cand &= occ_byte;
                while (cand) {
                    const unsigned slot =
                        8 * w + unsigned(std::countr_zero(cand));
                    cand &= cand - 1;
                    ++counters_.keyCompares;
                    if (keys[slot] == run_keys[r]) {
                        slots_out[r] = int(slot);
                        done[r] = true;
                        --open;
                        break;
                    }
                }
            }
        }
    }

    /** One <= maxProbeBatch chunk of findMany(). */
    void
    findChunk(std::span<const std::uint64_t> keys, Value **out)
    {
        const std::size_t n = keys.size();
        std::uint32_t h0[maxProbeBatch];
        std::size_t fb[maxProbeBatch];
        std::uint64_t patterns[maxProbeBatch];
        std::uint64_t order[maxProbeBatch];

        // Stage 1: batched h0 hashing (same function and accounting
        // as the scalar locateLoc front probe).
        hasher_.hashKeys(keys, 0, h0);
        for (std::size_t i = 0; i < n; ++i) {
            fb[i] = reduce(h0[i]);
            patterns[i] = lowBytes * fingerprint(keys[i]);
            // Pack (bucket, index): sorting the packed words groups
            // same-bucket keys while staying stable by construction
            // (the index makes every word distinct). Cheaper than an
            // indirect stable_sort for these tiny chunks.
            order[i] = (std::uint64_t{fb[i]} << 8) | i;
        }
        std::sort(order, order + n);

        // Stage 2: issue every run's cache lines before any compare
        // consumes them — the prefetch-ahead stage of the pipeline.
        for (std::size_t i = 0; i < n; ++i) {
            if (i == 0 || (order[i] >> 8) != (order[i - 1] >> 8))
                prefetchYard(false, order[i] >> 8);
        }

        // Stage 3: multi-key front-yard compares, one run per bucket.
        // Singleton runs — the common case when the bucket count far
        // exceeds the chunk — take the scalar compare, which has the
        // identical counter shape without the run bookkeeping.
        std::uint64_t run_keys[maxProbeBatch];
        std::uint64_t run_patterns[maxProbeBatch];
        int run_slots[maxProbeBatch];
        std::uint8_t miss[maxProbeBatch];
        std::size_t misses = 0;
        for (std::size_t i = 0; i < n;) {
            std::size_t j = i + 1;
            while (j < n && (order[j] >> 8) == (order[i] >> 8))
                ++j;
            const std::size_t run = j - i;
            const std::size_t bucket = order[i] >> 8;
            if (run == 1) {
                const std::uint8_t idx = order[i] & 0xFF;
                const int s =
                    matchIn(false, bucket, keys[idx], patterns[idx]);
                if (s >= 0)
                    out[idx] = &valueAt(
                        Loc{true, false, bucket, unsigned(s)});
                else
                    miss[misses++] = idx;
                i = j;
                continue;
            }
            for (std::size_t r = 0; r < run; ++r) {
                const std::uint8_t idx = order[i + r] & 0xFF;
                run_keys[r] = keys[idx];
                run_patterns[r] = patterns[idx];
            }
            matchRunIn(false, bucket, run_keys, run_patterns, run,
                       run_slots);
            for (std::size_t r = 0; r < run; ++r) {
                const std::uint8_t idx = order[i + r] & 0xFF;
                if (run_slots[r] >= 0)
                    out[idx] = &valueAt(Loc{true, false, bucket,
                                            unsigned(run_slots[r])});
                else
                    miss[misses++] = idx;
            }
            i = j;
        }
        if (misses == 0)
            return;

        // Stage 4: front misses re-probe all d+1 choices in one
        // batched tabulation sweep (scalar locateLoc does the same
        // per key via probeBuckets), then walk the backyards in probe
        // order with the next key's buckets prefetched one key ahead.
        const unsigned nc = config_.backChoices + 1;
        std::uint64_t miss_keys[maxProbeBatch];
        for (std::size_t m = 0; m < misses; ++m)
            miss_keys[m] = keys[miss[m]];
        std::uint32_t hbuf[maxProbeBatch * TabulationHash::maxProbes];
        std::vector<std::uint32_t> hwide;
        std::uint32_t *h = hbuf;
        if (nc <= TabulationHash::maxProbes) {
            hasher_.probeAllMany({miss_keys, misses}, nc, hbuf);
        } else {
            hwide.resize(misses * nc);
            for (std::size_t m = 0; m < misses; ++m)
                hasher_.hashMany(miss_keys[m], {&hwide[m * nc], nc});
            h = hwide.data();
        }
        // A miss walks d dependent buckets, so the lookahead runs
        // several keys deep to keep that many lines in flight.
        constexpr std::size_t lookahead = 4;
        for (std::size_t m = 0; m < misses && m < lookahead; ++m) {
            for (unsigned k = 1; k < nc; ++k)
                prefetchYard(true, reduce(h[m * nc + k]));
        }
        for (std::size_t m = 0; m < misses; ++m) {
            if (m + lookahead < misses) {
                for (unsigned k = 1; k < nc; ++k) {
                    prefetchYard(
                        true, reduce(h[(m + lookahead) * nc + k]));
                }
            }
            const std::uint8_t idx = miss[m];
            out[idx] = nullptr;
            for (unsigned k = 1; k < nc; ++k) {
                const std::size_t bb = reduce(h[m * nc + k]);
                const int s = matchIn(true, bb, miss_keys[m],
                                      patterns[idx]);
                if (s >= 0) {
                    out[idx] =
                        &valueAt(Loc{true, true, bb, unsigned(s)});
                    break;
                }
            }
        }
    }

    /** Lowest free slot index per the occupancy words, or -1. */
    static int
    firstFree(const std::uint64_t *occ, unsigned words, unsigned slots)
    {
        for (unsigned w = 0; w < words; ++w) {
            const unsigned in_word = std::min(64u, slots - 64 * w);
            const std::uint64_t valid = in_word == 64
                ? ~0ull
                : (1ull << in_word) - 1;
            const std::uint64_t free = ~occ[w] & valid;
            if (free)
                return int(64 * w + std::countr_zero(free));
        }
        return -1;
    }

    static unsigned
    popcountWords(const std::uint64_t *occ, unsigned words)
    {
        unsigned n = 0;
        for (unsigned w = 0; w < words; ++w)
            n += unsigned(std::popcount(occ[w]));
        return n;
    }

    template <typename Fn>
    static void
    forEachUsed(const std::uint64_t *occ, unsigned words, Fn &&fn)
    {
        for (unsigned w = 0; w < words; ++w) {
            std::uint64_t m = occ[w];
            while (m) {
                fn(64 * w + unsigned(std::countr_zero(m)));
                m &= m - 1;
            }
        }
    }

    void
    fill(const Loc &loc, std::uint64_t key, Value value)
    {
        occWord(loc) |= 1ull << (loc.slot % 64);
        std::uint64_t &fpw = loc.back
            ? fpBack_[loc.bucket * backFpWords_ + loc.slot / 8]
            : fpFront_[loc.bucket * frontFpWords_ + loc.slot / 8];
        const unsigned shift = (loc.slot % 8) * 8;
        fpw = (fpw & ~(0xFFull << shift)) |
              (std::uint64_t(fingerprint(key)) << shift);
        (loc.back ? keysBack_[loc.bucket * config_.backSlots + loc.slot]
                  : keysFront_[loc.bucket * config_.frontSlots +
                               loc.slot]) = key;
        valueAt(loc) = std::move(value);
        ++size_;
    }

    IcebergConfig config_;
    TabulationHash hasher_;
    unsigned frontWords_;
    unsigned backWords_;
    unsigned frontFpWords_;
    unsigned backFpWords_;
    FastMod32 bucketMod_;

    // Structure-of-arrays storage: per-bucket occupancy bitmask
    // words, packed fingerprint bytes, then flat key/value arrays.
    // Nothing reallocates after construction, so value pointers are
    // stable for the life of the entry (the stability contract).
    std::vector<std::uint64_t> occFront_;
    std::vector<std::uint64_t> occBack_;
    std::vector<std::uint64_t> fpFront_;
    std::vector<std::uint64_t> fpBack_;
    std::vector<std::uint64_t> keysFront_;
    std::vector<std::uint64_t> keysBack_;
    std::vector<Value> valsFront_;
    std::vector<Value> valsBack_;

    std::size_t size_ = 0;
    std::size_t backSize_ = 0;
    std::function<bool()> faultHook_;
    mutable ProbeCounters counters_;
};

} // namespace mosaic

#endif // MOSAIC_ICEBERG_ICEBERG_TABLE_HH_
