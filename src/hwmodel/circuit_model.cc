#include "hwmodel/circuit_model.hh"

#include <cmath>

#include "util/log.hh"

namespace mosaic
{

namespace
{

/**
 * Measured Artix-7 synthesis results from the paper (Table 5), used
 * as calibration anchors. The paper's circuit hashes a 64-bit input
 * (8 tables of 256 x 32 bits).
 */
struct CalibrationPoint
{
    unsigned h;
    std::uint64_t luts;
    std::uint64_t registers;
    std::uint64_t f7;
    std::uint64_t f8;
};

constexpr CalibrationPoint calibration[] = {
    {1, 858, 32, 0, 0},
    {2, 1696, 32, 32, 0},
    {4, 3392, 32, 64, 32},
    {8, 6208, 32, 2880, 160},
};

/** Measured Artix-7 critical path (constant across H, Table 5). */
constexpr double fpgaLatencyNs = 2.155;

/** Measured 28 nm results (§4.4). */
constexpr double asicLatencyPs = 220.0;
constexpr double asicAreaKgeAtH8 = 13.806;

/** Area slope with H ("increasing the number of hash functions ...
 *  increased the area minimally"): mux growth per extra output. */
constexpr double asicKgePerHash = 0.35;

/** LUTs consumed per 256-entry 1-bit ROM read port on 7-series
 *  (four LUT6s cover 256:1 with the carry of wide-mux resources). */
constexpr double lutsPerRomBitPort = 3.2;

/** LUTs for XOR-reducing t inputs of one bit (LUT6 -> 6:1). */
double
xorTreeLuts(unsigned inputs)
{
    return std::ceil(static_cast<double>(inputs - 1) / 5.0);
}

} // namespace

TabulationCircuitModel::TabulationCircuitModel(const CircuitParams &params)
    : params_(params)
{
    ensure(params.inputBytes >= 1 && params.inputBytes <= 8,
           "circuit: inputBytes range");
    ensure(params.numHashes >= 1, "circuit: need >= 1 hash output");
    ensure(params.outputBits >= 1 && params.outputBits <= 64,
           "circuit: outputBits range");
}

bool
TabulationCircuitModel::isCalibrationPoint(unsigned h)
{
    for (const auto &p : calibration) {
        if (p.h == h)
            return true;
    }
    return false;
}

FpgaCost
TabulationCircuitModel::fpga() const
{
    FpgaCost cost;
    cost.latencyNs = fpgaLatencyNs;

    // The paper's exact configuration: report the measured numbers.
    if (params_.inputBytes == 8 && params_.outputBits == 32) {
        for (const auto &p : calibration) {
            if (p.h == params_.numHashes) {
                cost.luts = p.luts;
                cost.registers = p.registers;
                cost.f7Muxes = p.f7;
                cost.f8Muxes = p.f8;
                return cost;
            }
        }
    }

    // Structural estimate for other configurations:
    //  - each table serves numHashes read ports of outputBits bits;
    //  - one XOR tree per output bit per hash reduces inputBytes
    //    table outputs;
    //  - a final outputBits-wide numHashes:1 mux; wide muxes consume
    //    F7/F8 resources roughly quadratically once H > 4 (matching
    //    the measured H=8 blow-up).
    const double rom = static_cast<double>(params_.inputBytes) *
                       params_.outputBits * params_.numHashes *
                       lutsPerRomBitPort;
    const double xors = static_cast<double>(params_.outputBits) *
                        params_.numHashes * xorTreeLuts(params_.inputBytes);
    const double mux = params_.numHashes > 1
        ? static_cast<double>(params_.outputBits) *
              std::ceil(static_cast<double>(params_.numHashes) / 2.0)
        : 0.0;
    cost.luts = static_cast<std::uint64_t>(std::lround(rom + xors + mux));
    cost.registers = params_.outputBits;
    if (params_.numHashes >= 2)
        cost.f7Muxes = params_.outputBits * (params_.numHashes / 2);
    if (params_.numHashes >= 4)
        cost.f8Muxes = params_.outputBits * (params_.numHashes / 4);
    if (params_.numHashes >= 8) {
        // Wide-mux pressure spills ROM selection into F7/F8 chains.
        cost.f7Muxes *= 2 * params_.numHashes;
        cost.f8Muxes *= params_.numHashes / 4;
    }
    return cost;
}

AsicCost
TabulationCircuitModel::asic() const
{
    AsicCost cost;
    cost.latencyPs = asicLatencyPs;
    // One calibration anchor (H = 8); mild linear growth in H, and
    // proportional scaling in table count and width relative to the
    // paper's 8-table, 32-bit configuration.
    const double base = asicAreaKgeAtH8 - asicKgePerHash * 8;
    const double table_scale =
        (static_cast<double>(params_.inputBytes) / 8.0) *
        (static_cast<double>(params_.outputBits) / 32.0);
    cost.areaKge = base * table_scale +
                   asicKgePerHash * params_.numHashes;
    return cost;
}

} // namespace mosaic
