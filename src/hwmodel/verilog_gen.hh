/**
 * @file
 * Generator for synthesizable Verilog of the tabulation-hash circuit
 * (the paper's hardware artifact, Figure 4): per-byte static tables
 * with probed read ports, XOR reduction per hash output, and a final
 * output mux driven by the hash-selection bits.
 *
 * The generated RTL embeds the table contents of a concrete
 * TabulationHash instance, so hardware and simulator compute the
 * same function.
 */

#ifndef MOSAIC_HWMODEL_VERILOG_GEN_HH_
#define MOSAIC_HWMODEL_VERILOG_GEN_HH_

#include <string>

#include "hash/tabulation.hh"

namespace mosaic
{

/** Options for Verilog generation. */
struct VerilogOptions
{
    std::string moduleName = "tabulation_hash";

    /** Number of probed hash outputs generated in parallel. */
    unsigned numHashes = 7;

    /** Register the output (one pipeline stage), as in the paper. */
    bool registered = true;
};

/** Emit a complete Verilog module for the given hash instance. */
std::string generateVerilog(const TabulationHash &hash,
                            const VerilogOptions &options);

/**
 * Emit a self-checking testbench for the generated module: random
 * (key, sel) vectors with expected outputs computed by the C++
 * model, so RTL simulation verifies that hardware and simulator
 * implement the same function.
 */
std::string generateTestbench(const TabulationHash &hash,
                              const VerilogOptions &options,
                              unsigned num_vectors = 64,
                              std::uint64_t seed = 2);

} // namespace mosaic

#endif // MOSAIC_HWMODEL_VERILOG_GEN_HH_
