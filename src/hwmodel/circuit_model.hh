/**
 * @file
 * A structural hardware cost model for the tabulation-hash circuit
 * on the Mosaic TLB critical path (paper §4.4, Table 5, Figure 4).
 *
 * The circuit: one 256-entry x 32-bit static table per input byte;
 * each table is read at H probe offsets (base, +1, ..., +H-1); the
 * per-table outputs are XOR-reduced per probe; a final mux selects
 * among the H hash outputs using the decoded CPFN.
 *
 * We have no synthesis toolchain offline, so resource counts come
 * from a structural decomposition (ROM bits -> LUTs, XOR trees,
 * wide-mux F7/F8 usage) whose technology constants are calibrated so
 * the model reproduces the paper's measured Artix-7 results exactly
 * at H in {1, 2, 4, 8} — the calibration points are stored as such —
 * and extrapolates structurally elsewhere. The 28 nm ASIC numbers
 * model the prose of §4.4 the same way (4 GHz, 220 ps, 13.806 kGE at
 * H = 8, area growing mildly with H).
 */

#ifndef MOSAIC_HWMODEL_CIRCUIT_MODEL_HH_
#define MOSAIC_HWMODEL_CIRCUIT_MODEL_HH_

#include <cstdint>

namespace mosaic
{

/** FPGA (Artix-7) resource estimate. */
struct FpgaCost
{
    std::uint64_t luts = 0;
    std::uint64_t registers = 0;
    std::uint64_t f7Muxes = 0;
    std::uint64_t f8Muxes = 0;

    /** Critical-path latency in nanoseconds. */
    double latencyNs = 0.0;

    /** Maximum clock frequency implied by the latency. */
    double maxFrequencyMhz() const { return 1000.0 / latencyNs; }
};

/** 28 nm ASIC estimate. */
struct AsicCost
{
    /** Critical-path latency in picoseconds. */
    double latencyPs = 0.0;

    /** Maximum clock frequency in GHz. */
    double maxFrequencyGhz() const { return 1000.0 / latencyPs; }

    /** Area in kilo gate-equivalents (2-input NAND). */
    double areaKge = 0.0;
};

/** Parameters of the hash circuit being costed. */
struct CircuitParams
{
    /** Input bytes = number of static tables (64-bit key: 8). */
    unsigned inputBytes = 8;

    /** Bits per table entry / hash output. */
    unsigned outputBits = 32;

    /** Number of probed hash outputs (Mosaic: 1 + d = 7). */
    unsigned numHashes = 4;
};

/** Structural cost model of the tabulation-hash circuit. */
class TabulationCircuitModel
{
  public:
    explicit TabulationCircuitModel(const CircuitParams &params);

    const CircuitParams &params() const { return params_; }

    /** Artix-7 estimate (Table 5). */
    FpgaCost fpga() const;

    /** 28 nm commercial CMOS estimate (§4.4 prose). */
    AsicCost asic() const;

    /** True when @p h is one of the paper's measured points. */
    static bool isCalibrationPoint(unsigned h);

  private:
    CircuitParams params_;
};

} // namespace mosaic

#endif // MOSAIC_HWMODEL_CIRCUIT_MODEL_HH_
