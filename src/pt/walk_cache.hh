/**
 * @file
 * An MMU page-walk cache (paper §5.4): caches upper-level page-table
 * nodes so a TLB miss's walk can skip directly to a lower level,
 * like x86 PML4/PDPT/PDE caches. Complements Mosaic: Mosaic raises
 * the TLB hit rate, walk caches cut the cost of the misses that
 * remain.
 *
 * Model: a small fully-associative LRU array of (ASID, level,
 * key-prefix) entries. A walk for a key skips every level whose
 * prefix is cached and performs one memory reference per remaining
 * level; afterwards all its prefixes are inserted.
 */

#ifndef MOSAIC_PT_WALK_CACHE_HH_
#define MOSAIC_PT_WALK_CACHE_HH_

#include <cstdint>

#include "pt/radix_tree.hh"
#include "tlb/set_assoc.hh"
#include "util/types.hh"

namespace mosaic
{

/** Page-walk cache over the upper levels of a radix page table. */
class WalkCache
{
  public:
    /**
     * @param entries cache size (x86 parts have a few dozen).
     */
    explicit WalkCache(unsigned entries = 32)
        : array_(TlbGeometry{entries, entries})
    {
    }

    /**
     * Levels of an @p total_levels walk that can be skipped for
     * @p key: the deepest cached prefix covers itself and everything
     * above it. The leaf level is never skippable (its node holds
     * the PTE/ToC being fetched).
     */
    unsigned
    skippableLevels(Asid asid, std::uint64_t key, unsigned total_levels)
    {
        ++lookups_;
        for (unsigned depth = total_levels - 1; depth >= 1; --depth) {
            if (array_.find(prefixOf(key, total_levels, depth),
                            tag(asid, depth,
                                prefixOf(key, total_levels, depth)))) {
                ++hits_;
                return depth;
            }
        }
        return 0;
    }

    /** Insert every upper-level prefix of a completed walk. */
    void
    fill(Asid asid, std::uint64_t key, unsigned total_levels)
    {
        for (unsigned depth = 1; depth < total_levels; ++depth) {
            const std::uint64_t prefix =
                prefixOf(key, total_levels, depth);
            const std::uint64_t t = tag(asid, depth, prefix);
            if (!array_.find(prefix, t)) {
                bool evicted = false;
                array_.allocate(prefix, t, &evicted);
            }
        }
    }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }

  private:
    struct Empty
    {
    };

    /** Key prefix covering the first @p depth levels of the walk. */
    static std::uint64_t
    prefixOf(std::uint64_t key, unsigned total_levels, unsigned depth)
    {
        const unsigned dropped =
            (total_levels - depth) * RadixTree<int>::fanoutBits;
        return dropped >= 64 ? 0 : key >> dropped;
    }

    static std::uint64_t
    tag(Asid asid, unsigned depth, std::uint64_t prefix)
    {
        return (std::uint64_t{asid} << 44) |
               (std::uint64_t{depth} << 40) | (prefix & 0xFFFFFFFFFFull);
    }

    SetAssocArray<Empty> array_;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace mosaic

#endif // MOSAIC_PT_WALK_CACHE_HH_
