#include "pt/vanilla_page_table.hh"

namespace mosaic
{

// 36-bit VPN space -> 4 radix levels; 27-bit huge-VPN space -> 3,
// matching an x86 walk that stops one level early for 2 MiB pages.
VanillaPageTable::VanillaPageTable()
    : tree4k_(vpnBits), treeHuge_(vpnBits - 9)
{
}

void
VanillaPageTable::map(Vpn vpn, Pfn pfn)
{
    Pte &pte = tree4k_.getOrCreate(vpn);
    if (!pte.present)
        ++mapped4k_;
    pte.pfn = pfn;
    pte.present = true;
}

void
VanillaPageTable::mapHuge(Vpn vpn, Pfn base_pfn)
{
    Pte &pte = treeHuge_.getOrCreate(vpn >> 9);
    if (!pte.present)
        ++mappedHuge_;
    pte.pfn = base_pfn;
    pte.present = true;
}

void
VanillaPageTable::unmap(Vpn vpn)
{
    if (Pte *pte = tree4k_.find(vpn); pte && pte->present) {
        pte->present = false;
        pte->pfn = invalidPfn;
        --mapped4k_;
    }
}

VanillaWalkResult
VanillaPageTable::walk(Vpn vpn) const
{
    VanillaWalkResult out;

    const Pte *pte = tree4k_.find(vpn, &out.memRefs);
    if (pte && pte->present) {
        out.pfn = pte->pfn;
        out.present = true;
        return out;
    }

    // A real walk would have found a huge PTE at the L2 level of the
    // same tree; modeling it as a second, shorter tree keeps the ref
    // count right (3 node visits) without a variant node type.
    unsigned huge_refs = 0;
    const Pte *hpte = treeHuge_.find(vpn >> 9, &huge_refs);
    if (hpte && hpte->present) {
        out.pfn = hpte->pfn + (vpn & 0x1FF);
        out.present = true;
        out.huge = true;
        out.memRefs = huge_refs;
        return out;
    }

    return out;
}

} // namespace mosaic
