#include "pt/hashed_page_table.hh"

#include "mem/geometry.hh"
#include "util/log.hh"

namespace mosaic
{

HashedMosaicPageTable::HashedMosaicPageTable(unsigned arity,
                                             Cpfn unmapped_code,
                                             std::size_t buckets,
                                             std::uint64_t seed)
    : arity_(arity),
      log2Arity_(ceilLog2(arity)),
      unmapped_(unmapped_code),
      seed_(seed),
      buckets_(buckets)
{
    ensure(arity >= 1 && arity <= maxArity, "hashed_pt: arity range");
    ensure((arity & (arity - 1)) == 0, "hashed_pt: arity power of two");
    ensure(buckets >= 1, "hashed_pt: need at least one bucket");
}

const HashedMosaicPageTable::Entry *
HashedMosaicPageTable::findEntry(std::uint64_t key, unsigned *refs) const
{
    const Node *node = &buckets_[bucketOf(key)];
    while (node) {
        if (refs)
            ++*refs;
        for (const Entry &entry : node->entries) {
            if (entry.used && entry.key == key)
                return &entry;
        }
        node = node->overflow.get();
    }
    return nullptr;
}

HashedMosaicPageTable::Entry &
HashedMosaicPageTable::entryFor(std::uint64_t key)
{
    Node *node = &buckets_[bucketOf(key)];
    Entry *free_slot = nullptr;
    while (true) {
        for (Entry &entry : node->entries) {
            if (entry.used && entry.key == key)
                return entry;
            if (!entry.used && !free_slot)
                free_slot = &entry;
        }
        if (!node->overflow)
            break;
        node = node->overflow.get();
    }
    if (!free_slot) {
        node->overflow = std::make_unique<Node>();
        free_slot = &node->overflow->entries[0];
    }
    free_slot->key = key;
    free_slot->used = true;
    free_slot->cpfns.fill(unmapped_);
    ++tocs_;
    return *free_slot;
}

void
HashedMosaicPageTable::setCpfn(Asid asid, Vpn vpn, Cpfn cpfn)
{
    Entry &entry = entryFor(keyOf(asid, mvpnOf(vpn)));
    Cpfn &slot = entry.cpfns[offsetOf(vpn)];
    if (slot == unmapped_ && cpfn != unmapped_)
        ++mapped_;
    else if (slot != unmapped_ && cpfn == unmapped_)
        --mapped_;
    slot = cpfn;
}

void
HashedMosaicPageTable::clearCpfn(Asid asid, Vpn vpn)
{
    setCpfn(asid, vpn, unmapped_);
}

MosaicWalkResult
HashedMosaicPageTable::walk(Asid asid, Vpn vpn) const
{
    MosaicWalkResult out;
    const Entry *entry = findEntry(keyOf(asid, mvpnOf(vpn)), &out.memRefs);
    if (!entry) {
        out.cpfn = unmapped_;
        // A miss costs at least the bucket probe.
        if (out.memRefs == 0)
            out.memRefs = 1;
        return out;
    }
    out.toc = std::span<const Cpfn>(entry->cpfns.data(), arity_);
    out.cpfn = entry->cpfns[offsetOf(vpn)];
    out.present = out.cpfn != unmapped_;
    return out;
}

unsigned
HashedMosaicPageTable::maxChainLength() const
{
    unsigned longest = 0;
    for (const Node &bucket : buckets_) {
        unsigned length = 1;
        const Node *node = &bucket;
        while (node->overflow) {
            ++length;
            node = node->overflow.get();
        }
        longest = std::max(longest, length);
    }
    return longest;
}

} // namespace mosaic
