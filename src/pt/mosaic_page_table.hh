/**
 * @file
 * The mosaic page table (paper §3.1, Figure 5): a radix tree whose
 * leaves map MVPNs to tables of contents (ToCs) — one CPFN per base
 * page of the mosaic page — instead of full PFNs.
 */

#ifndef MOSAIC_PT_MOSAIC_PAGE_TABLE_HH_
#define MOSAIC_PT_MOSAIC_PAGE_TABLE_HH_

#include <array>
#include <cstdint>
#include <span>

#include "pt/radix_tree.hh"
#include "tlb/mosaic_tlb.hh"
#include "util/types.hh"

namespace mosaic
{

/** The leaf payload: a mosaic page's table of contents. */
struct Toc
{
    /** One CPFN per sub-page; slots beyond the arity are unused.
     *  Initialized lazily by MosaicPageTable to the unmapped code. */
    std::array<Cpfn, maxArity> cpfns{};

    /** True once cpfns has been initialized to the unmapped code. */
    bool initialized = false;
};

/** Result of a mosaic page-table walk. */
struct MosaicWalkResult
{
    /** The full ToC of the mosaic page; empty when no leaf exists. */
    std::span<const Cpfn> toc;

    /** CPFN of the requested page (== unmapped code if absent). */
    Cpfn cpfn = 0;

    /** True when the requested page has a valid CPFN. */
    bool present = false;

    /** Page-table node visits the walk performed. */
    unsigned memRefs = 0;
};

/** Per-process mosaic page table. */
class MosaicPageTable
{
  public:
    /**
     * @param arity sub-pages per mosaic page (power of two, <= 64).
     * @param unmapped_code the CPFN codec's invalid sentinel.
     */
    MosaicPageTable(unsigned arity, Cpfn unmapped_code);

    unsigned arity() const { return arity_; }
    Cpfn unmappedCode() const { return unmapped_; }

    Mvpn mvpnOf(Vpn vpn) const { return vpn >> log2Arity_; }
    unsigned offsetOf(Vpn vpn) const { return vpn & (arity_ - 1); }

    /** Set the CPFN of one base page. */
    void setCpfn(Vpn vpn, Cpfn cpfn);

    /** Clear the CPFN of one base page (marks it unmapped). */
    void clearCpfn(Vpn vpn);

    /** Walk for a VPN; also yields the whole ToC for TLB fill. */
    MosaicWalkResult walk(Vpn vpn) const;

    /** Number of base pages currently mapped. */
    std::uint64_t mappedPages() const { return mapped_; }

  private:
    Toc &leafFor(Vpn vpn, unsigned *refs = nullptr);

    RadixTree<Toc> tree_;
    unsigned arity_;
    unsigned log2Arity_;
    Cpfn unmapped_;
    std::uint64_t mapped_ = 0;
};

} // namespace mosaic

#endif // MOSAIC_PT_MOSAIC_PAGE_TABLE_HH_
