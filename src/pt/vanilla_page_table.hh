/**
 * @file
 * The conventional per-process page table: a 4-level radix tree over
 * 36-bit VPNs mapping each virtual page to a full PFN, with 2 MiB
 * huge-page mappings supported at the next-to-last level (as on x86).
 */

#ifndef MOSAIC_PT_VANILLA_PAGE_TABLE_HH_
#define MOSAIC_PT_VANILLA_PAGE_TABLE_HH_

#include <cstdint>

#include "pt/radix_tree.hh"
#include "util/types.hh"

namespace mosaic
{

/** A conventional page-table entry. */
struct Pte
{
    Pfn pfn = invalidPfn;
    bool present = false;
};

/** Result of a page-table walk. */
struct VanillaWalkResult
{
    /** PFN of the 4 KiB frame backing the address. */
    Pfn pfn = invalidPfn;

    /** True when a translation exists. */
    bool present = false;

    /** True when the translation came from a 2 MiB mapping. */
    bool huge = false;

    /** Page-table node visits the walk performed. */
    unsigned memRefs = 0;
};

/** Per-process conventional page table. */
class VanillaPageTable
{
  public:
    VanillaPageTable();

    /** Install a 4 KiB mapping. */
    void map(Vpn vpn, Pfn pfn);

    /**
     * Install a 2 MiB mapping. @p vpn may be any page inside the
     * region; @p base_pfn is the first frame of the physically
     * contiguous 2 MiB run.
     */
    void mapHuge(Vpn vpn, Pfn base_pfn);

    /** Remove the 4 KiB mapping of a page, if any. */
    void unmap(Vpn vpn);

    /** Walk the tree for a VPN. */
    VanillaWalkResult walk(Vpn vpn) const;

    /** Number of present 4 KiB mappings. */
    std::uint64_t mapped4k() const { return mapped4k_; }

    /** Number of present 2 MiB mappings. */
    std::uint64_t mappedHuge() const { return mappedHuge_; }

  private:
    /** Leaf granule: 512 4 KiB PTEs, or one huge mapping. */
    RadixTree<Pte> tree4k_;
    RadixTree<Pte> treeHuge_;
    std::uint64_t mapped4k_ = 0;
    std::uint64_t mappedHuge_ = 0;
};

} // namespace mosaic

#endif // MOSAIC_PT_VANILLA_PAGE_TABLE_HH_
