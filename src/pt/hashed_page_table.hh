/**
 * @file
 * A hashed mosaic page table (paper §5.5): buckets of inline ToC
 * entries with overflow chains, keyed by (ASID, MVPN). Demonstrates
 * the paper's claim that mosaic "can use any page-table structure":
 * the same ToC leaves behind a one-reference (best case) walk
 * instead of the radix tree's four.
 *
 * Bucket geometry follows the classic design: four entries per
 * bucket (one cache line of PTE-sized records), collision chains
 * beyond that — the chains being the known weakness §5.5 discusses.
 */

#ifndef MOSAIC_PT_HASHED_PAGE_TABLE_HH_
#define MOSAIC_PT_HASHED_PAGE_TABLE_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "hash/xxhash64.hh"
#include "pt/mosaic_page_table.hh"
#include "util/types.hh"

namespace mosaic
{

/** Open hash table of mosaic ToCs with bucketed chaining. */
class HashedMosaicPageTable
{
  public:
    /** Entries stored inline per bucket (one cache line). */
    static constexpr unsigned bucketEntries = 4;

    /**
     * @param arity sub-pages per mosaic page (power of two, <= 64).
     * @param unmapped_code the CPFN codec's invalid sentinel.
     * @param buckets hash-bucket count; sizes the table.
     * @param seed hash seed.
     */
    HashedMosaicPageTable(unsigned arity, Cpfn unmapped_code,
                          std::size_t buckets = 4096,
                          std::uint64_t seed = 1);

    unsigned arity() const { return arity_; }
    Cpfn unmappedCode() const { return unmapped_; }

    Mvpn mvpnOf(Vpn vpn) const { return vpn >> log2Arity_; }
    unsigned offsetOf(Vpn vpn) const { return vpn & (arity_ - 1); }

    /** Set the CPFN of one base page for (asid, vpn). */
    void setCpfn(Asid asid, Vpn vpn, Cpfn cpfn);

    /** Clear the CPFN of one base page. */
    void clearCpfn(Asid asid, Vpn vpn);

    /** Walk: memRefs counts bucket/chain nodes touched. */
    MosaicWalkResult walk(Asid asid, Vpn vpn) const;

    /** Base pages currently mapped. */
    std::uint64_t mappedPages() const { return mapped_; }

    /** Mosaic pages (ToCs) stored. */
    std::uint64_t storedTocs() const { return tocs_; }

    /** Longest collision chain (in nodes) in the table. */
    unsigned maxChainLength() const;

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        std::array<Cpfn, maxArity> cpfns{};
        bool used = false;
    };

    struct Node
    {
        std::array<Entry, bucketEntries> entries{};
        std::unique_ptr<Node> overflow;
    };

    std::uint64_t
    keyOf(Asid asid, Mvpn mvpn) const
    {
        return (std::uint64_t{asid} << 40) | mvpn;
    }

    std::size_t
    bucketOf(std::uint64_t key) const
    {
        return xxhash64(key, seed_) % buckets_.size();
    }

    /** Find the entry for a key; optionally counts node hops. */
    const Entry *findEntry(std::uint64_t key, unsigned *refs) const;

    /** Find or create the entry for a key. */
    Entry &entryFor(std::uint64_t key);

    unsigned arity_;
    unsigned log2Arity_;
    Cpfn unmapped_;
    std::uint64_t seed_;
    std::vector<Node> buckets_;
    std::uint64_t mapped_ = 0;
    std::uint64_t tocs_ = 0;
};

} // namespace mosaic

#endif // MOSAIC_PT_HASHED_PAGE_TABLE_HH_
