/**
 * @file
 * A radix (multi-level) page-table tree with 9-bit fanout per level,
 * i.e. 512-entry nodes that would each occupy one 4 KiB page in a
 * real page table.
 *
 * Both the vanilla x86-style page table and the mosaic page table
 * (whose leaves hold tables of contents, paper Figure 5) are built on
 * this structure. Lookups report how many node visits ("memory
 * references") the walk took so the simulator can account for walk
 * traffic.
 */

#ifndef MOSAIC_PT_RADIX_TREE_HH_
#define MOSAIC_PT_RADIX_TREE_HH_

#include <array>
#include <cstdint>
#include <memory>

#include "util/log.hh"

namespace mosaic
{

/**
 * @tparam Leaf payload stored per key; default-constructed on first
 *         touch.
 */
template <typename Leaf>
class RadixTree
{
  public:
    static constexpr unsigned fanoutBits = 9;
    static constexpr unsigned fanout = 1u << fanoutBits;

    /**
     * @param key_bits significant key width; determines the number
     *        of levels (ceil(key_bits / 9), minimum 1).
     */
    explicit RadixTree(unsigned key_bits)
        : levels_((key_bits + fanoutBits - 1) / fanoutBits)
    {
        if (levels_ == 0)
            levels_ = 1;
        root_ = std::make_unique<Node>();
        if (levels_ == 1)
            root_->leaves = std::make_unique<LeafArray>();
    }

    /** Number of radix levels. */
    unsigned levels() const { return levels_; }

    /**
     * Find the leaf for a key, creating intermediate nodes as
     * needed. @p refs, when non-null, accumulates the walk length.
     */
    Leaf &
    getOrCreate(std::uint64_t key, unsigned *refs = nullptr)
    {
        Node *node = root_.get();
        for (unsigned level = levels_; level-- > 1;) {
            if (refs)
                ++*refs;
            const unsigned idx = indexAt(key, level);
            auto &child = node->children[idx];
            if (!child) {
                child = std::make_unique<Node>();
                if (level == 1)
                    child->leaves = std::make_unique<LeafArray>();
            }
            node = child.get();
        }
        if (refs)
            ++*refs;
        return (*node->leaves)[indexAt(key, 0)];
    }

    /**
     * Find the leaf for a key without creating anything; nullptr
     * when no leaf node exists on the path.
     */
    Leaf *
    find(std::uint64_t key, unsigned *refs = nullptr)
    {
        Node *node = root_.get();
        for (unsigned level = levels_; level-- > 1;) {
            if (refs)
                ++*refs;
            Node *child = node->children[indexAt(key, level)].get();
            if (!child)
                return nullptr;
            node = child;
        }
        if (refs)
            ++*refs;
        return &(*node->leaves)[indexAt(key, 0)];
    }

    const Leaf *
    find(std::uint64_t key, unsigned *refs = nullptr) const
    {
        return const_cast<RadixTree *>(this)->find(key, refs);
    }

    /** Visit every instantiated leaf as (key, leaf). */
    template <typename Visitor>
    void
    forEach(Visitor &&visit)
    {
        forEachImpl(*root_, levels_ - 1, 0, visit);
    }

  private:
    using LeafArray = std::array<Leaf, fanout>;

    struct Node
    {
        std::array<std::unique_ptr<Node>, fanout> children{};
        std::unique_ptr<LeafArray> leaves;
    };

    static unsigned
    indexAt(std::uint64_t key, unsigned level)
    {
        return static_cast<unsigned>(
            (key >> (level * fanoutBits)) & (fanout - 1));
    }

    template <typename Visitor>
    void
    forEachImpl(Node &node, unsigned level, std::uint64_t prefix,
                Visitor &visit)
    {
        if (node.leaves) {
            for (unsigned i = 0; i < fanout; ++i)
                visit((prefix << fanoutBits) | i, (*node.leaves)[i]);
            return;
        }
        for (unsigned i = 0; i < fanout; ++i) {
            if (node.children[i]) {
                forEachImpl(*node.children[i], level - 1,
                            (prefix << fanoutBits) | i, visit);
            }
        }
    }

    unsigned levels_;
    std::unique_ptr<Node> root_;
};

} // namespace mosaic

#endif // MOSAIC_PT_RADIX_TREE_HH_
