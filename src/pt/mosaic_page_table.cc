#include "pt/mosaic_page_table.hh"

#include "mem/geometry.hh"

namespace mosaic
{

MosaicPageTable::MosaicPageTable(unsigned arity, Cpfn unmapped_code)
    : tree_(vpnBits - ceilLog2(arity)),
      arity_(arity),
      log2Arity_(ceilLog2(arity)),
      unmapped_(unmapped_code)
{
    ensure(arity >= 1 && arity <= maxArity, "mosaic_pt: arity range");
    ensure((arity & (arity - 1)) == 0, "mosaic_pt: arity power of two");
}

Toc &
MosaicPageTable::leafFor(Vpn vpn, unsigned *refs)
{
    Toc &toc = tree_.getOrCreate(mvpnOf(vpn), refs);
    if (!toc.initialized) {
        toc.cpfns.fill(unmapped_);
        toc.initialized = true;
    }
    return toc;
}

void
MosaicPageTable::setCpfn(Vpn vpn, Cpfn cpfn)
{
    Toc &toc = leafFor(vpn);
    Cpfn &slot = toc.cpfns[offsetOf(vpn)];
    if (slot == unmapped_ && cpfn != unmapped_)
        ++mapped_;
    else if (slot != unmapped_ && cpfn == unmapped_)
        --mapped_;
    slot = cpfn;
}

void
MosaicPageTable::clearCpfn(Vpn vpn)
{
    setCpfn(vpn, unmapped_);
}

MosaicWalkResult
MosaicPageTable::walk(Vpn vpn) const
{
    MosaicWalkResult out;
    const Toc *toc = tree_.find(mvpnOf(vpn), &out.memRefs);
    if (!toc || !toc->initialized) {
        out.cpfn = unmapped_;
        return out;
    }
    out.toc = std::span<const Cpfn>(toc->cpfns.data(), arity_);
    out.cpfn = toc->cpfns[offsetOf(vpn)];
    out.present = out.cpfn != unmapped_;
    return out;
}

} // namespace mosaic
