#include "fault/fault.hh"

#include <charconv>
#include <cstdlib>

#include "hash/mix.hh"
#include "util/log.hh"

namespace mosaic::fault
{

namespace
{

/** Parse a decimal unsigned integer; Status on anything else. */
Result<std::uint64_t>
parseUint(std::string_view text, const std::string &what)
{
    std::uint64_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::invalidArgument(
            "fault plan: " + what + " is not an unsigned integer: '" +
            std::string(text) + "'");
    }
    return out;
}

/** Parse a double (strtod accepts 1e-4 etc.); Status otherwise. */
Result<double>
parseDouble(std::string_view text, const std::string &what)
{
    const std::string copy(text);
    char *end = nullptr;
    const double out = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size() || copy.empty()) {
        return Status::invalidArgument(
            "fault plan: " + what + " is not a number: '" + copy + "'");
    }
    return out;
}

/** Uniform double in [0, 1) from a mixed 64-bit word. */
double
u01(std::uint64_t x)
{
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

} // namespace

std::uint64_t
hashString(std::string_view s)
{
    std::uint64_t h = 1469598103934665603ull; // FNV offset basis
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull; // FNV prime
    }
    return h;
}

Result<FaultPlan>
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t end = text.find(';', pos);
        const std::string_view entry(
            text.data() + pos,
            (end == std::string::npos ? text.size() : end) - pos);
        pos = end == std::string::npos ? text.size() : end + 1;
        if (entry.empty())
            continue; // tolerate "a:p=1;;b:p=1" and trailing ';'

        const std::size_t colon = entry.find(':');
        if (colon == std::string_view::npos || colon == 0) {
            return Status::invalidArgument(
                "fault plan: entry '" + std::string(entry) +
                "' is not site:key=value[,key=value]");
        }
        FaultSpec spec;
        spec.site = std::string(entry.substr(0, colon));

        std::string_view rest = entry.substr(colon + 1);
        while (!rest.empty()) {
            const std::size_t comma = rest.find(',');
            const std::string_view kv = rest.substr(
                0, comma == std::string_view::npos ? rest.size() : comma);
            rest = comma == std::string_view::npos
                       ? std::string_view{}
                       : rest.substr(comma + 1);
            const std::size_t eq = kv.find('=');
            if (eq == std::string_view::npos || eq == 0 ||
                    eq + 1 >= kv.size()) {
                return Status::invalidArgument(
                    "fault plan: '" + std::string(kv) + "' in site '" +
                    spec.site + "' is not key=value");
            }
            const std::string_view key = kv.substr(0, eq);
            const std::string_view value = kv.substr(eq + 1);
            if (key == "every") {
                auto r = parseUint(value, spec.site + ".every");
                if (!r.ok())
                    return r.status();
                if (r.value() == 0) {
                    return Status::invalidArgument(
                        "fault plan: " + spec.site + ".every must be >= 1");
                }
                spec.every = r.value();
            } else if (key == "p") {
                auto r = parseDouble(value, spec.site + ".p");
                if (!r.ok())
                    return r.status();
                if (r.value() < 0.0 || r.value() > 1.0) {
                    return Status::invalidArgument(
                        "fault plan: " + spec.site +
                        ".p must be in [0, 1]");
                }
                spec.p = r.value();
            } else if (key == "after") {
                auto r = parseUint(value, spec.site + ".after");
                if (!r.ok())
                    return r.status();
                spec.after = r.value();
            } else if (key == "limit") {
                auto r = parseUint(value, spec.site + ".limit");
                if (!r.ok())
                    return r.status();
                spec.limit = r.value();
            } else {
                return Status::invalidArgument(
                    "fault plan: unknown key '" + std::string(key) +
                    "' for site '" + spec.site +
                    "' (expected every, p, after, or limit)");
            }
        }
        if (spec.every == 0 && spec.p == 0.0) {
            return Status::invalidArgument(
                "fault plan: site '" + spec.site +
                "' needs every=N or p=X to ever fire");
        }
        for (const FaultSpec &existing : plan.specs_) {
            if (existing.site == spec.site) {
                return Status::invalidArgument(
                    "fault plan: site '" + spec.site +
                    "' specified twice");
            }
        }
        plan.specs_.push_back(std::move(spec));
    }
    return plan;
}

FaultPlan
FaultPlan::fromEnv()
{
    const char *env = std::getenv("MOSAIC_FAULTS");
    if (env == nullptr || *env == '\0')
        return FaultPlan{};
    Result<FaultPlan> plan = parse(env);
    if (!plan.ok())
        fatal("MOSAIC_FAULTS: " + plan.status().toString());
    return plan.value();
}

bool
FaultPlan::envActive()
{
    const char *env = std::getenv("MOSAIC_FAULTS");
    return env != nullptr && *env != '\0';
}

const FaultSpec *
FaultPlan::spec(std::string_view site) const
{
    for (const FaultSpec &s : specs_) {
        if (s.site == site)
            return &s;
    }
    return nullptr;
}

std::string
FaultPlan::toString() const
{
    std::string out;
    for (const FaultSpec &s : specs_) {
        if (!out.empty())
            out += ';';
        out += s.site + ':';
        bool first = true;
        const auto append = [&](const std::string &kv) {
            if (!first)
                out += ',';
            out += kv;
            first = false;
        };
        if (s.every > 0)
            append("every=" + std::to_string(s.every));
        if (s.p > 0.0) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "p=%g", s.p);
            append(buf);
        }
        if (s.after > 0)
            append("after=" + std::to_string(s.after));
        if (s.limit != ~std::uint64_t{0})
            append("limit=" + std::to_string(s.limit));
    }
    return out;
}

FaultInjector::SiteState &
FaultInjector::state(std::string_view site)
{
    const auto it = sites_.find(site);
    if (it != sites_.end())
        return it->second;
    SiteState fresh;
    fresh.spec = plan_ != nullptr ? plan_->spec(site) : nullptr;
    return sites_.emplace(std::string(site), fresh).first->second;
}

bool
FaultInjector::shouldFail(std::string_view site)
{
    if (plan_ == nullptr || plan_->empty())
        return false;
    SiteState &s = state(site);
    const std::uint64_t hit = ++s.hits;
    if (s.spec == nullptr)
        return false;
    if (hit <= s.spec->after || s.fired >= s.spec->limit)
        return false;
    const std::uint64_t active_hit = hit - s.spec->after;
    bool fire = s.spec->every > 0 && active_hit % s.spec->every == 0;
    if (!fire && s.spec->p > 0.0) {
        const std::uint64_t word =
            mix64(seed_ ^ mix64(hashString(site) ^ mix64(hit)));
        fire = u01(word) < s.spec->p;
    }
    if (fire)
        ++s.fired;
    return fire;
}

std::uint64_t
FaultInjector::hits(std::string_view site) const
{
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t
FaultInjector::fired(std::string_view site) const
{
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.fired;
}

std::uint64_t
FaultInjector::totalFired() const
{
    std::uint64_t total = 0;
    for (const auto &[site, state] : sites_)
        total += state.fired;
    return total;
}

} // namespace mosaic::fault
