#include "fault/checkpoint.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace mosaic::fault
{

Status
writeCheckpointFile(const std::string &path, const std::string &magic,
                    const std::string &fingerprint,
                    const std::string &payload)
{
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << magic << '\n' << "fingerprint " << fingerprint << '\n'
        << payload;
    out.flush();
    const bool wrote = out.good();
    out.close();
    std::error_code ec;
    if (wrote)
        std::filesystem::rename(tmp, path, ec);
    if (!wrote || ec) {
        std::filesystem::remove(tmp, ec);
        return Status::ioError("cannot write checkpoint '" + path +
                               "'");
    }
    return {};
}

Result<std::string>
readCheckpointFile(const std::string &path, const std::string &magic,
                   const std::string &fingerprint)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return Status::notFound("no checkpoint at '" + path + "'");
    std::string line;
    if (!std::getline(in, line) || line != magic) {
        return Status::dataLoss("checkpoint '" + path +
                                "' has a foreign or corrupt header");
    }
    if (!std::getline(in, line) ||
            line != "fingerprint " + fingerprint) {
        return Status::dataLoss(
            "checkpoint '" + path +
            "' was written under a different configuration");
    }
    std::ostringstream payload;
    payload << in.rdbuf();
    return payload.str();
}

} // namespace mosaic::fault
