/**
 * @file
 * The checkpoint-file convention shared by everything that
 * checkpoints state for crash recovery (DESIGN.md §11/§16): the
 * resilient sweep engine's per-cell results and mosaicd's per-epoch
 * session snapshots both write
 *
 *     <magic line>\n
 *     fingerprint <configuration fingerprint>\n
 *     <opaque payload bytes>
 *
 * atomically (tmp file + rename), and refuse to load a checkpoint
 * whose magic or fingerprint does not match — a stale checkpoint
 * must force recomputation, never merge silently.
 */

#ifndef MOSAIC_FAULT_CHECKPOINT_HH_
#define MOSAIC_FAULT_CHECKPOINT_HH_

#include <string>

#include "util/status.hh"

namespace mosaic::fault
{

/** Magic line of sweep cell checkpoints (PR 4 format, unchanged). */
inline constexpr const char *cellCheckpointMagic =
    "mosaic-cell-checkpoint v1";

/** Magic line of mosaicd epoch checkpoints. */
inline constexpr const char *epochCheckpointMagic =
    "mosaicd-epoch-checkpoint v1";

/**
 * Atomically write @p payload as a checkpoint file: the bytes land
 * in <path>.tmp first and are renamed over @p path only when the
 * write completed, so a crash mid-write leaves either the old
 * checkpoint or none — never a torn one. IoError on any failure
 * (the tmp file is cleaned up).
 */
Status writeCheckpointFile(const std::string &path,
                           const std::string &magic,
                           const std::string &fingerprint,
                           const std::string &payload);

/**
 * Read a checkpoint written by writeCheckpointFile. NotFound when
 * the file does not exist; DataLoss when the magic or fingerprint
 * line does not match (stale or foreign checkpoint — recompute).
 * Returns the opaque payload on success.
 */
Result<std::string> readCheckpointFile(const std::string &path,
                                       const std::string &magic,
                                       const std::string &fingerprint);

} // namespace mosaic::fault

#endif // MOSAIC_FAULT_CHECKPOINT_HH_
