/**
 * @file
 * Crash-resilient, resumable execution of experiment sweeps
 * (DESIGN.md §11).
 *
 * A sweep is n independent cells run on the thread pool. The seed
 * behavior (PR 1) was all-or-nothing: one throwing cell aborted the
 * whole run. SweepRunner instead gives every cell:
 *
 *  - isolation: a cell that throws is recorded — cell id, attempt
 *    count, error text — in a failure manifest instead of killing
 *    the sweep; the remaining cells still run and report;
 *  - retries: each failed cell is re-attempted up to
 *    MOSAIC_CELL_RETRIES more times (default 2) with a deterministic
 *    backoff schedule (MOSAIC_CELL_BACKOFF_MS << attempt, default 0);
 *  - a watchdog: when MOSAIC_CELL_TIMEOUT (seconds) is set, a
 *    monitor thread flags cells that exceed it — cooperative, the
 *    cell is not killed, but the overrun is warned about live and
 *    counted;
 *  - checkpoint/resume: when MOSAIC_RESUME_DIR is set, every
 *    completed cell's result is serialized to
 *    <dir>/<sweep>.<cell>.cell as soon as it finishes, and a rerun
 *    with the same directory loads those results instead of
 *    recomputing — so an interrupted sweep (SIGINT, SIGKILL, power
 *    loss) resumes where it left off and produces the same merged
 *    results as an uninterrupted run. Checkpoints embed a
 *    fingerprint of the sweep configuration; a mismatch forces
 *    recomputation rather than silently merging stale results.
 *
 * The injection site "cell.run" (a thread-pool task crash) is
 * consulted once per attempt with an injector seeded from
 * (sweep, cell, attempt), so injected cell failures — including
 * always-failing cells via cell.run:p=1 — replay identically at any
 * thread count.
 *
 * Failure manifests and resume counters are *run-shape* data, not
 * results: benches record them in the BENCH_*.json manifest, keeping
 * the metrics section byte-comparable between interrupted-and-
 * resumed and uninterrupted runs.
 */

#ifndef MOSAIC_FAULT_SWEEP_HH_
#define MOSAIC_FAULT_SWEEP_HH_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "util/thread_pool.hh"

namespace mosaic::fault
{

/** One permanently-failed cell in the manifest. */
struct CellFailure
{
    std::string cell;
    unsigned attempts = 0;
    std::string error;
};

/** Knobs of one resilient sweep (see file comment for env names). */
struct SweepOptions
{
    /** Attempts per cell (1 + retries). */
    unsigned maxAttempts = 3;

    /** Backoff before retry r (1-based): backoffMs << (r - 1). */
    unsigned backoffMs = 0;

    /** Watchdog threshold in seconds; 0 disables the monitor. */
    double watchdogSeconds = 0.0;

    /** Checkpoint directory; empty disables checkpoint/resume. */
    std::string resumeDir;

    /** Configuration fingerprint embedded in checkpoints. */
    std::string fingerprint;

    /** Test hook (MOSAIC_SWEEP_DIE_AFTER): _exit(130) after this
     *  many freshly computed cells, simulating a mid-sweep kill.
     *  0 disables. */
    unsigned dieAfterCells = 0;

    /** Defaults overridden by the MOSAIC_* environment knobs. */
    static SweepOptions fromEnv();
};

/** What happened across one sweep (the failure manifest + counters). */
struct SweepStats
{
    /** Permanently failed cells, in cell-index order. */
    std::vector<CellFailure> failures;

    /** Retry attempts that ran (beyond each cell's first). */
    std::uint64_t retries = 0;

    /** Cells flagged by the watchdog. */
    std::uint64_t watchdogTimeouts = 0;

    /** Cells restored from checkpoints instead of recomputed. */
    std::uint64_t resumedCells = 0;

    /** Fresh results checkpointed to the resume directory. */
    std::uint64_t checkpointedCells = 0;

    /** "cell.run" faults injected across all attempts. */
    std::uint64_t injectedCellFaults = 0;

    bool allOk() const { return failures.empty(); }
};

/** Runs one sweep's cells with isolation/retry/watchdog/resume. */
class SweepRunner
{
  public:
    /** Serialize cell @p i's completed result (checkpointing). */
    using SaveFn = std::function<std::string(std::size_t)>;

    /** Restore cell @p i from a checkpoint payload; false = payload
     *  unusable, recompute. */
    using LoadFn = std::function<bool(std::size_t, const std::string &)>;

    SweepRunner(std::string name, SweepOptions options);

    /**
     * Run cells 0..n-1 on @p pool. @p cellId names a cell for
     * manifests and checkpoint files (must be deterministic and
     * unique per index). @p body computes the cell, writing its
     * result into caller-owned slot i. @p save/@p load are optional;
     * both (plus a non-empty resumeDir) enable checkpoint/resume.
     *
     * Never throws for cell failures — inspect the returned
     * SweepStats. A checkpoint that cannot be written is a warning
     * (the sweep result is unaffected); a checkpoint that cannot be
     * read or fails load() is discarded and the cell recomputed.
     */
    SweepStats run(ThreadPool &pool, std::size_t n,
                   const std::function<std::string(std::size_t)> &cellId,
                   const std::function<void(std::size_t)> &body,
                   const SaveFn &save = nullptr,
                   const LoadFn &load = nullptr);

    const std::string &name() const { return name_; }
    const SweepOptions &options() const { return options_; }

  private:
    std::string checkpointPath(const std::string &cell) const;

    std::string name_;
    SweepOptions options_;
    FaultPlan plan_;
};

} // namespace mosaic::fault

#endif // MOSAIC_FAULT_SWEEP_HH_
