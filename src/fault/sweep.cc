#include "fault/sweep.hh"

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <optional>
#include <thread>

#include "fault/checkpoint.hh"
#include "hash/mix.hh"
#include "util/log.hh"
#include "util/parse.hh"

namespace mosaic::fault
{

namespace
{

/** Filename-safe form of a cell id. */
std::string
sanitize(const std::string &cell)
{
    std::string out;
    out.reserve(cell.size());
    for (const char c : cell) {
        const bool safe = std::isalnum(static_cast<unsigned char>(c)) ||
                          c == '.' || c == '-' || c == '_';
        out += safe ? c : '_';
    }
    return out;
}

std::string
describeException()
{
    try {
        throw;
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "non-standard exception";
    }
}

} // namespace

SweepOptions
SweepOptions::fromEnv()
{
    // Strict parsing (util/parse.hh): a set-but-malformed knob —
    // including a negative retry count — is an unusable
    // configuration and exits with the offender quoted, never a
    // silent default.
    SweepOptions options;
    options.maxAttempts = 1 + static_cast<unsigned>(
        envUnsigned("MOSAIC_CELL_RETRIES", 2));
    options.backoffMs = static_cast<unsigned>(
        envUnsigned("MOSAIC_CELL_BACKOFF_MS", 0));
    options.watchdogSeconds =
        std::max(0.0, envFinite("MOSAIC_CELL_TIMEOUT", 0.0));
    if (const char *dir = std::getenv("MOSAIC_RESUME_DIR");
            dir != nullptr && *dir != '\0') {
        options.resumeDir = dir;
    }
    options.dieAfterCells = static_cast<unsigned>(
        envUnsigned("MOSAIC_SWEEP_DIE_AFTER", 0));
    return options;
}

SweepRunner::SweepRunner(std::string name, SweepOptions options)
    : name_(std::move(name)), options_(std::move(options)),
      plan_(FaultPlan::fromEnv())
{
    ensure(options_.maxAttempts >= 1, "sweep: need at least one attempt");
}

std::string
SweepRunner::checkpointPath(const std::string &cell) const
{
    return options_.resumeDir + "/" + sanitize(name_) + "." +
           sanitize(cell) + ".cell";
}

SweepStats
SweepRunner::run(ThreadPool &pool, std::size_t n,
                 const std::function<std::string(std::size_t)> &cellId,
                 const std::function<void(std::size_t)> &body,
                 const SaveFn &save, const LoadFn &load)
{
    using Clock = std::chrono::steady_clock;

    const bool checkpointing = !options_.resumeDir.empty() &&
                               save != nullptr && load != nullptr;
    if (checkpointing) {
        std::error_code ec;
        std::filesystem::create_directories(options_.resumeDir, ec);
        if (ec) {
            warn("sweep " + name_ + ": cannot create resume dir '" +
                 options_.resumeDir + "' (" + ec.message() +
                 "); checkpointing disabled");
        }
    }

    // Per-index slots (written only by the claimant of the index)
    // keep the manifest deterministic without locking.
    std::vector<std::optional<CellFailure>> failed(n);
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> resumed{0};
    std::atomic<std::uint64_t> checkpointed{0};
    std::atomic<std::uint64_t> injected{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<unsigned> freshDone{0};

    // Watchdog state: per-cell start time (steady nanos; 0 = idle)
    // and a flagged bit so each overrun is counted once.
    std::vector<std::atomic<std::int64_t>> startedNs(n);
    std::vector<std::atomic<bool>> flagged(n);
    std::mutex watchdogMutex;
    std::condition_variable watchdogWake;
    bool watchdogStop = false;
    std::thread watchdog;
    if (options_.watchdogSeconds > 0.0) {
        watchdog = std::thread([&] {
            const auto threshold = std::chrono::duration<double>(
                options_.watchdogSeconds);
            std::unique_lock<std::mutex> lock(watchdogMutex);
            while (!watchdogStop) {
                watchdogWake.wait_for(
                    lock, std::chrono::milliseconds(50),
                    [&] { return watchdogStop; });
                if (watchdogStop)
                    return;
                const std::int64_t now =
                    Clock::now().time_since_epoch().count();
                for (std::size_t i = 0; i < n; ++i) {
                    const std::int64_t started =
                        startedNs[i].load(std::memory_order_acquire);
                    if (started == 0 ||
                            flagged[i].load(std::memory_order_relaxed))
                        continue;
                    const auto elapsed =
                        std::chrono::nanoseconds(now - started);
                    if (elapsed >= threshold &&
                            !flagged[i].exchange(true)) {
                        ++timeouts;
                        warn("sweep " + name_ + ": cell index " +
                             std::to_string(i) +
                             " exceeded the watchdog timeout (" +
                             std::to_string(options_.watchdogSeconds) +
                             "s) and is still running");
                    }
                }
            }
        });
    }

    parallelFor(pool, n, [&](std::size_t i) {
        const std::string cell = cellId(i);

        if (checkpointing) {
            const Result<std::string> payload = readCheckpointFile(
                checkpointPath(cell), cellCheckpointMagic,
                options_.fingerprint);
            if (payload.ok()) {
                bool loaded = false;
                try {
                    loaded = load(i, payload.value());
                } catch (...) {
                    loaded = false;
                }
                if (loaded) {
                    ++resumed;
                    return;
                }
            }
            if (payload.ok() ||
                    payload.status().code() != StatusCode::NotFound) {
                warn("sweep " + name_ + ": stale or unreadable "
                     "checkpoint for cell '" + cell +
                     "'; recomputing");
            }
        }

        std::string last_error;
        unsigned attempt = 0;
        for (attempt = 1; attempt <= options_.maxAttempts; ++attempt) {
            if (attempt > 1) {
                ++retries;
                if (options_.backoffMs > 0) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            std::uint64_t{options_.backoffMs}
                            << (attempt - 2)));
                }
            }
            // One injector per (sweep, cell, attempt): bit-identical
            // firing at any thread count, and retries of a
            // probabilistic fault get fresh draws while cell.run:p=1
            // keeps failing forever (the always-failing cell).
            FaultInjector inj(
                &plan_, mix64(hashString(name_) ^
                              mix64(hashString(cell) ^
                                    mix64(attempt))));
            startedNs[i].store(
                Clock::now().time_since_epoch().count(),
                std::memory_order_release);
            try {
                if (inj.shouldFail("cell.run")) {
                    ++injected;
                    throw FaultInjectedError("cell.run");
                }
                body(i);
                startedNs[i].store(0, std::memory_order_release);
                last_error.clear();
                break;
            } catch (...) {
                startedNs[i].store(0, std::memory_order_release);
                last_error = describeException();
                warn("sweep " + name_ + ": cell '" + cell +
                     "' attempt " + std::to_string(attempt) + "/" +
                     std::to_string(options_.maxAttempts) +
                     " failed: " + last_error);
            }
        }

        if (!last_error.empty()) {
            failed[i] = CellFailure{
                cell, options_.maxAttempts, last_error};
            return;
        }

        if (checkpointing) {
            std::string payload;
            bool have_payload = false;
            try {
                payload = save(i);
                have_payload = true;
            } catch (...) {
                warn("sweep " + name_ + ": serializing cell '" + cell +
                     "' failed (" + describeException() +
                     "); not checkpointed");
            }
            if (have_payload) {
                const Status wrote = writeCheckpointFile(
                    checkpointPath(cell), cellCheckpointMagic,
                    options_.fingerprint, payload);
                if (!wrote.ok())
                    warn("sweep " + name_ + ": " + wrote.message());
                else
                    ++checkpointed;
            }
        }

        const unsigned fresh = ++freshDone;
        if (options_.dieAfterCells > 0 &&
                fresh >= options_.dieAfterCells) {
            // Test hook: simulate a mid-sweep kill *after* the
            // completed cells' checkpoints are durable. 130 mirrors
            // death-by-SIGINT.
            warn("sweep " + name_ + ": MOSAIC_SWEEP_DIE_AFTER " +
                 "reached after " + std::to_string(fresh) +
                 " fresh cells; exiting");
            std::_Exit(130);
        }
    });

    if (watchdog.joinable()) {
        {
            const std::lock_guard<std::mutex> lock(watchdogMutex);
            watchdogStop = true;
        }
        watchdogWake.notify_all();
        watchdog.join();
    }

    SweepStats stats;
    stats.retries = retries.load();
    stats.watchdogTimeouts = timeouts.load();
    stats.resumedCells = resumed.load();
    stats.checkpointedCells = checkpointed.load();
    stats.injectedCellFaults = injected.load();
    for (std::size_t i = 0; i < n; ++i) {
        if (failed[i])
            stats.failures.push_back(std::move(*failed[i]));
    }
    return stats;
}

} // namespace mosaic::fault
