/**
 * @file
 * Deterministic fault injection (DESIGN.md §11).
 *
 * A FaultPlan names *injection sites* — fixed strings compiled into
 * the hot layers ("swap.write", "vm.place", "iceberg.insert", ...) —
 * and for each site a firing rule. Components consult a FaultInjector
 * at their site; the injector decides from (plan, its seed, the
 * site's hit count) alone, never from ambient randomness or wall
 * clock, so a given plan replays bit-identically on any machine and
 * at any MOSAIC_THREADS setting, provided injectors are scoped the
 * way the rest of the determinism story scopes RNGs: one injector
 * per experiment cell / per trace run, seeded from the cell or trace
 * seed.
 *
 * Plan syntax (the MOSAIC_FAULTS environment variable):
 *
 *     site:key=value[,key=value][;site:key=value...]
 *
 * e.g.  MOSAIC_FAULTS="swap.write:every=1000;iceberg.insert:p=1e-4"
 *
 * Keys per site:
 *     every=N   fire on every Nth hit (N >= 1)
 *     p=X       fire each hit with probability X in [0, 1],
 *               decided by hashing (seed, site, hit index)
 *     after=N   suppress the first N hits
 *     limit=K   fire at most K times
 * A site needs `every` or `p` (or both; either firing counts once).
 *
 * When no plan is set, components hold a null injector pointer and
 * skip the site check entirely: the zero-overhead / no-behavior-
 * change guarantee.
 *
 * Serving sites (mosaicd, DESIGN.md §16) — every firing must surface
 * as a typed Status or a recovered restart, never a silent drop:
 *     serve.admit        admission rejects the request (shed,
 *                        Status Injected, before acceptance)
 *     serve.log.append   the write-ahead append fails (shed,
 *                        IoError, before acceptance)
 *     serve.worker.stall a worker wedges until the watchdog
 *                        restarts it (requests stay queued)
 *     serve.crash        consulted at epoch boundaries; firing
 *                        crashes the daemon, which must recover
 *                        from checkpoint + request-log replay
 */

#ifndef MOSAIC_FAULT_FAULT_HH_
#define MOSAIC_FAULT_FAULT_HH_

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hh"

namespace mosaic::fault
{

/** Firing rule for one injection site. */
struct FaultSpec
{
    std::string site;

    /** Fire on every Nth hit; 0 = disabled. */
    std::uint64_t every = 0;

    /** Per-hit firing probability; 0 = disabled. */
    double p = 0.0;

    /** Hits suppressed before the rule becomes active. */
    std::uint64_t after = 0;

    /** Maximum firings; ~0 = unlimited. */
    std::uint64_t limit = ~std::uint64_t{0};
};

/** A parsed set of site rules (immutable once built). */
class FaultPlan
{
  public:
    /** Parse the MOSAIC_FAULTS syntax; Status on malformed input. */
    static Result<FaultPlan> parse(const std::string &text);

    /**
     * The process's plan from $MOSAIC_FAULTS ("" when unset).
     * A malformed plan is a bad user configuration: fatal().
     */
    static FaultPlan fromEnv();

    /** True when $MOSAIC_FAULTS is set and non-empty. */
    static bool envActive();

    bool empty() const { return specs_.empty(); }

    /** The rule for a site, or nullptr when the plan has none. */
    const FaultSpec *spec(std::string_view site) const;

    const std::vector<FaultSpec> &specs() const { return specs_; }

    /** Canonical one-line form (for manifests and logs). */
    std::string toString() const;

  private:
    std::vector<FaultSpec> specs_;
};

/**
 * Thrown by components whose site failure surfaces as an exception
 * (sweep cells). Carries the site so manifests can attribute it.
 */
class FaultInjectedError : public std::runtime_error
{
  public:
    explicit FaultInjectedError(const std::string &site)
        : std::runtime_error("injected fault at site '" + site + "'"),
          site_(site)
    {
    }

    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/**
 * Per-scope fault decision state: one per experiment cell, trace
 * run, or component instance. NOT thread-safe — scope it like an RNG
 * stream (each concurrently-running cell owns its own), which is
 * exactly what makes injection thread-count invariant.
 */
class FaultInjector
{
  public:
    /** Inert injector: shouldFail() is always false. */
    FaultInjector() = default;

    /** @p plan must outlive the injector. */
    FaultInjector(const FaultPlan *plan, std::uint64_t seed)
        : plan_(plan), seed_(seed)
    {
    }

    /** True when a plan with at least one site is attached. */
    bool
    active() const
    {
        return plan_ != nullptr && !plan_->empty();
    }

    /**
     * Record one hit of @p site and decide whether it fails.
     * Deterministic: a pure function of (plan, seed, site, hit
     * index).
     */
    bool shouldFail(std::string_view site);

    /** Hits recorded at the site so far. */
    std::uint64_t hits(std::string_view site) const;

    /** Failures injected at the site so far. */
    std::uint64_t fired(std::string_view site) const;

    /** Failures injected across all sites. */
    std::uint64_t totalFired() const;

    /** Visit (site, firedCount) for every site that fired. */
    template <typename Fn>
    void
    forEachFired(Fn &&fn) const
    {
        for (const auto &[site, state] : sites_) {
            if (state.fired > 0)
                fn(site, state.fired);
        }
    }

  private:
    struct SiteState
    {
        const FaultSpec *spec = nullptr; // null: site not in plan
        std::uint64_t hits = 0;
        std::uint64_t fired = 0;
    };

    SiteState &state(std::string_view site);

    const FaultPlan *plan_ = nullptr;
    std::uint64_t seed_ = 0;
    std::map<std::string, SiteState, std::less<>> sites_;
};

/** FNV-1a of a string; the site/scope hash used for seeding. */
std::uint64_t hashString(std::string_view s);

/**
 * The Status form of a fired site, for components that degrade via
 * the error taxonomy instead of throwing (mosaicd's admission path):
 * same message as FaultInjectedError, StatusCode::Injected.
 */
inline Status
injectedStatus(std::string_view site)
{
    return Status::injected("injected fault at site '" +
                            std::string(site) + "'");
}

} // namespace mosaic::fault

#endif // MOSAIC_FAULT_FAULT_HH_
