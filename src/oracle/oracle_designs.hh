/**
 * @file
 * Reference models for the pluggable translation designs (DESIGN.md
 * §14): the same access/fill/prefetch/invalidate contract as
 * TranslationDesign, built on the naive recency-list structures of
 * oracle_tlb.hh instead of the packed arrays the real designs use.
 *
 * The wrapper policies (stride trigger conditions, PWC discounting,
 * contiguity mining) are transcribed op-for-op from the documented
 * real-side behaviour — the differential value is in the underlying
 * cache structures, whose LRU order, eviction choices, and counter
 * accounting are derived independently. Walk payloads come through
 * the shared TranslationWalker interface, so both sides are always
 * fed identical page-table answers.
 */

#ifndef MOSAIC_ORACLE_ORACLE_DESIGNS_HH_
#define MOSAIC_ORACLE_ORACLE_DESIGNS_HH_

#include <cstdint>
#include <memory>
#include <string>

#include "tlb/set_assoc.hh"
#include "tlb/tlb_stats.hh"
#include "tlb/translation_design.hh"
#include "util/types.hh"

namespace mosaic
{

/** Reference-side mirror of the TranslationDesign contract. */
class OracleDesign
{
  public:
    virtual ~OracleDesign() = default;

    virtual bool access(Asid asid, Vpn vpn, TranslationWalker &walker) = 0;
    virtual bool contains(Asid asid, Vpn vpn) const = 0;
    virtual bool prefetchFill(Asid asid, Vpn vpn,
                              TranslationWalker &walker) = 0;
    virtual void invalidatePage(Asid asid, Vpn vpn) = 0;
    virtual void flushAsid(Asid asid) = 0;
    virtual const TlbStats &stats() const = 0;
    virtual DesignCounters counters() const { return counters_; }
    virtual std::uint64_t reachPages() const = 0;
    virtual unsigned validEntries() const = 0;

  protected:
    DesignCounters counters_;
};

/** Everything the oracle factory needs to build one design. */
struct OracleDesignSpec
{
    /** "vanilla" | "mosaic" | "stride" | "pwc" | "range". */
    std::string kind = "vanilla";

    /** Wrapped kind for stride/pwc: "vanilla" | "mosaic". */
    std::string base = "vanilla";

    TlbGeometry geometry{16, 2};
    unsigned arity = 4;

    bool arbitrary = false;
    unsigned degree = 2;

    unsigned ranges = 32;
    std::uint64_t maxRun = 512;

    unsigned l1 = 16;
    unsigned l2 = 8;
};

/** Build an oracle design; panics on an unknown kind (the fuzz
 *  driver validates specs before reaching here). */
std::unique_ptr<OracleDesign> makeOracleDesign(const OracleDesignSpec &spec);

} // namespace mosaic

#endif // MOSAIC_ORACLE_ORACLE_DESIGNS_HH_
