#include "oracle/oracle_designs.hh"

#include <algorithm>
#include <array>
#include <list>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "mem/contiguity.hh"
#include "oracle/oracle_tlb.hh"
#include "util/log.hh"

namespace mosaic
{

namespace
{

// ------------------------------------------------------- leaf designs

/** OracleVanillaTlb behind the design contract. */
class OracleVanillaDesign final : public OracleDesign
{
  public:
    explicit OracleVanillaDesign(const TlbGeometry &geometry)
        : tlb_(geometry)
    {
    }

    bool
    access(Asid asid, Vpn vpn, TranslationWalker &walker) override
    {
        if (tlb_.lookup(asid, vpn))
            return true;
        fillFromWalk(asid, vpn, walker);
        return false;
    }

    bool
    contains(Asid asid, Vpn vpn) const override
    {
        return tlb_.contains(asid, vpn);
    }

    bool
    prefetchFill(Asid asid, Vpn vpn, TranslationWalker &walker) override
    {
        if (tlb_.contains(asid, vpn))
            return false;
        return fillFromWalk(asid, vpn, walker);
    }

    void
    invalidatePage(Asid asid, Vpn vpn) override
    {
        tlb_.invalidate(asid, vpn);
    }

    void flushAsid(Asid asid) override { tlb_.flushAsid(asid); }
    const TlbStats &stats() const override { return tlb_.stats(); }
    std::uint64_t reachPages() const override { return tlb_.reachPages(); }
    unsigned validEntries() const override { return tlb_.validEntries(); }

  private:
    bool
    fillFromWalk(Asid asid, Vpn vpn, TranslationWalker &walker)
    {
        counters_.walkRefs += walker.walkLevels();
        const std::optional<Pfn> pfn = walker.pfnOf(asid, vpn);
        if (!pfn)
            return false;
        tlb_.fill(asid, vpn, *pfn);
        return true;
    }

    OracleVanillaTlb tlb_;
};

/** OracleMosaicTlb behind the design contract. */
class OracleMosaicDesign final : public OracleDesign
{
  public:
    OracleMosaicDesign(const TlbGeometry &geometry, unsigned arity)
        : tlb_(geometry, arity), arity_(arity)
    {
    }

    bool
    access(Asid asid, Vpn vpn, TranslationWalker &walker) override
    {
        if (tlb_.lookup(asid, vpn))
            return true;
        fillFromWalk(asid, vpn, walker);
        return false;
    }

    bool
    contains(Asid asid, Vpn vpn) const override
    {
        return tlb_.contains(asid, vpn);
    }

    bool
    prefetchFill(Asid asid, Vpn vpn, TranslationWalker &walker) override
    {
        if (tlb_.contains(asid, vpn))
            return false;
        return fillFromWalk(asid, vpn, walker);
    }

    void
    invalidatePage(Asid asid, Vpn vpn) override
    {
        tlb_.invalidateSub(asid, vpn);
    }

    void flushAsid(Asid asid) override { tlb_.flushAsid(asid); }
    const TlbStats &stats() const override { return tlb_.stats(); }
    std::uint64_t reachPages() const override { return tlb_.reachPages(); }
    unsigned validEntries() const override { return tlb_.validEntries(); }

  private:
    bool
    fillFromWalk(Asid asid, Vpn vpn, TranslationWalker &walker)
    {
        counters_.walkRefs += walker.walkLevels();
        std::array<Cpfn, maxArity> toc;
        const std::span<Cpfn> view(toc.data(), arity_);
        walker.tocOf(asid, vpn, arity_, view);
        const Cpfn unmapped = walker.unmappedCode();
        bool any_mapped = false;
        for (const Cpfn code : view) {
            if (code != unmapped) {
                any_mapped = true;
                break;
            }
        }
        if (!any_mapped)
            return false;
        tlb_.fill(asid, vpn, view, unmapped);
        return true;
    }

    OracleMosaicTlb tlb_;
    unsigned arity_;
};

// ----------------------------------------------------- stride wrapper

class OracleStrideDesign final : public OracleDesign
{
  public:
    OracleStrideDesign(bool arbitrary, unsigned degree,
                       std::unique_ptr<OracleDesign> base)
        : arbitrary_(arbitrary), degree_(degree), base_(std::move(base))
    {
    }

    bool
    access(Asid asid, Vpn vpn, TranslationWalker &walker) override
    {
        AsidState &st = state_[asid];
        std::int64_t stride = 0;
        bool confirmed = false;
        if (st.seen > 0) {
            stride = static_cast<std::int64_t>(vpn) -
                     static_cast<std::int64_t>(st.lastVpn);
            confirmed = st.seen > 1 && stride != 0 && stride == st.stride;
            st.stride = stride;
            st.seen = 2;
        } else {
            st.seen = 1;
        }
        st.lastVpn = vpn;

        const bool hit = base_->access(asid, vpn, walker);
        if (hit)
            return true;

        if (!arbitrary_) {
            for (unsigned k = 1; k <= degree_; ++k)
                issue(asid, vpn + k, walker);
        } else if (confirmed) {
            for (unsigned k = 1; k <= degree_; ++k) {
                const std::int64_t target =
                    static_cast<std::int64_t>(vpn) +
                    stride * static_cast<std::int64_t>(k);
                if (target < 0)
                    break;
                issue(asid, static_cast<Vpn>(target), walker);
            }
        }
        return false;
    }

    bool
    contains(Asid asid, Vpn vpn) const override
    {
        return base_->contains(asid, vpn);
    }

    bool
    prefetchFill(Asid asid, Vpn vpn, TranslationWalker &walker) override
    {
        return base_->prefetchFill(asid, vpn, walker);
    }

    void
    invalidatePage(Asid asid, Vpn vpn) override
    {
        base_->invalidatePage(asid, vpn);
    }

    void
    flushAsid(Asid asid) override
    {
        base_->flushAsid(asid);
        state_.erase(asid);
    }

    const TlbStats &stats() const override { return base_->stats(); }

    DesignCounters
    counters() const override
    {
        DesignCounters c = base_->counters();
        c.prefetchesIssued = counters_.prefetchesIssued;
        c.prefetchFills = counters_.prefetchFills;
        return c;
    }

    std::uint64_t reachPages() const override
    {
        return base_->reachPages();
    }
    unsigned validEntries() const override
    {
        return base_->validEntries();
    }

  private:
    struct AsidState
    {
        Vpn lastVpn = 0;
        std::int64_t stride = 0;
        unsigned seen = 0;
    };

    void
    issue(Asid asid, Vpn target, TranslationWalker &walker)
    {
        ++counters_.prefetchesIssued;
        if (base_->prefetchFill(asid, target, walker))
            ++counters_.prefetchFills;
    }

    bool arbitrary_;
    unsigned degree_;
    std::unique_ptr<OracleDesign> base_;
    std::map<Asid, AsidState> state_;
};

// -------------------------------------------------------- pwc wrapper

/** Recency-list mirror of TwoLevelPwc. */
class OracleTwoLevelPwc
{
  public:
    static constexpr unsigned fanoutBits = 9;
    static constexpr unsigned walkDepth = 4;

    OracleTwoLevelPwc(unsigned l1_entries, unsigned l2_entries)
        : l1_(TlbGeometry{l1_entries, l1_entries}),
          l2_(TlbGeometry{l2_entries, l2_entries})
    {
    }

    static Vpn
    prefix(Vpn vpn, unsigned depth)
    {
        return vpn >> ((walkDepth - depth) * fanoutBits);
    }

    static std::uint64_t
    tag(Asid asid, unsigned depth, Vpn pfx)
    {
        return (std::uint64_t{asid} << 44) |
               (std::uint64_t{depth} << 40) | pfx;
    }

    unsigned
    skippable(Asid asid, Vpn vpn)
    {
        const Vpn p3 = prefix(vpn, 3);
        if (l1_.find(p3, tag(asid, 3, p3)))
            return 3;
        const Vpn p2 = prefix(vpn, 2);
        if (l2_.find(p2, tag(asid, 2, p2)))
            return 2;
        return 0;
    }

    void
    fill(Asid asid, Vpn vpn)
    {
        bool evicted = false;
        const Vpn p3 = prefix(vpn, 3);
        if (!l1_.find(p3, tag(asid, 3, p3)))
            l1_.allocate(p3, tag(asid, 3, p3), &evicted);
        const Vpn p2 = prefix(vpn, 2);
        if (!l2_.find(p2, tag(asid, 2, p2)))
            l2_.allocate(p2, tag(asid, 2, p2), &evicted);
    }

    void
    flushAsid(Asid asid)
    {
        const auto match = [asid](std::uint64_t t, const Empty &) {
            return (t >> 44) == asid;
        };
        l1_.invalidateIf(match);
        l2_.invalidateIf(match);
    }

  private:
    struct Empty
    {
    };

    OracleSetAssoc<Empty> l1_;
    OracleSetAssoc<Empty> l2_;
};

class OraclePwcDesign final : public OracleDesign
{
  public:
    OraclePwcDesign(unsigned l1_entries, unsigned l2_entries,
                    std::unique_ptr<OracleDesign> base)
        : base_(std::move(base)), pwc_(l1_entries, l2_entries)
    {
    }

    bool
    access(Asid asid, Vpn vpn, TranslationWalker &walker) override
    {
        const bool hit = base_->access(asid, vpn, walker);
        if (hit)
            return true;
        ++counters_.pwcLookups;
        const unsigned skipped = pwc_.skippable(asid, vpn);
        if (skipped > 0) {
            ++counters_.pwcHits;
            discount_ += std::min<std::uint64_t>(
                skipped, walker.walkLevels() - 1);
        }
        pwc_.fill(asid, vpn);
        return false;
    }

    bool
    contains(Asid asid, Vpn vpn) const override
    {
        return base_->contains(asid, vpn);
    }

    bool
    prefetchFill(Asid asid, Vpn vpn, TranslationWalker &walker) override
    {
        return base_->prefetchFill(asid, vpn, walker);
    }

    void
    invalidatePage(Asid asid, Vpn vpn) override
    {
        base_->invalidatePage(asid, vpn);
    }

    void
    flushAsid(Asid asid) override
    {
        base_->flushAsid(asid);
        pwc_.flushAsid(asid);
    }

    const TlbStats &stats() const override { return base_->stats(); }

    DesignCounters
    counters() const override
    {
        DesignCounters c = base_->counters();
        c.walkRefs -= discount_;
        c.pwcLookups = counters_.pwcLookups;
        c.pwcHits = counters_.pwcHits;
        return c;
    }

    std::uint64_t reachPages() const override
    {
        return base_->reachPages();
    }
    unsigned validEntries() const override
    {
        return base_->validEntries();
    }

  private:
    std::unique_ptr<OracleDesign> base_;
    OracleTwoLevelPwc pwc_;
    std::uint64_t discount_ = 0;
};

// -------------------------------------------------------- range design

class OracleRangeDesign final : public OracleDesign
{
  public:
    OracleRangeDesign(unsigned entries, std::uint64_t max_run)
        : capacity_(entries), maxRun_(max_run)
    {
    }

    bool
    access(Asid asid, Vpn vpn, TranslationWalker &walker) override
    {
        if (lookup(asid, vpn))
            return true;
        fillFromWalk(asid, vpn, walker);
        return false;
    }

    bool
    contains(Asid asid, Vpn vpn) const override
    {
        for (const Entry &e : entries_) {
            if (e.asid == asid && e.run.covers(vpn))
                return true;
        }
        return false;
    }

    bool
    prefetchFill(Asid asid, Vpn vpn, TranslationWalker &walker) override
    {
        if (contains(asid, vpn))
            return false;
        return fillFromWalk(asid, vpn, walker);
    }

    void
    invalidatePage(Asid asid, Vpn vpn) override
    {
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (it->asid == asid && it->run.covers(vpn)) {
                it = entries_.erase(it);
                ++stats_.invalidations;
            } else {
                ++it;
            }
        }
    }

    void
    flushAsid(Asid asid) override
    {
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (it->asid == asid) {
                it = entries_.erase(it);
                ++stats_.invalidations;
            } else {
                ++it;
            }
        }
    }

    const TlbStats &stats() const override { return stats_; }

    std::uint64_t
    reachPages() const override
    {
        std::uint64_t pages = 0;
        for (const Entry &e : entries_)
            pages += e.run.length;
        return pages;
    }

    unsigned validEntries() const override
    {
        return static_cast<unsigned>(entries_.size());
    }

  private:
    struct Entry
    {
        Asid asid = 0;
        ContigRun run{};
    };

    bool
    lookup(Asid asid, Vpn vpn)
    {
        ++stats_.accesses;
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->asid == asid && it->run.covers(vpn)) {
                entries_.splice(entries_.begin(), entries_, it);
                ++stats_.hits;
                return true;
            }
        }
        ++stats_.misses;
        return false;
    }

    bool
    fillFromWalk(Asid asid, Vpn vpn, TranslationWalker &walker)
    {
        counters_.walkRefs += walker.walkLevels();
        std::uint64_t probes = 0;
        const std::optional<ContigRun> run = mineContigRun(
            [&](Vpn page) { return walker.pfnOf(asid, page); }, vpn,
            maxRun_, &probes);
        counters_.walkRefs += probes;
        if (!run)
            return false;
        fill(asid, *run);
        if (run->length > 1)
            ++counters_.regionFills;
        return true;
    }

    void
    fill(Asid asid, const ContigRun &run)
    {
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (it->asid == asid &&
                it->run.first < run.first + run.length &&
                run.first < it->run.first + it->run.length) {
                it = entries_.erase(it);
                ++stats_.evictions;
            } else {
                ++it;
            }
        }
        if (entries_.size() >= capacity_) {
            entries_.pop_back(); // true-LRU victim
            ++stats_.evictions;
        }
        entries_.push_front(Entry{asid, run});
    }

    unsigned capacity_;
    std::uint64_t maxRun_;
    std::list<Entry> entries_; // front = most recently used
    TlbStats stats_;
};

std::unique_ptr<OracleDesign>
makeLeaf(const std::string &kind, const OracleDesignSpec &spec)
{
    if (kind == "vanilla")
        return std::make_unique<OracleVanillaDesign>(spec.geometry);
    if (kind == "mosaic")
        return std::make_unique<OracleMosaicDesign>(spec.geometry,
                                                    spec.arity);
    panic("oracle designs: unknown base kind '" + kind + "'");
}

} // namespace

std::unique_ptr<OracleDesign>
makeOracleDesign(const OracleDesignSpec &spec)
{
    if (spec.kind == "vanilla" || spec.kind == "mosaic")
        return makeLeaf(spec.kind, spec);
    if (spec.kind == "range") {
        return std::make_unique<OracleRangeDesign>(spec.ranges,
                                                   spec.maxRun);
    }
    if (spec.kind == "stride") {
        return std::make_unique<OracleStrideDesign>(
            spec.arbitrary, spec.degree, makeLeaf(spec.base, spec));
    }
    if (spec.kind == "pwc") {
        return std::make_unique<OraclePwcDesign>(
            spec.l1, spec.l2, makeLeaf(spec.base, spec));
    }
    panic("oracle designs: unknown kind '" + spec.kind + "'");
}

} // namespace mosaic
