/**
 * @file
 * Reference models for every TLB variant, built on a deliberately
 * naive set-associative array: each set is a std::list ordered by
 * recency (front = most recently used), so true-LRU replacement is
 * structural rather than timestamp-driven. The real TLBs implement
 * the same contract with a packed array and a monotonic use clock
 * (`SetAssocArray`); running both in lockstep over the same operation
 * sequence cross-checks lookup results, every stats counter, and the
 * number of valid entries after each step.
 *
 * The variant semantics (tag forms, probe order, sub-entry fills,
 * coalescing rules, hole handling) are transcribed from the
 * documented behaviour of vanilla_tlb/mosaic_tlb/coalesced_tlb/
 * perforated_tlb headers — including the subtle points:
 *  - a probe that matches a tag refreshes recency even when the
 *    caller then reports a miss (absent sub-entry, cleared mask bit,
 *    perforation hole);
 *  - fills allocate the first invalid way when one exists, otherwise
 *    the true-LRU way.
 */

#ifndef MOSAIC_ORACLE_ORACLE_TLB_HH_
#define MOSAIC_ORACLE_ORACLE_TLB_HH_

#include <array>
#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <span>
#include <vector>

#include "mem/geometry.hh"
#include "tlb/mosaic_tlb.hh"
#include "tlb/perforated_tlb.hh"
#include "tlb/set_assoc.hh"
#include "tlb/tlb_stats.hh"
#include "util/types.hh"

namespace mosaic
{

/**
 * The naive reference array: per-set recency lists.
 *
 * @tparam Payload the per-entry payload, as in SetAssocArray.
 */
template <typename Payload>
class OracleSetAssoc
{
  public:
    struct Entry
    {
        std::uint64_t tag = 0;
        Payload payload{};
    };

    explicit OracleSetAssoc(const TlbGeometry &geometry)
        : ways_(geometry.ways), sets_(geometry.sets())
    {
        geometry.check();
    }

    std::uint64_t setOf(std::uint64_t index_key) const
    {
        return index_key % sets_.size();
    }

    /** Find an entry; refreshes recency on a tag match. */
    Payload *
    find(std::uint64_t index_key, std::uint64_t tag)
    {
        auto &set = sets_[setOf(index_key)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->tag == tag) {
                set.splice(set.begin(), set, it);
                return &set.front().payload;
            }
        }
        return nullptr;
    }

    /** Claim an entry for the tag; sets *evicted when a valid entry
     *  was displaced. Callers invoke this only after find() missed. */
    Payload &
    allocate(std::uint64_t index_key, std::uint64_t tag, bool *evicted)
    {
        auto &set = sets_[setOf(index_key)];
        *evicted = set.size() >= ways_;
        if (set.size() >= ways_)
            set.pop_back(); // the least recently used entry
        set.push_front(Entry{tag, Payload{}});
        return set.front().payload;
    }

    /** Find without refreshing recency (for inspection only). */
    const Payload *
    peek(std::uint64_t index_key, std::uint64_t tag) const
    {
        const auto &set = sets_[setOf(index_key)];
        for (const auto &entry : set) {
            if (entry.tag == tag)
                return &entry.payload;
        }
        return nullptr;
    }

    bool
    invalidate(std::uint64_t index_key, std::uint64_t tag)
    {
        auto &set = sets_[setOf(index_key)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->tag == tag) {
                set.erase(it);
                return true;
            }
        }
        return false;
    }

    template <typename Pred>
    unsigned
    invalidateIf(Pred &&pred)
    {
        unsigned dropped = 0;
        for (auto &set : sets_) {
            for (auto it = set.begin(); it != set.end();) {
                if (pred(it->tag, it->payload)) {
                    it = set.erase(it);
                    ++dropped;
                } else {
                    ++it;
                }
            }
        }
        return dropped;
    }

    unsigned
    validEntries() const
    {
        std::size_t n = 0;
        for (const auto &set : sets_)
            n += set.size();
        return static_cast<unsigned>(n);
    }

    /** Visit every entry as fn(tag, payload); no recency effects. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &set : sets_) {
            for (const auto &entry : set)
                fn(entry.tag, entry.payload);
        }
    }

  private:
    unsigned ways_;
    std::vector<std::list<Entry>> sets_;
};

/** Reference model of VanillaTlb. */
class OracleVanillaTlb
{
  public:
    explicit OracleVanillaTlb(const TlbGeometry &geometry)
        : array_(geometry)
    {
    }

    std::optional<Pfn> lookup(Asid asid, Vpn vpn);
    void fill(Asid asid, Vpn vpn, Pfn pfn);
    void fillHuge(Asid asid, Vpn vpn, Pfn base_pfn);
    void invalidate(Asid asid, Vpn vpn);
    void flushAsid(Asid asid);
    bool contains(Asid asid, Vpn vpn) const;
    std::uint64_t reachPages() const;

    const TlbStats &stats() const { return stats_; }
    unsigned validEntries() const { return array_.validEntries(); }

  private:
    struct Payload
    {
        Pfn pfn = invalidPfn;
    };

    OracleSetAssoc<Payload> array_;
    TlbStats stats_;
};

/** Reference model of MosaicTlb. */
class OracleMosaicTlb
{
  public:
    OracleMosaicTlb(const TlbGeometry &geometry, unsigned arity)
        : array_(geometry), arity_(arity),
          log2Arity_(ceilLog2(arity))
    {
    }

    std::optional<Cpfn> lookup(Asid asid, Vpn vpn);
    void fill(Asid asid, Vpn vpn, std::span<const Cpfn> toc,
              Cpfn unmapped_code);
    std::optional<Pfn> lookupConventional(Asid asid, Vpn vpn);
    void fillConventional(Asid asid, Vpn vpn, Pfn pfn);
    void invalidateSub(Asid asid, Vpn vpn);
    void invalidateEntry(Asid asid, Vpn vpn);
    void flushAsid(Asid asid);
    bool contains(Asid asid, Vpn vpn) const;
    std::uint64_t reachPages() const;

    const TlbStats &stats() const { return stats_; }
    unsigned validEntries() const { return array_.validEntries(); }

  private:
    struct Payload
    {
        Payload() { cpfns.fill(MosaicTlb::absentCpfn); }
        std::array<Cpfn, maxArity> cpfns;
        Pfn conventionalPfn = invalidPfn;
        bool conventional = false;
    };

    Mvpn mvpnOf(Vpn vpn) const { return vpn >> log2Arity_; }
    unsigned offsetOf(Vpn vpn) const { return vpn & (arity_ - 1); }

    OracleSetAssoc<Payload> array_;
    TlbStats stats_;
    unsigned arity_;
    unsigned log2Arity_;
};

/** Reference model of CoalescedTlb. */
class OracleCoalescedTlb
{
  public:
    explicit OracleCoalescedTlb(const TlbGeometry &geometry)
        : array_(geometry)
    {
    }

    std::optional<Pfn> lookup(Asid asid, Vpn vpn);
    void fill(Asid asid, Vpn vpn, Pfn pfn,
              const std::function<std::optional<Pfn>(Vpn)> &pfn_of);
    void invalidate(Asid asid, Vpn vpn);
    void flushAsid(Asid asid);
    bool contains(Asid asid, Vpn vpn) const;
    std::uint64_t reachPages() const;

    const TlbStats &stats() const { return stats_; }
    std::uint64_t pagesCoveredByFills() const { return covered_; }
    std::uint64_t coalescedFills() const { return coalescedFills_; }
    unsigned validEntries() const { return array_.validEntries(); }

  private:
    struct Payload
    {
        Pfn basePfn = invalidPfn;
        std::uint8_t mask = 0;
    };

    OracleSetAssoc<Payload> array_;
    TlbStats stats_;
    std::uint64_t covered_ = 0;
    std::uint64_t coalescedFills_ = 0;
};

/** Reference model of PerforatedTlb. */
class OraclePerforatedTlb
{
  public:
    explicit OraclePerforatedTlb(const TlbGeometry &geometry)
        : array_(geometry)
    {
    }

    std::optional<Pfn> lookup(Asid asid, Vpn vpn);
    void fillPerforated(Asid asid, Vpn vpn, Pfn base_pfn,
                        const HoleBitmap &holes);
    void fill4k(Asid asid, Vpn vpn, Pfn pfn);
    void invalidate(Asid asid, Vpn vpn);
    void flushAsid(Asid asid);
    bool contains(Asid asid, Vpn vpn) const;
    std::uint64_t reachPages() const;

    /** True when the 2 MiB entry of the region is cached. Does not
     *  refresh recency: the fuzz driver uses it to decide between
     *  fillPerforated and fill4k without perturbing either model. */
    bool hasPerforatedEntry(Asid asid, Vpn vpn) const;

    const TlbStats &stats() const { return stats_; }
    std::uint64_t holeLookups() const { return holeLookups_; }
    unsigned validEntries() const { return array_.validEntries(); }

  private:
    struct Payload
    {
        Pfn basePfn = invalidPfn;
        HoleBitmap holes{};
        bool huge = false;
    };

    OracleSetAssoc<Payload> array_;
    TlbStats stats_;
    std::uint64_t holeLookups_ = 0;
};

} // namespace mosaic

#endif // MOSAIC_ORACLE_ORACLE_TLB_HH_
