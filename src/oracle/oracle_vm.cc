#include "oracle/oracle_vm.hh"

#include <algorithm>

#include "util/log.hh"

namespace mosaic
{

OracleVm::OracleVm(const OracleVmConfig &config)
    : config_(config)
{
    if (config_.numFrames > 0) {
        reserve_ = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   static_cast<double>(config_.numFrames) *
                   config_.watermarkFraction));
    }
}

bool
OracleVm::isDirty(PageId id) const
{
    const auto it = pages_.find(id);
    ensure(it != pages_.end(), "oracle_vm: dirty query on non-resident");
    return it->second.dirty;
}

Tick
OracleVm::lastAccessOf(PageId id) const
{
    const auto it = pages_.find(id);
    ensure(it != pages_.end(), "oracle_vm: tick query on non-resident");
    return it->second.lastAccess;
}

std::vector<PageId>
OracleVm::residentByRecency() const
{
    std::vector<PageId> out(lru_.rbegin(), lru_.rend());
    return out;
}

void
OracleVm::reclaim()
{
    for (unsigned i = 0; i < config_.reclaimBatch && !lru_.empty(); ++i) {
        const PageId victim = lru_.front();
        lru_.pop_front();
        const auto it = pages_.find(victim);
        if (it->second.dirty) {
            swap_.insert(victim);
            ++stats_.swapOuts;
        }
        pages_.erase(it);
    }
}

OracleVm::Outcome
OracleVm::touch(Asid asid, Vpn vpn, bool write)
{
    ++clock_;
    const PageId id{asid, vpn};

    if (const auto it = pages_.find(id); it != pages_.end()) {
        // Resident: move to the most-recently-used end.
        lru_.splice(lru_.end(), lru_, it->second.lruPos);
        it->second.lastAccess = clock_;
        it->second.dirty = it->second.dirty || write;
        return Outcome{false, false};
    }

    // Page fault.
    const bool major = swap_.contains(id);

    if (config_.numFrames > 0) {
        const std::size_t free = config_.numFrames - pages_.size();
        if (free <= reserve_)
            reclaim();
        ensure(pages_.size() < config_.numFrames,
               "oracle_vm: reclaim failed to free frames");
    }

    const auto pos = lru_.insert(lru_.end(), id);
    pages_.emplace(id, Record{pos, clock_, !major || write});

    if (major) {
        ++stats_.swapIns;
        ++stats_.majorFaults;
    } else {
        ++stats_.minorFaults;
    }
    return Outcome{true, major};
}

void
OracleVm::unmapRange(Asid asid, Vpn vpn, std::size_t npages)
{
    for (std::size_t i = 0; i < npages; ++i) {
        const PageId id{asid, vpn + i};
        swap_.erase(id);
        if (const auto it = pages_.find(id); it != pages_.end()) {
            lru_.erase(it->second.lruPos);
            pages_.erase(it);
        }
    }
}

} // namespace mosaic
