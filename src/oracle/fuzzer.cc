#include "oracle/fuzzer.hh"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "fault/fault.hh"
#include "iceberg/iceberg_table.hh"
#include "mem/geometry.hh"
#include "oracle/oracle_designs.hh"
#include "oracle/oracle_iceberg.hh"
#include "oracle/oracle_tlb.hh"
#include "oracle/oracle_vm.hh"
#include "oracle/shard_oracle.hh"
#include "os/linux_vm.hh"
#include "os/mosaic_vm.hh"
#include "os/sharded_vm.hh"
#include "tlb/coalesced_tlb.hh"
#include "tlb/design_registry.hh"
#include "tlb/mosaic_tlb.hh"
#include "tlb/perforated_tlb.hh"
#include "tlb/translation_design.hh"
#include "tlb/vanilla_tlb.hh"
#include "util/log.hh"
#include "util/random.hh"
#include "workloads/access_sink.hh"
#include "workloads/kv_server.hh"
#include "workloads/scan_analytics.hh"
#include "workloads/warp.hh"
#include "workloads/web_session.hh"

namespace mosaic
{

namespace
{

// ----------------------------------------------------------- helpers

/** FNV-1a accumulator over 64-bit words. */
struct Digest
{
    std::uint64_t h = 1469598103934665603ull;

    void
    mix(std::uint64_t v)
    {
        h ^= v;
        h *= 1099511628211ull;
    }
};

/** splitmix64-style finalizer: the pure mixing primitive every
 *  derived payload is built from, so fill values depend only on the
 *  trace, never on ambient state. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t
mix(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ mix64(b));
}

std::uint64_t
mix(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    return mix64(mix(a, b) ^ mix64(c));
}

std::uint64_t
mix(std::uint64_t a, std::uint64_t b, std::uint64_t c, std::uint64_t d)
{
    return mix64(mix(a, b, c) ^ mix64(d));
}

using MaybeDivergence = std::optional<FuzzDivergence>;

MaybeDivergence
diverge(std::size_t idx, std::string msg)
{
    return FuzzDivergence{idx, std::move(msg)};
}

std::string
pageStr(Asid asid, Vpn vpn)
{
    return "(" + std::to_string(asid) + "," + std::to_string(vpn) + ")";
}

// ---------------------------------------------------- iceberg harness

class IcebergHarness
{
  public:
    explicit IcebergHarness(const Trace &t,
                            fault::FaultInjector *faults = nullptr)
        : config_{t.cfgUint("buckets", 8),
                  static_cast<unsigned>(t.cfgUint("front", 4)),
                  static_cast<unsigned>(t.cfgUint("back", 2)),
                  static_cast<unsigned>(t.cfgUint("d", 2)),
                  t.cfgUint("seed", 1)},
          real_(config_), oracle_(config_),
          pseed_(t.cfgUint("pseed", 7)), deep_(t.cfgUint("deep", 256))
    {
        if (faults != nullptr) {
            real_.setFaultHook([this, faults] {
                if (faults->shouldFail("iceberg.insert")) {
                    injected_ = true;
                    return true;
                }
                return false;
            });
        }
    }

    MaybeDivergence
    apply(const TraceOp &op, std::size_t idx, bool *applied, Digest &dg)
    {
        *applied = true;
        const std::uint64_t key = op.arg(0);
        switch (op.kind) {
        case 'i': {
            const std::uint64_t value = mix(pseed_, key, 0x1CEBE26);
            injected_ = false;
            const bool ok = real_.insert(key, value);
            if (injected_) {
                // The injector forced this fresh insert to fail and
                // the table is unchanged; the oracle must not see the
                // op at all. The digest marks the injection (value 2,
                // distinct from success/conflict) — unreachable when
                // no plan is active, so clean digests are unchanged.
                dg.mix('i');
                dg.mix(key);
                dg.mix(2);
                break;
            }
            const OracleIceberg::Prediction pred =
                oracle_.insert(key, value);
            dg.mix('i');
            dg.mix(key);
            dg.mix(ok ? 1 : 0);
            if (ok != pred.ok) {
                return diverge(idx, "iceberg insert of " +
                    std::to_string(key) + ": real " +
                    (ok ? "succeeded" : "failed") + ", oracle predicted " +
                    (pred.ok ? "success" : "conflict"));
            }
            if (ok) {
                const auto ref = real_.locate(key);
                if (!ref) {
                    return diverge(idx, "iceberg: inserted key " +
                        std::to_string(key) + " not locatable");
                }
                if (ref->yard != pred.yard || ref->bucket != pred.bucket) {
                    return diverge(idx, "iceberg: key " +
                        std::to_string(key) + " landed in bucket " +
                        std::to_string(ref->bucket) +
                        ", oracle predicted " +
                        std::to_string(pred.bucket));
                }
                const auto placed = placed_.find(key);
                if (placed == placed_.end()) {
                    placed_.emplace(key, *ref);
                } else if (!(placed->second == *ref)) {
                    return diverge(idx, "iceberg: key " +
                        std::to_string(key) +
                        " moved slots on reinsert (stability violated)");
                }
            }
            break;
        }
        case 'e': {
            const bool oe = oracle_.erase(key);
            const bool re = real_.erase(key);
            dg.mix('e');
            dg.mix(key);
            dg.mix(re ? 1 : 0);
            if (oe != re) {
                return diverge(idx, "iceberg erase of " +
                    std::to_string(key) + ": real=" +
                    std::to_string(re) + " oracle=" + std::to_string(oe));
            }
            placed_.erase(key);
            break;
        }
        case 'f': {
            const auto ov = oracle_.find(key);
            const std::uint64_t *rv = real_.find(key);
            dg.mix('f');
            dg.mix(key);
            dg.mix(rv ? *rv + 1 : 0);
            if (ov.has_value() != (rv != nullptr)) {
                return diverge(idx, "iceberg find of " +
                    std::to_string(key) + ": presence mismatch");
            }
            if (rv && *rv != *ov) {
                return diverge(idx, "iceberg find of " +
                    std::to_string(key) + ": value mismatch");
            }
            if (rv) {
                const auto ref = real_.locate(key);
                if (!ref || !(*ref == placed_.at(key))) {
                    return diverge(idx, "iceberg: key " +
                        std::to_string(key) +
                        " moved slots since insertion");
                }
            }
            break;
        }
        default:
            *applied = false;
            return std::nullopt;
        }

        if (real_.size() != oracle_.size()) {
            return diverge(idx, "iceberg size: real=" +
                std::to_string(real_.size()) + " oracle=" +
                std::to_string(oracle_.size()));
        }
        if (real_.backyardSize() != oracle_.backyardSize()) {
            return diverge(idx, "iceberg backyardSize: real=" +
                std::to_string(real_.backyardSize()) + " oracle=" +
                std::to_string(oracle_.backyardSize()));
        }
        if (deep_ > 0 && (idx + 1) % deep_ == 0)
            return deepCheck(idx);
        return std::nullopt;
    }

  private:
    MaybeDivergence
    deepCheck(std::size_t idx)
    {
        for (std::size_t b = 0; b < config_.buckets; ++b) {
            if (real_.frontOccupancy(b) != oracle_.frontOccupancy(b) ||
                    real_.backOccupancy(b) != oracle_.backOccupancy(b)) {
                return diverge(idx, "iceberg occupancy of bucket " +
                    std::to_string(b) + " disagrees with oracle");
            }
        }
        std::size_t swept = 0;
        MaybeDivergence bad;
        real_.forEachSlot([&](SlotRef ref, std::uint64_t key,
                              std::uint64_t value) {
            ++swept;
            if (bad)
                return;
            const auto ov = oracle_.find(key);
            if (!ov || *ov != value) {
                bad = diverge(idx, "iceberg sweep: stray key " +
                    std::to_string(key));
                return;
            }
            const auto placed = placed_.find(key);
            if (placed == placed_.end() || !(placed->second == ref))
                bad = diverge(idx, "iceberg sweep: key " +
                    std::to_string(key) + " in unexpected slot");
        });
        if (bad)
            return bad;
        if (swept != oracle_.size()) {
            return diverge(idx, "iceberg sweep: " + std::to_string(swept) +
                " used slots but oracle holds " +
                std::to_string(oracle_.size()));
        }
        return std::nullopt;
    }

    IcebergConfig config_;
    IcebergTable<std::uint64_t> real_;
    OracleIceberg oracle_;
    std::uint64_t pseed_;
    std::uint64_t deep_;
    std::map<std::uint64_t, SlotRef> placed_;

    /** Set by the fault hook while an injected insert is in flight. */
    bool injected_ = false;
};

// -------------------------------------------------------- tlb harness

class TlbHarness
{
  public:
    explicit TlbHarness(const Trace &t)
        : kind_(t.cfgValue("kind", "vanilla")),
          geometry_{static_cast<unsigned>(t.cfgUint("entries", 16)),
                    static_cast<unsigned>(t.cfgUint("ways", 2))},
          arity_(static_cast<unsigned>(t.cfgUint("arity", 4))),
          pseed_(t.cfgUint("pseed", 7))
    {
        if (kind_ == "vanilla") {
            vReal_ = std::make_unique<VanillaTlb>(geometry_);
            vOracle_ = std::make_unique<OracleVanillaTlb>(geometry_);
        } else if (kind_ == "mosaic") {
            mReal_ = std::make_unique<MosaicTlb>(geometry_, arity_);
            mOracle_ = std::make_unique<OracleMosaicTlb>(geometry_, arity_);
        } else if (kind_ == "coalesced") {
            cReal_ = std::make_unique<CoalescedTlb>(geometry_);
            cOracle_ = std::make_unique<OracleCoalescedTlb>(geometry_);
        } else if (kind_ == "perforated") {
            pReal_ = std::make_unique<PerforatedTlb>(geometry_);
            pOracle_ = std::make_unique<OraclePerforatedTlb>(geometry_);
        } else {
            panic("fuzzer: unknown tlb kind '" + kind_ + "'");
        }
    }

    MaybeDivergence
    apply(const TraceOp &op, std::size_t idx, bool *applied, Digest &dg)
    {
        *applied = true;
        const Asid asid = static_cast<Asid>(op.arg(0));
        const Vpn vpn = op.arg(1);
        MaybeDivergence bad;
        if (kind_ == "vanilla")
            bad = applyVanilla(op, idx, asid, vpn, applied, dg);
        else if (kind_ == "mosaic")
            bad = applyMosaic(op, idx, asid, vpn, applied, dg);
        else if (kind_ == "coalesced")
            bad = applyCoalesced(op, idx, asid, vpn, applied, dg);
        else
            bad = applyPerforated(op, idx, asid, vpn, applied, dg);
        if (bad || !*applied)
            return bad;
        return compareCounters(idx);
    }

  private:
    // Derived fill payloads: pure functions of (pseed, asid, address),
    // so the real TLB and the oracle are always fed identical data and
    // traces need no payload fields.
    bool
    vanillaHuge(Asid asid, Vpn vpn) const
    {
        return mix(pseed_, 0x11, asid, vpn >> 9) % 8 == 0;
    }

    Pfn
    vanillaHugeBase(Asid asid, Vpn vpn) const
    {
        return (mix(pseed_, 0x12, asid, vpn >> 9) & 0xFFFFF) << 9;
    }

    Pfn
    vanilla4k(Asid asid, Vpn vpn) const
    {
        return mix(pseed_, 0x13, asid, vpn) & 0xFFFFFFF;
    }

    static constexpr Cpfn tocUnmapped = 0x7F;

    Cpfn
    tocEntry(Asid asid, Mvpn mvpn, unsigned sub) const
    {
        const std::uint64_t m =
            mix(pseed_, 0x21, asid, (mvpn << 8) | sub);
        if (m % 4 == 0)
            return tocUnmapped;
        return static_cast<Cpfn>((m >> 8) % 0x7F);
    }

    std::optional<Pfn>
    coalescedFrameOf(Asid asid, Vpn v) const
    {
        if (mix(pseed_, 0x31, asid, v) % 8 == 0)
            return std::nullopt; // unmapped neighbour
        const Vpn group = v / CoalescedTlb::coalesceFactor;
        const unsigned off =
            static_cast<unsigned>(v % CoalescedTlb::coalesceFactor);
        if (mix(pseed_, 0x33, asid, v) % 4 != 0) {
            // Physically contiguous with the group's base run.
            const Pfn base =
                ((mix(pseed_, 0x32, asid, group) & 0xFFFFF) + 1) *
                CoalescedTlb::coalesceFactor;
            return base + off;
        }
        // Scattered; occasionally tiny, to exercise the pfn < off
        // underflow guard in the mask builder.
        const std::uint64_t m = mix(pseed_, 0x34, asid, v);
        if (m % 32 == 0)
            return m & 0x7;
        return m & 0xFFFFF;
    }

    bool
    perforatedHole(Asid asid, Vpn v) const
    {
        return mix(pseed_, 0x41, asid, v) % 8 == 0;
    }

    Pfn
    perforatedBase(Asid asid, Vpn region) const
    {
        return (mix(pseed_, 0x42, asid, region) & 0xFFFFF) << 9;
    }

    Pfn
    perforated4k(Asid asid, Vpn v) const
    {
        return mix(pseed_, 0x43, asid, v) & 0xFFFFFFF;
    }

    template <typename A, typename B>
    MaybeDivergence
    compareLookup(std::size_t idx, const A &r, const B &o, Digest &dg)
    {
        dg.mix('l');
        dg.mix(r ? static_cast<std::uint64_t>(*r) + 1 : 0);
        if (r.has_value() != o.has_value() || (r && *r != *o)) {
            return diverge(idx, kind_ + " tlb lookup result mismatch "
                "(real vs oracle)");
        }
        return std::nullopt;
    }

    MaybeDivergence
    applyVanilla(const TraceOp &op, std::size_t idx, Asid asid, Vpn vpn,
                 bool *applied, Digest &dg)
    {
        switch (op.kind) {
        case 'l': {
            const auto r = vReal_->lookup(asid, vpn);
            const auto o = vOracle_->lookup(asid, vpn);
            if (auto bad = compareLookup(idx, r, o, dg))
                return bad;
            if (!r) {
                if (vanillaHuge(asid, vpn)) {
                    const Pfn base = vanillaHugeBase(asid, vpn);
                    vReal_->fillHuge(asid, vpn, base);
                    vOracle_->fillHuge(asid, vpn, base);
                } else {
                    const Pfn pfn = vanilla4k(asid, vpn);
                    vReal_->fill(asid, vpn, pfn);
                    vOracle_->fill(asid, vpn, pfn);
                }
            }
            break;
        }
        case 'i':
            vReal_->invalidate(asid, vpn);
            vOracle_->invalidate(asid, vpn);
            dg.mix('i');
            break;
        case 'f':
            vReal_->flushAsid(asid);
            vOracle_->flushAsid(asid);
            dg.mix('f');
            break;
        default:
            *applied = false;
        }
        return std::nullopt;
    }

    MaybeDivergence
    applyMosaic(const TraceOp &op, std::size_t idx, Asid asid, Vpn vpn,
                bool *applied, Digest &dg)
    {
        switch (op.kind) {
        case 'l': {
            const auto r = mReal_->lookup(asid, vpn);
            const auto o = mOracle_->lookup(asid, vpn);
            if (auto bad = compareLookup(idx, r, o, dg))
                return bad;
            if (!r) {
                std::array<Cpfn, maxArity> toc{};
                const Mvpn mvpn = mReal_->mvpnOf(vpn);
                for (unsigned i = 0; i < arity_; ++i)
                    toc[i] = tocEntry(asid, mvpn, i);
                const std::span<const Cpfn> span(toc.data(), arity_);
                mReal_->fill(asid, vpn, span, tocUnmapped);
                mOracle_->fill(asid, vpn, span, tocUnmapped);
            }
            break;
        }
        case 'c': {
            const auto r = mReal_->lookupConventional(asid, vpn);
            const auto o = mOracle_->lookupConventional(asid, vpn);
            if (auto bad = compareLookup(idx, r, o, dg))
                return bad;
            if (!r) {
                const Pfn pfn = mix(pseed_, 0x22, asid, vpn) & 0xFFFFFFF;
                mReal_->fillConventional(asid, vpn, pfn);
                mOracle_->fillConventional(asid, vpn, pfn);
            }
            break;
        }
        case 'i':
            mReal_->invalidateSub(asid, vpn);
            mOracle_->invalidateSub(asid, vpn);
            dg.mix('i');
            break;
        case 'e':
            mReal_->invalidateEntry(asid, vpn);
            mOracle_->invalidateEntry(asid, vpn);
            dg.mix('e');
            break;
        case 'f':
            mReal_->flushAsid(asid);
            mOracle_->flushAsid(asid);
            dg.mix('f');
            break;
        default:
            *applied = false;
        }
        return std::nullopt;
    }

    MaybeDivergence
    applyCoalesced(const TraceOp &op, std::size_t idx, Asid asid, Vpn vpn,
                   bool *applied, Digest &dg)
    {
        switch (op.kind) {
        case 'l': {
            const auto r = cReal_->lookup(asid, vpn);
            const auto o = cOracle_->lookup(asid, vpn);
            if (auto bad = compareLookup(idx, r, o, dg))
                return bad;
            if (!r) {
                const std::optional<Pfn> self = coalescedFrameOf(asid, vpn);
                if (self) {
                    const auto pfn_of = [&](Vpn v) {
                        return coalescedFrameOf(asid, v);
                    };
                    cReal_->fill(asid, vpn, *self, pfn_of);
                    cOracle_->fill(asid, vpn, *self, pfn_of);
                }
            }
            break;
        }
        case 'i':
            cReal_->invalidate(asid, vpn);
            cOracle_->invalidate(asid, vpn);
            dg.mix('i');
            break;
        default:
            *applied = false;
        }
        return std::nullopt;
    }

    MaybeDivergence
    applyPerforated(const TraceOp &op, std::size_t idx, Asid asid,
                    Vpn vpn, bool *applied, Digest &dg)
    {
        if (op.kind != 'l') {
            *applied = false;
            return std::nullopt;
        }
        const auto r = pReal_->lookup(asid, vpn);
        const auto o = pOracle_->lookup(asid, vpn);
        if (auto bad = compareLookup(idx, r, o, dg))
            return bad;
        if (!r) {
            if (pOracle_->hasPerforatedEntry(asid, vpn)) {
                // The region entry is cached, so this miss was a hole:
                // cache the hole page's own 4 KiB translation.
                const Pfn pfn = perforated4k(asid, vpn);
                pReal_->fill4k(asid, vpn, pfn);
                pOracle_->fill4k(asid, vpn, pfn);
            } else {
                const Vpn region = vpn >> 9;
                HoleBitmap holes{};
                for (unsigned off = 0; off < pagesPerHugePage; ++off) {
                    if (perforatedHole(asid, (region << 9) | off))
                        setHole(holes, off);
                }
                const Pfn base = perforatedBase(asid, region);
                pReal_->fillPerforated(asid, vpn, base, holes);
                pOracle_->fillPerforated(asid, vpn, base, holes);
                if (perforatedHole(asid, vpn)) {
                    const Pfn pfn = perforated4k(asid, vpn);
                    pReal_->fill4k(asid, vpn, pfn);
                    pOracle_->fill4k(asid, vpn, pfn);
                }
            }
        }
        return std::nullopt;
    }

    MaybeDivergence
    compareCounters(std::size_t idx)
    {
        TlbStats r, o;
        unsigned rValid = 0, oValid = 0;
        if (kind_ == "vanilla") {
            r = vReal_->stats();
            o = vOracle_->stats();
            rValid = vReal_->validEntries();
            oValid = vOracle_->validEntries();
        } else if (kind_ == "mosaic") {
            r = mReal_->stats();
            o = mOracle_->stats();
            rValid = mReal_->validEntries();
            oValid = mOracle_->validEntries();
        } else if (kind_ == "coalesced") {
            r = cReal_->stats();
            o = cOracle_->stats();
            rValid = cReal_->validEntries();
            oValid = cOracle_->validEntries();
            if (cReal_->pagesCoveredByFills() !=
                        cOracle_->pagesCoveredByFills() ||
                    cReal_->coalescedFills() != cOracle_->coalescedFills())
                return diverge(idx, "coalesced tlb coverage counters "
                    "disagree with oracle");
        } else {
            r = pReal_->stats();
            o = pOracle_->stats();
            rValid = pReal_->validEntries();
            oValid = pOracle_->validEntries();
            if (pReal_->holeLookups() != pOracle_->holeLookups())
                return diverge(idx, "perforated tlb holeLookups "
                    "disagree with oracle");
        }
        if (rValid != oValid) {
            return diverge(idx, kind_ + " tlb validEntries: real=" +
                std::to_string(rValid) + " oracle=" +
                std::to_string(oValid));
        }
        const auto neq = [](std::uint64_t a, std::uint64_t b) {
            return a != b;
        };
        if (neq(r.accesses, o.accesses) || neq(r.hits, o.hits) ||
                neq(r.misses, o.misses) ||
                neq(r.subEntryFills, o.subEntryFills) ||
                neq(r.evictions, o.evictions) ||
                neq(r.invalidations, o.invalidations)) {
            return diverge(idx, kind_ + " tlb stats counter "
                "disagrees with oracle");
        }
        return std::nullopt;
    }

    std::string kind_;
    TlbGeometry geometry_;
    unsigned arity_;
    std::uint64_t pseed_;

    std::unique_ptr<VanillaTlb> vReal_;
    std::unique_ptr<OracleVanillaTlb> vOracle_;
    std::unique_ptr<MosaicTlb> mReal_;
    std::unique_ptr<OracleMosaicTlb> mOracle_;
    std::unique_ptr<CoalescedTlb> cReal_;
    std::unique_ptr<OracleCoalescedTlb> cOracle_;
    std::unique_ptr<PerforatedTlb> pReal_;
    std::unique_ptr<OraclePerforatedTlb> pOracle_;
};

// ----------------------------------------------- design harness (§14)

/**
 * Deterministic page tables for the pluggable-design harness: one
 * TranslationWalker whose answers are pure functions of (pseed, asid,
 * page), shared by the real design and its oracle so both always see
 * identical walk results. The pfn layout mixes contiguous 8-page runs
 * (3/4 of mapped blocks) with scattered frames and 1/8 unmapped pages
 * — enough structure for the range miner and the coalescer to find
 * runs, enough noise to break them.
 */
class FuzzWalker final : public TranslationWalker
{
  public:
    explicit FuzzWalker(std::uint64_t pseed) : pseed_(pseed) {}

    std::optional<Pfn>
    pfnOf(Asid asid, Vpn v) override
    {
        if (mix(pseed_, 0x61, asid, v) % 8 == 0)
            return std::nullopt;
        const Vpn block = v / 8;
        const unsigned off = static_cast<unsigned>(v % 8);
        if (mix(pseed_, 0x63, asid, block) % 4 != 0) {
            // The whole block is physically contiguous.
            const Pfn base =
                ((mix(pseed_, 0x62, asid, block) & 0xFFFFF) + 1) * 8;
            return base + off;
        }
        return mix(pseed_, 0x64, asid, v) & 0xFFFFF;
    }

    void
    tocOf(Asid asid, Vpn vpn, unsigned arity,
          std::span<Cpfn> out) override
    {
        const Mvpn mvpn = vpn / arity;
        for (unsigned i = 0; i < arity; ++i) {
            const std::uint64_t m =
                mix(pseed_, 0x65, asid, (mvpn << 8) | i);
            out[i] = m % 4 == 0
                         ? unmappedCode()
                         : static_cast<Cpfn>((m >> 8) % 0x7F);
        }
    }

    Cpfn unmappedCode() const override { return 0x7F; }

  private:
    std::uint64_t pseed_;
};

/**
 * Differential harness for the registry-built designs (stride, pwc,
 * range): the real side is constructed THROUGH makeTranslationDesign
 * — so every fuzz run also exercises the registry's spec round trip —
 * and compared against the recency-list oracle design after every op:
 * hit/miss result, all TlbStats counters, valid entries, measured
 * reach, and every DesignCounters field (walk cost, PWC hits,
 * prefetch accounting, region fills).
 */
class DesignHarness
{
  public:
    explicit DesignHarness(const Trace &t)
        : walker_(t.cfgUint("pseed", 7))
    {
        OracleDesignSpec spec;
        spec.kind = t.cfgValue("kind", "stride");
        spec.base = t.cfgValue("base", "vanilla");
        spec.geometry = {static_cast<unsigned>(t.cfgUint("entries", 16)),
                         static_cast<unsigned>(t.cfgUint("ways", 2))};
        spec.arity = static_cast<unsigned>(t.cfgUint("arity", 4));
        spec.arbitrary = t.cfgValue("mode", "fixed") == "arbitrary";
        spec.degree = static_cast<unsigned>(t.cfgUint("degree", 2));
        spec.ranges = static_cast<unsigned>(t.cfgUint("ranges", 32));
        spec.maxRun = t.cfgUint("maxrun", 512);
        spec.l1 = static_cast<unsigned>(t.cfgUint("l1", 16));
        spec.l2 = static_cast<unsigned>(t.cfgUint("l2", 8));
        kind_ = spec.kind;
        oracle_ = makeOracleDesign(spec);

        std::string rspec;
        if (spec.kind == "range") {
            rspec = "range:ranges=" + std::to_string(spec.ranges) +
                    ",maxrun=" + std::to_string(spec.maxRun);
        } else {
            rspec = spec.kind + ":base=" + spec.base +
                    ",entries=" + std::to_string(spec.geometry.entries) +
                    ",ways=" + std::to_string(spec.geometry.ways) +
                    ",arity=" + std::to_string(spec.arity);
            if (spec.kind == "stride") {
                rspec += std::string(",mode=") +
                         (spec.arbitrary ? "arbitrary" : "fixed") +
                         ",degree=" + std::to_string(spec.degree);
            } else {
                rspec += ",l1=" + std::to_string(spec.l1) +
                         ",l2=" + std::to_string(spec.l2);
            }
        }
        Result<std::unique_ptr<TranslationDesign>> built =
            makeTranslationDesign(rspec);
        if (!built.ok())
            panic("fuzzer: design spec rejected: " +
                  built.status().toString());
        real_ = std::move(built.value());
    }

    MaybeDivergence
    apply(const TraceOp &op, std::size_t idx, bool *applied, Digest &dg)
    {
        *applied = true;
        const Asid asid = static_cast<Asid>(op.arg(0));
        const Vpn vpn = op.arg(1);
        switch (op.kind) {
        case 'l': {
            const bool r = real_->access(asid, vpn, walker_);
            const bool o = oracle_->access(asid, vpn, walker_);
            dg.mix('l');
            dg.mix(r ? 1 : 0);
            if (r != o) {
                return diverge(idx, kind_ + " design access" +
                    pageStr(asid, vpn) + ": real=" +
                    (r ? "hit" : "miss") + " oracle=" +
                    (o ? "hit" : "miss"));
            }
            break;
        }
        case 'i':
            real_->invalidatePage(asid, vpn);
            oracle_->invalidatePage(asid, vpn);
            dg.mix('i');
            break;
        case 'f':
            real_->flushAsid(asid);
            oracle_->flushAsid(asid);
            dg.mix('f');
            break;
        default:
            *applied = false;
            return std::nullopt;
        }
        return compareState(idx);
    }

  private:
    MaybeDivergence
    compareState(std::size_t idx)
    {
        const TlbStats &r = real_->stats();
        const TlbStats &o = oracle_->stats();
        if (r.accesses != o.accesses || r.hits != o.hits ||
                r.misses != o.misses ||
                r.subEntryFills != o.subEntryFills ||
                r.evictions != o.evictions ||
                r.invalidations != o.invalidations) {
            return diverge(idx, kind_ + " design stats counter "
                "disagrees with oracle");
        }
        if (real_->validEntries() != oracle_->validEntries()) {
            return diverge(idx, kind_ + " design validEntries: real=" +
                std::to_string(real_->validEntries()) + " oracle=" +
                std::to_string(oracle_->validEntries()));
        }
        if (real_->reachPages() != oracle_->reachPages()) {
            return diverge(idx, kind_ + " design reachPages: real=" +
                std::to_string(real_->reachPages()) + " oracle=" +
                std::to_string(oracle_->reachPages()));
        }
        const DesignCounters rc = real_->counters();
        const DesignCounters oc = oracle_->counters();
        if (rc.walkRefs != oc.walkRefs ||
                rc.pwcLookups != oc.pwcLookups ||
                rc.pwcHits != oc.pwcHits ||
                rc.prefetchesIssued != oc.prefetchesIssued ||
                rc.prefetchFills != oc.prefetchFills ||
                rc.regionFills != oc.regionFills) {
            return diverge(idx, kind_ + " design walk/helper counter "
                "disagrees with oracle");
        }
        return std::nullopt;
    }

    std::string kind_;
    FuzzWalker walker_;
    std::unique_ptr<TranslationDesign> real_;
    std::unique_ptr<OracleDesign> oracle_;
};

/** Kinds the DesignHarness owns (the rest stay with TlbHarness). */
bool
designKind(const std::string &kind)
{
    return kind == "stride" || kind == "pwc" || kind == "range";
}

// --------------------------------------------------------- vm harness

/** Trace -> LinuxVmConfig. Shared by the harness and the batched
 *  pipeline shadow so both paths build identical instances. */
LinuxVmConfig
linuxVmCfgFromTrace(const Trace &t, fault::FaultInjector *faults)
{
    LinuxVmConfig cfg;
    cfg.numFrames = t.cfgUint("frames", 128);
    cfg.watermarkFraction =
        static_cast<double>(t.cfgUint("watermark_ppm", 8000)) / 1e6;
    cfg.reclaimBatch = static_cast<unsigned>(t.cfgUint("batch", 32));
    cfg.faults = faults;
    return cfg;
}

/** Trace -> MosaicVmConfig (see linuxVmCfgFromTrace). */
MosaicVmConfig
mosaicVmCfgFromTrace(const Trace &t, fault::FaultInjector *faults)
{
    MosaicVmConfig cfg;
    cfg.geometry.frontSlots =
        static_cast<unsigned>(t.cfgUint("front", 6));
    cfg.geometry.backSlots =
        static_cast<unsigned>(t.cfgUint("back", 2));
    cfg.geometry.backChoices =
        static_cast<unsigned>(t.cfgUint("d", 2));
    cfg.geometry.numFrames = t.cfgUint("buckets", 4) *
        cfg.geometry.slotsPerBucket();
    cfg.geometry.hashSeed = t.cfgUint("hashseed", 1);
    cfg.arity = static_cast<unsigned>(t.cfgUint("arity", 4));
    cfg.seed = t.cfgUint("seed", 12345);
    cfg.faults = faults;
    cfg.shrinkDelta =
        static_cast<double>(t.cfgUint("shrink_ppm", 20000)) / 1e6;
    cfg.sharing = t.cfgValue("sharing", "pageid") == "locid"
                      ? SharingMode::LocationId
                      : SharingMode::PageIdHash;
    const std::string policy = t.cfgValue("policy", "horizon");
    if (policy == "horizon")
        cfg.policy = EvictionPolicy::HorizonLru;
    else if (policy == "local")
        cfg.policy = EvictionPolicy::LocalLru;
    else
        cfg.policy = EvictionPolicy::ShrunkenCache;
    return cfg;
}

class VmHarness
{
  public:
    explicit VmHarness(const Trace &t,
                       fault::FaultInjector *faults = nullptr)
        : kind_(t.cfgValue("kind", "mosaic")),
          deep_(t.cfgUint("deep", 512))
    {
        if (kind_ == "linux") {
            const LinuxVmConfig cfg = linuxVmCfgFromTrace(t, faults);
            lvm_ = std::make_unique<LinuxVm>(cfg);
            OracleVmConfig ocfg;
            ocfg.numFrames = cfg.numFrames;
            ocfg.watermarkFraction = cfg.watermarkFraction;
            ocfg.reclaimBatch = cfg.reclaimBatch;
            lOracle_ = std::make_unique<OracleVm>(ocfg);
            return;
        }
        ensure(kind_ == "mosaic", "fuzzer: unknown vm kind");
        const MosaicVmConfig cfg = mosaicVmCfgFromTrace(t, faults);
        locMode_ = cfg.sharing == SharingMode::LocationId;
        policy_ = cfg.policy;
        arity_ = cfg.arity;
        log2Arity_ = ceilLog2(arity_);
        mvm_ = std::make_unique<MosaicVm>(cfg);
        numFrames_ = cfg.geometry.numFrames;
        usedPre_.resize(numFrames_);
        dirtyPre_.resize(numFrames_);
        lastAccessPre_.resize(numFrames_);
        ownerPre_.resize(numFrames_);
        if (!locMode_ && policy_ == EvictionPolicy::HorizonLru)
            recency_ = std::make_unique<OracleVm>(OracleVmConfig{0});
    }

    MaybeDivergence
    apply(const TraceOp &op, std::size_t idx, bool *applied, Digest &dg)
    {
        *applied = true;
        if (kind_ == "linux")
            return applyLinux(op, idx, applied, dg);
        return applyMosaic(op, idx, applied, dg);
    }

  private:
    using TocKeyM = std::pair<Asid, Mvpn>;
    using SlotId = std::pair<std::uint64_t, unsigned>;

    // ------------------------------------------------------- linux

    MaybeDivergence
    applyLinux(const TraceOp &op, std::size_t idx, bool *applied,
               Digest &dg)
    {
        if (!reserveChecked_) {
            reserveChecked_ = true;
            if (lvm_->reserveFrames() != lOracle_->reserveFrames()) {
                return diverge(idx, "linux watermark reserve: real=" +
                    std::to_string(lvm_->reserveFrames()) + " oracle=" +
                    std::to_string(lOracle_->reserveFrames()));
            }
        }
        const Asid asid = static_cast<Asid>(op.arg(0));
        const Vpn vpn = op.arg(1);
        switch (op.kind) {
        case 't': {
            const bool write = op.arg(2) != 0;
            const PageId id{asid, vpn};
            const bool present = lvm_->pageTable(asid).walk(vpn).present;
            const OracleVm::Outcome o = lOracle_->touch(asid, vpn, write);
            const Pfn pfn = lvm_->touch(asid, vpn, write);
            dg.mix('t');
            dg.mix(pfn);
            if (o.fault != !present) {
                return diverge(idx, "linux touch " + pageStr(asid, vpn) +
                    ": oracle fault disposition disagrees with the "
                    "real page table");
            }
            const Frame &f = lvm_->frameTable().frame(pfn);
            if (!f.used || !(f.owner == id)) {
                return diverge(idx, "linux touch " + pageStr(asid, vpn) +
                    ": returned frame not owned by the page");
            }
            if (f.dirty != lOracle_->isDirty(id)) {
                return diverge(idx, "linux touch " + pageStr(asid, vpn) +
                    ": dirty bit disagrees with oracle");
            }
            if (f.lastAccess != lOracle_->lastAccessOf(id)) {
                return diverge(idx, "linux touch " + pageStr(asid, vpn) +
                    ": access tick disagrees with oracle");
            }
            break;
        }
        case 'u': {
            const std::size_t n = op.arg(2);
            lOracle_->unmapRange(asid, vpn, n);
            lvm_->unmapRange(asid, vpn, n);
            dg.mix('u');
            for (std::size_t i = 0; i < n; ++i) {
                if (lvm_->pageTable(asid).walk(vpn + i).present) {
                    return diverge(idx, "linux unmap left " +
                        pageStr(asid, vpn + i) + " mapped");
                }
            }
            break;
        }
        default:
            *applied = false;
            return std::nullopt;
        }

        const VmStats &r = lvm_->stats();
        const VmStats &o = lOracle_->stats();
        if (r.minorFaults != o.minorFaults ||
                r.majorFaults != o.majorFaults ||
                r.swapIns != o.swapIns || r.swapOuts != o.swapOuts) {
            return diverge(idx,
                "linux stats counter disagrees with oracle (minor " +
                std::to_string(r.minorFaults) + "/" +
                std::to_string(o.minorFaults) + ", major " +
                std::to_string(r.majorFaults) + "/" +
                std::to_string(o.majorFaults) + ", in " +
                std::to_string(r.swapIns) + "/" +
                std::to_string(o.swapIns) + ", out " +
                std::to_string(r.swapOuts) + "/" +
                std::to_string(o.swapOuts) + ")");
        }
        if (lvm_->residentPages() != lOracle_->resident()) {
            return diverge(idx, "linux resident pages: real=" +
                std::to_string(lvm_->residentPages()) + " oracle=" +
                std::to_string(lOracle_->resident()));
        }
        if (lvm_->swapDevice().pagesStored() != lOracle_->swapStored()) {
            return diverge(idx, "linux swap population: real=" +
                std::to_string(lvm_->swapDevice().pagesStored()) +
                " oracle=" + std::to_string(lOracle_->swapStored()));
        }
        if (deep_ > 0 && (idx + 1) % deep_ == 0)
            return deepCheckLinux(idx);
        return std::nullopt;
    }

    MaybeDivergence
    deepCheckLinux(std::size_t idx)
    {
        // Resident counts already match, so per-page membership of the
        // oracle's resident set proves the sets are equal.
        for (const PageId &id : lOracle_->residentByRecency()) {
            const VanillaWalkResult walk =
                lvm_->pageTable(id.asid).walk(id.vpn);
            if (!walk.present) {
                return diverge(idx, "linux deep: oracle-resident page " +
                    pageStr(id.asid, id.vpn) + " not mapped");
            }
            const Frame &f = lvm_->frameTable().frame(walk.pfn);
            if (!(f.owner == id)) {
                return diverge(idx, "linux deep: frame owner mismatch "
                    "for " + pageStr(id.asid, id.vpn));
            }
        }
        return std::nullopt;
    }

    // ------------------------------------------------------ mosaic

    void
    snapshotPre()
    {
        const FrameTable &ft = mvm_->frameTable();
        for (Pfn p = 0; p < numFrames_; ++p) {
            const Frame &f = ft.frame(p);
            usedPre_[p] = f.used;
            dirtyPre_[p] = f.dirty;
            lastAccessPre_[p] = f.lastAccess;
            ownerPre_[p] = f.owner;
        }
        horizonPre_ = mvm_->horizon();
        statsPre_ = mvm_->stats();
        residentPre_ = mvm_->residentPages();
        ghostPre_ = mvm_->ghostPages();
    }

    bool
    wasGhostPre(Pfn pfn) const
    {
        return usedPre_[pfn] && lastAccessPre_[pfn] < horizonPre_;
    }

    Vpn
    vpnOfToc(const TocKeyM &key, unsigned sub) const
    {
        return (key.second << log2Arity_) | sub;
    }

    /** Walk one page of the real mosaic page tables. */
    bool
    walkPresent(Asid asid, Vpn vpn)
    {
        return mvm_->pageTable(asid).walk(vpn).present;
    }

    /** Post-op mirror sweep: detect evictions (a bound page that went
     *  absent outside @p expectedAbsent was evicted) and track
     *  residency. A dirty eviction writes a swap copy; a clean one
     *  leaves whatever copy state the slot already had (the copy a
     *  clean page was read from usually persists, but a peer ToC's
     *  unmap may have invalidated it while the frame lived on). */
    void
    sweepMirror(const std::set<PageId> &expectedAbsent)
    {
        for (auto &[key, group] : boundGroup_) {
            for (unsigned sub = 0; sub < arity_; ++sub) {
                const PageId page{key.first, vpnOfToc(key, sub)};
                const bool now = walkPresent(page.asid, page.vpn);
                const bool before = prevPresent_[page];
                if (before && !now && !expectedAbsent.contains(page)) {
                    if (slotFrameWasDirty(group, sub))
                        slotSwap_[SlotId{group, sub}] = true;
                }
                prevPresent_[page] = now;
            }
        }
    }

    /** Dirty bit, at the start of the current op, of the frame that
     *  backed slot (group, sub). The frame's owner is whichever group
     *  member faulted it in, so it is found by owner scan. */
    bool
    slotFrameWasDirty(std::uint64_t group, unsigned sub) const
    {
        const auto &members = groups_.at(group);
        for (Pfn p = 0; p < numFrames_; ++p) {
            if (!usedPre_[p])
                continue;
            for (const TocKeyM &peer : members) {
                if (ownerPre_[p] ==
                        PageId{peer.first, vpnOfToc(peer, sub)})
                    return dirtyPre_[p];
            }
        }
        return false;
    }

    MaybeDivergence
    applyMosaic(const TraceOp &op, std::size_t idx, bool *applied,
                Digest &dg)
    {
        MaybeDivergence bad;
        switch (op.kind) {
        case 't':
            bad = mosaicTouch(op, idx, dg);
            break;
        case 'u':
            bad = mosaicUnmap(op, idx, dg);
            break;
        case 's':
            bad = mosaicShare(op, idx, applied, dg);
            break;
        default:
            *applied = false;
            return std::nullopt;
        }
        if (bad || !*applied)
            return bad;
        if (locMode_ && op.kind == 't') {
            // Record evictions the touch caused (a bound page that
            // went absent must now have a swap copy) before the next
            // op's expectations are computed.
            sweepMirror({});
        }
        if (locMode_) {
            if (mvm_->locationBindings() != boundGroup_.size()) {
                return diverge(idx, "mosaic bindings: real=" +
                    std::to_string(mvm_->locationBindings()) +
                    " mirror=" + std::to_string(boundGroup_.size()));
            }
            if (mvm_->locationUsers() != mvm_->locationBindings()) {
                return diverge(idx, "mosaic location user lists out of "
                    "sync with bindings");
            }
        }
        if (policy_ != EvictionPolicy::HorizonLru &&
                mvm_->ghostPages() != 0) {
            return diverge(idx, "mosaic: ghost pages under a policy "
                "that never raises the horizon");
        }
        if (deep_ > 0 && (idx + 1) % deep_ == 0)
            return deepCheckMosaic(idx);
        return std::nullopt;
    }

    /** Bind a ToC in the mirror if needed (mirrors locationIdFor). */
    void
    mirrorBind(const TocKeyM &key)
    {
        if (!boundGroup_.contains(key)) {
            const std::uint64_t g = nextGroup_++;
            boundGroup_.emplace(key, g);
            groups_[g].push_back(key);
        }
    }

    MaybeDivergence
    mosaicTouch(const TraceOp &op, std::size_t idx, Digest &dg)
    {
        const Asid asid = static_cast<Asid>(op.arg(0));
        const Vpn vpn = op.arg(1);
        const bool write = op.arg(2) != 0;
        snapshotPre();

        const TocKeyM key{asid, vpn >> log2Arity_};
        const unsigned sub = static_cast<unsigned>(vpn & (arity_ - 1));
        const bool ownPresent = walkPresent(asid, vpn);

        bool aliasPresent = false;
        if (locMode_ && !ownPresent) {
            if (const auto it = boundGroup_.find(key);
                    it != boundGroup_.end()) {
                for (const TocKeyM &peer : groups_.at(it->second)) {
                    if (peer == key)
                        continue;
                    if (walkPresent(peer.first, vpnOfToc(peer, sub))) {
                        aliasPresent = true;
                        break;
                    }
                }
            }
        }

        // PageIdHash mode: re-derive the exact placement decision from
        // the public allocator before the touch mutates anything.
        bool predicted = false;
        bool predMajor = false;
        Pfn predPfn = invalidPfn;
        std::uint64_t predConflicts = 0, predGhostEvicts = 0,
                      predSwapOuts = 0;
        Tick predHorizon = horizonPre_;
        std::int64_t predGhostDelta = 0, predResidentDelta = 0;
        std::optional<PageId> predVictim;
        if (!locMode_ && !ownPresent &&
                policy_ != EvictionPolicy::ShrunkenCache) {
            predicted = true;
            const std::uint64_t hin = packPageId(PageId{asid, vpn});
            predMajor = mvm_->swapDevice().contains(hin);
            const MosaicAllocator &alloc = mvm_->allocator();
            const FrameTable &ft = mvm_->frameTable();
            const CandidateSet cand = alloc.mapper().candidates(hin);
            const Tick h0 = horizonPre_;
            const auto is_ghost = [h0](const Frame &f) {
                return f.lastAccess < h0;
            };
            const std::optional<Placement> pl =
                alloc.place(cand, ft, is_ghost);
            if (!pl) {
                predConflicts = 1;
                const Placement victim = alloc.lruCandidate(cand, ft);
                const Frame &vf = ft.frame(victim.pfn);
                predPfn = victim.pfn;
                predVictim = vf.owner;
                predSwapOuts = vf.dirty ? 1 : 0;
                if (policy_ == EvictionPolicy::HorizonLru) {
                    predHorizon = std::max(h0, vf.lastAccess);
                    for (Pfn p = 0; p < numFrames_; ++p) {
                        if (p != victim.pfn && usedPre_[p] &&
                                lastAccessPre_[p] >= h0 &&
                                lastAccessPre_[p] < predHorizon)
                            ++predGhostDelta;
                    }
                }
            } else if (pl->evictsGhost) {
                const Frame &gf = ft.frame(pl->pfn);
                predPfn = pl->pfn;
                predVictim = gf.owner;
                predGhostEvicts = 1;
                predSwapOuts = gf.dirty ? 1 : 0;
                predGhostDelta = -1;
            } else {
                predPfn = pl->pfn;
                predResidentDelta = 1;
            }
        }

        const Pfn pfn = mvm_->touch(asid, vpn, write);
        dg.mix('t');
        dg.mix(pfn);
        if (locMode_)
            mirrorBind(key);
        else if (recency_)
            recency_->touch(asid, vpn, write);

        const VmStats &s = mvm_->stats();
        const auto delta = [&](std::uint64_t now, std::uint64_t pre) {
            return static_cast<std::int64_t>(now - pre);
        };
        const std::int64_t dMinor = delta(s.minorFaults,
                                          statsPre_.minorFaults);
        const std::int64_t dMajor = delta(s.majorFaults,
                                          statsPre_.majorFaults);
        const std::int64_t dSwapIns = delta(s.swapIns, statsPre_.swapIns);
        const std::int64_t dSwapOuts = delta(s.swapOuts,
                                             statsPre_.swapOuts);
        const std::int64_t dConflicts = delta(s.conflicts,
                                              statsPre_.conflicts);
        const std::int64_t dGhostEvicts = delta(s.ghostEvictions,
                                                statsPre_.ghostEvictions);
        const std::int64_t dRescues = delta(s.ghostRescues,
                                            statsPre_.ghostRescues);
        const std::int64_t dGhosts =
            static_cast<std::int64_t>(mvm_->ghostPages()) -
            static_cast<std::int64_t>(ghostPre_);
        const std::int64_t dResident =
            static_cast<std::int64_t>(mvm_->residentPages()) -
            static_cast<std::int64_t>(residentPre_);

        const Frame &f = mvm_->frameTable().frame(pfn);
        if (!f.used || f.lastAccess != mvm_->now()) {
            return diverge(idx, "mosaic touch " + pageStr(asid, vpn) +
                ": frame not stamped with the current tick");
        }
        if (!walkPresent(asid, vpn)) {
            return diverge(idx, "mosaic touch " + pageStr(asid, vpn) +
                ": page not mapped after touch");
        }
        if (mvm_->horizon() < horizonPre_) {
            return diverge(idx, "mosaic horizon moved backwards");
        }

        if (ownPresent || aliasPresent) {
            // Hit or sharer adoption: no allocation happened, so ghost
            // count may only move by rescuing this very frame.
            const bool wasGhost = wasGhostPre(pfn);
            const std::int64_t expRescue = wasGhost ? 1 : 0;
            if (dConflicts != 0 || dGhostEvicts != 0 || dSwapOuts != 0 ||
                    dSwapIns != 0 || dMajor != 0 || dResident != 0) {
                return diverge(idx, "mosaic " +
                    std::string(ownPresent ? "hit" : "adoption") + " of " +
                    pageStr(asid, vpn) + " changed allocation counters");
            }
            if (dMinor != (ownPresent ? 0 : 1)) {
                return diverge(idx, "mosaic " +
                    std::string(ownPresent ? "hit" : "adoption") + " of " +
                    pageStr(asid, vpn) + ": unexpected minor faults");
            }
            if (mvm_->horizon() != horizonPre_) {
                return diverge(idx, "mosaic hit/adoption raised the "
                    "horizon");
            }
            if (dGhosts != -expRescue || dRescues != expRescue) {
                return diverge(idx, "mosaic " +
                    std::string(ownPresent ? "hit" : "adoption") + " of " +
                    pageStr(asid, vpn) + (wasGhost
                        ? " on a ghost frame: ghostPages moved by " +
                          std::to_string(dGhosts) + " but ghostRescues "
                          "moved by " + std::to_string(dRescues)
                        : " on a live frame changed ghost accounting"));
            }
            const bool expDirty = dirtyPre_[pfn] || write;
            if (f.dirty != expDirty) {
                return diverge(idx, "mosaic hit/adoption dirty bit "
                    "mismatch");
            }
            return std::nullopt;
        }

        // Allocation path.
        if (dMinor + dMajor != 1 || dSwapIns != dMajor ||
                (dMajor != 0) != (dSwapIns != 0)) {
            return diverge(idx, "mosaic fault on " + pageStr(asid, vpn) +
                ": fault counters moved by minor=" +
                std::to_string(dMinor) + " major=" +
                std::to_string(dMajor) + " swapIns=" +
                std::to_string(dSwapIns));
        }
        const bool major = dMajor == 1;
        if (!(f.owner == PageId{asid, vpn})) {
            return diverge(idx, "mosaic fault: frame owner is not the "
                "faulted page " + pageStr(asid, vpn));
        }
        if (f.dirty != (!major || write)) {
            return diverge(idx, "mosaic fault: dirty-at-birth rule "
                "violated for " + pageStr(asid, vpn));
        }
        if (predicted) {
            if (major != predMajor) {
                return diverge(idx, "mosaic fault kind: swap device " +
                    std::string(predMajor ? "holds" : "lacks") +
                    " the page but the fault was " +
                    (major ? "major" : "minor"));
            }
            if (pfn != predPfn) {
                return diverge(idx, "mosaic placement: touch used frame " +
                    std::to_string(pfn) + ", allocator rule says " +
                    std::to_string(predPfn));
            }
            if (dConflicts != static_cast<std::int64_t>(predConflicts) ||
                    dGhostEvicts !=
                        static_cast<std::int64_t>(predGhostEvicts) ||
                    dSwapOuts != static_cast<std::int64_t>(predSwapOuts)) {
                return diverge(idx, "mosaic eviction counters deviate "
                    "from the placement rule (conflicts " +
                    std::to_string(dConflicts) + "/" +
                    std::to_string(predConflicts) + ", ghostEvictions " +
                    std::to_string(dGhostEvicts) + "/" +
                    std::to_string(predGhostEvicts) + ", swapOuts " +
                    std::to_string(dSwapOuts) + "/" +
                    std::to_string(predSwapOuts) + ")");
            }
            if (mvm_->horizon() != predHorizon) {
                return diverge(idx, "mosaic horizon: real=" +
                    std::to_string(mvm_->horizon()) + " predicted=" +
                    std::to_string(predHorizon));
            }
            if (dGhosts != predGhostDelta) {
                return diverge(idx, "mosaic ghost count moved by " +
                    std::to_string(dGhosts) + ", predicted " +
                    std::to_string(predGhostDelta));
            }
            if (dResident != predResidentDelta) {
                return diverge(idx, "mosaic resident count moved by " +
                    std::to_string(dResident) + ", predicted " +
                    std::to_string(predResidentDelta));
            }
            if (predVictim &&
                    walkPresent(predVictim->asid, predVictim->vpn)) {
                return diverge(idx, "mosaic victim " +
                    pageStr(predVictim->asid, predVictim->vpn) +
                    " still mapped after its eviction");
            }
        } else {
            // ShrunkenCache may pre-evict the global-LRU frame and
            // then still hit a conflict, freeing two frames while
            // mapping one.
            const std::int64_t lo =
                policy_ == EvictionPolicy::ShrunkenCache ? -1 : 0;
            if (dResident < lo || dResident > 1) {
                return diverge(idx, "mosaic fault moved resident count "
                    "by " + std::to_string(dResident));
            }
        }
        return std::nullopt;
    }

    MaybeDivergence
    mosaicUnmap(const TraceOp &op, std::size_t idx, Digest &dg)
    {
        const Asid asid = static_cast<Asid>(op.arg(0));
        const Vpn vpn = op.arg(1);
        const std::size_t n = op.arg(2);
        snapshotPre();

        // PageIdHash mode: the exact set of frames and swap copies the
        // unmap must release is knowable up front.
        std::int64_t predFreed = 0, predGhostsFreed = 0, predSwapDrop = 0;
        if (!locMode_) {
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint64_t hin =
                    packPageId(PageId{asid, vpn + i});
                if (mvm_->swapDevice().contains(hin))
                    ++predSwapDrop;
                const MosaicWalkResult walk =
                    mvm_->pageTable(asid).walk(vpn + i);
                if (walk.present) {
                    ++predFreed;
                    const Pfn pfn = mvm_->allocator().mapper().toPfn(
                        mvm_->allocator().mapper().candidates(hin),
                        walk.cpfn);
                    if (wasGhostPre(pfn))
                        ++predGhostsFreed;
                }
            }
        }

        // LocationId mode: which slots the unmap covers, and which
        // ToCs may lose their binding, mirrors unmapRange exactly.
        std::set<SlotId> coveredSlots;
        std::set<PageId> coveredPages;
        std::set<TocKeyM> affected;
        if (locMode_) {
            for (std::size_t i = 0; i < n; ++i) {
                const Vpn v = vpn + i;
                const TocKeyM key{asid, v >> log2Arity_};
                const auto it = boundGroup_.find(key);
                if (it == boundGroup_.end())
                    continue;
                const unsigned sub =
                    static_cast<unsigned>(v & (arity_ - 1));
                coveredSlots.insert(SlotId{it->second, sub});
                for (const TocKeyM &peer : groups_.at(it->second)) {
                    affected.insert(peer);
                    coveredPages.insert(
                        PageId{peer.first, vpnOfToc(peer, sub)});
                }
            }
        }

        const std::size_t swapPre = mvm_->swapDevice().pagesStored();
        mvm_->unmapRange(asid, vpn, n);
        dg.mix('u');
        dg.mix(asid);
        dg.mix(vpn);
        dg.mix(n);
        if (recency_)
            recency_->unmapRange(asid, vpn, n);

        for (std::size_t i = 0; i < n; ++i) {
            if (walkPresent(asid, vpn + i)) {
                return diverge(idx, "mosaic unmap left " +
                    pageStr(asid, vpn + i) + " mapped");
            }
        }
        const VmStats &s = mvm_->stats();
        if (s.minorFaults != statsPre_.minorFaults ||
                s.majorFaults != statsPre_.majorFaults ||
                s.swapOuts != statsPre_.swapOuts ||
                s.conflicts != statsPre_.conflicts) {
            return diverge(idx, "mosaic unmap changed fault/eviction "
                "counters");
        }
        if (mvm_->horizon() != horizonPre_) {
            return diverge(idx, "mosaic unmap moved the horizon");
        }
        const std::int64_t dResident =
            static_cast<std::int64_t>(mvm_->residentPages()) -
            static_cast<std::int64_t>(residentPre_);
        const std::int64_t dGhosts =
            static_cast<std::int64_t>(mvm_->ghostPages()) -
            static_cast<std::int64_t>(ghostPre_);
        const std::int64_t dSwap =
            static_cast<std::int64_t>(mvm_->swapDevice().pagesStored()) -
            static_cast<std::int64_t>(swapPre);
        if (!locMode_) {
            if (dResident != -predFreed) {
                return diverge(idx, "mosaic unmap freed " +
                    std::to_string(-dResident) + " frames, expected " +
                    std::to_string(predFreed));
            }
            if (dGhosts != -predGhostsFreed) {
                return diverge(idx, "mosaic unmap ghost accounting: "
                    "moved " + std::to_string(dGhosts) + ", expected " +
                    std::to_string(-predGhostsFreed));
            }
            if (dSwap != -predSwapDrop) {
                return diverge(idx, "mosaic unmap dropped " +
                    std::to_string(-dSwap) + " swap copies, expected " +
                    std::to_string(predSwapDrop));
            }
        } else {
            if (dResident > 0 || dSwap > 0) {
                return diverge(idx, "mosaic unmap grew resident or "
                    "swap population");
            }
            std::int64_t expSwapDrop = 0;
            for (const SlotId &slot : coveredSlots) {
                if (slotSwap_[slot])
                    ++expSwapDrop;
                slotSwap_[slot] = false;
            }
            if (dSwap != -expSwapDrop) {
                return diverge(idx, "mosaic unmap dropped " +
                    std::to_string(-dSwap) + " swap copies, slot mirror "
                    "expected " + std::to_string(expSwapDrop));
            }
            sweepMirror(coveredPages);
            // Binding-death mirror of releaseBindingIfDead: a ToC's
            // binding survives iff any of its pages is still mapped or
            // any of its group's slots still has a swap copy.
            for (const TocKeyM &key : affected) {
                const auto it = boundGroup_.find(key);
                if (it == boundGroup_.end())
                    continue;
                const std::uint64_t g = it->second;
                bool alive = false;
                for (unsigned sub = 0; sub < arity_ && !alive; ++sub) {
                    if (walkPresent(key.first, vpnOfToc(key, sub)) ||
                            slotSwap_[SlotId{g, sub}])
                        alive = true;
                }
                if (alive)
                    continue;
                auto &members = groups_.at(g);
                std::erase(members, key);
                if (members.empty())
                    groups_.erase(g);
                boundGroup_.erase(it);
                for (unsigned sub = 0; sub < arity_; ++sub)
                    prevPresent_.erase(
                        PageId{key.first, vpnOfToc(key, sub)});
            }
        }
        return std::nullopt;
    }

    MaybeDivergence
    mosaicShare(const TraceOp &op, std::size_t idx, bool *applied,
                Digest &dg)
    {
        const Asid sa = static_cast<Asid>(op.arg(0));
        const Vpn sv = op.arg(1);
        const Asid da = static_cast<Asid>(op.arg(2));
        const Vpn dv = op.arg(3);
        const std::size_t n = op.arg(4);

        // Deterministic validity rules; an invalid share is skipped so
        // that every subsequence of a trace replays identically.
        bool valid = locMode_ && sa != da && n > 0 && n % arity_ == 0 &&
                     (sv & (arity_ - 1)) == 0 && (dv & (arity_ - 1)) == 0;
        for (std::size_t i = 0; valid && i < n; i += arity_) {
            if (boundGroup_.contains(
                    TocKeyM{da, (dv + i) >> log2Arity_}))
                valid = false;
        }
        if (!valid) {
            *applied = false;
            return std::nullopt;
        }
        snapshotPre();
        mvm_->shareRange(sa, sv, da, dv, n);
        dg.mix('s');
        dg.mix(mix(sa, sv, da, dv));

        for (std::size_t i = 0; i < n; i += arity_) {
            const TocKeyM src{sa, (sv + i) >> log2Arity_};
            const TocKeyM dst{da, (dv + i) >> log2Arity_};
            mirrorBind(src);
            const std::uint64_t g = boundGroup_.at(src);
            boundGroup_.emplace(dst, g);
            groups_[g].push_back(dst);
        }

        for (std::size_t i = 0; i < n; ++i) {
            const MosaicWalkResult src =
                mvm_->pageTable(sa).walk(sv + i);
            const MosaicWalkResult dst =
                mvm_->pageTable(da).walk(dv + i);
            if (src.present != dst.present ||
                    (src.present && src.cpfn != dst.cpfn)) {
                return diverge(idx, "mosaic share: destination mapping "
                    "of " + pageStr(da, dv + i) +
                    " does not mirror the source");
            }
        }
        const VmStats &s = mvm_->stats();
        if (s.faults() != statsPre_.faults() ||
                s.swapOuts != statsPre_.swapOuts ||
                mvm_->residentPages() != residentPre_ ||
                mvm_->horizon() != horizonPre_) {
            return diverge(idx, "mosaic share changed fault or "
                "residency state");
        }
        sweepMirror({});
        return std::nullopt;
    }

    MaybeDivergence
    deepCheckMosaic(std::size_t idx)
    {
        const FrameTable &ft = mvm_->frameTable();
        std::size_t used = 0, ghosts = 0;
        std::vector<PageId> live;
        for (Pfn p = 0; p < numFrames_; ++p) {
            const Frame &f = ft.frame(p);
            if (!f.used)
                continue;
            ++used;
            if (mvm_->isGhostFrame(p))
                ++ghosts;
            else
                live.push_back(f.owner);
            if (!locMode_) {
                // CPFN round trip: the owner's page-table entry must
                // decode back to exactly this frame.
                const MosaicWalkResult walk =
                    mvm_->pageTable(f.owner.asid).walk(f.owner.vpn);
                if (!walk.present) {
                    return diverge(idx, "mosaic deep: owner of frame " +
                        std::to_string(p) + " not mapped");
                }
                const CandidateSet cand =
                    mvm_->allocator().mapper().candidates(
                        packPageId(f.owner));
                if (mvm_->allocator().mapper().toPfn(cand, walk.cpfn) !=
                            p ||
                        mvm_->allocator().mapper().toCpfn(cand, p) !=
                            walk.cpfn) {
                    return diverge(idx, "mosaic deep: CPFN round trip "
                        "failed for frame " + std::to_string(p));
                }
            }
        }
        if (used != mvm_->residentPages()) {
            return diverge(idx, "mosaic deep: frame scan counts " +
                std::to_string(used) + " used frames, residentPages() "
                "says " + std::to_string(mvm_->residentPages()));
        }
        if (ghosts != mvm_->ghostPages()) {
            return diverge(idx, "mosaic deep: frame scan counts " +
                std::to_string(ghosts) + " ghosts, ghostPages() says " +
                std::to_string(mvm_->ghostPages()));
        }
        if (recency_) {
            // Horizon LRU == global LRU (paper §2.4): the live pages
            // must be exactly the top-L of the exact global recency
            // order, L = live count.
            const std::vector<PageId> order =
                recency_->residentByRecency();
            if (order.size() < live.size()) {
                return diverge(idx, "mosaic deep: recency oracle holds "
                    "fewer pages than are live");
            }
            std::vector<PageId> top(order.begin(),
                                    order.begin() +
                                        static_cast<std::ptrdiff_t>(
                                            live.size()));
            std::sort(top.begin(), top.end());
            std::sort(live.begin(), live.end());
            if (top != live) {
                return diverge(idx, "mosaic deep: live set is not the "
                    "top-" + std::to_string(live.size()) +
                    " of the global LRU order");
            }
        }
        return std::nullopt;
    }

    std::string kind_;
    std::uint64_t deep_;

    // linux
    std::unique_ptr<LinuxVm> lvm_;
    std::unique_ptr<OracleVm> lOracle_;
    bool reserveChecked_ = false;

    // mosaic
    std::unique_ptr<MosaicVm> mvm_;
    EvictionPolicy policy_ = EvictionPolicy::HorizonLru;
    bool locMode_ = false;
    unsigned arity_ = 4;
    unsigned log2Arity_ = 2;
    std::size_t numFrames_ = 0;
    std::vector<std::uint8_t> usedPre_;
    std::vector<std::uint8_t> dirtyPre_;
    std::vector<Tick> lastAccessPre_;
    std::vector<PageId> ownerPre_;
    Tick horizonPre_ = 0;
    VmStats statsPre_;
    std::size_t residentPre_ = 0;
    std::size_t ghostPre_ = 0;

    // LocationId mirror: ToC -> group, group -> members, slot -> does
    // the swap device hold a copy, page -> was it mapped after the
    // previous op.
    std::map<TocKeyM, std::uint64_t> boundGroup_;
    std::map<std::uint64_t, std::vector<TocKeyM>> groups_;
    std::uint64_t nextGroup_ = 1;
    std::map<SlotId, bool> slotSwap_;
    std::map<PageId, bool> prevPresent_;

    // PageIdHash + HorizonLru: unbounded recency oracle.
    std::unique_ptr<OracleVm> recency_;
};

// ------------------------------------- batched pipeline shadows

/** Flattened observable VM state for exact scalar/batched
 *  comparison: every stats metric plus residency and (for mosaic)
 *  ghost/horizon/clock state. */
std::vector<std::pair<std::string, double>>
vmStateVector(const VirtualMemory &vm, bool is_mosaic)
{
    std::vector<std::pair<std::string, double>> out;
    vm.stats().forEachMetric([&](const char *name,
                                 const auto &value) {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, RunningStat>) {
            const std::string base = name;
            out.emplace_back(base + ".count",
                             static_cast<double>(value.count()));
            out.emplace_back(base + ".mean", value.mean());
        } else {
            out.emplace_back(name, static_cast<double>(value));
        }
    });
    out.emplace_back("residentPages",
                     static_cast<double>(vm.residentPages()));
    if (is_mosaic) {
        const auto &mvm = static_cast<const MosaicVm &>(vm);
        out.emplace_back("ghostPages",
                         static_cast<double>(mvm.ghostPages()));
        out.emplace_back("horizon",
                         static_cast<double>(mvm.horizon()));
        out.emplace_back("now", static_cast<double>(mvm.now()));
    }
    return out;
}

/**
 * Lockstep shadow for the batched VM pipeline (DESIGN.md §13): every
 * applied vm-trace op is replayed into a scalar-driven VM and a
 * touchBatch-driven VM, each built from the same trace config with
 * its own identically seeded fault injector. Touches buffer into
 * blocks of @p batch; any non-touch mutation and the end of the
 * trace flush the pipeline. At every flush boundary the per-touch
 * PFNs and the full observable state must match exactly — the
 * primary harness (and therefore the digest) is untouched, so
 * batched runs reproduce scalar goldens by construction.
 */
class VmBatchShadow
{
  public:
    VmBatchShadow(const Trace &t, unsigned batch,
                  const fault::FaultPlan *plan, std::uint64_t iseed)
        : batch_(std::max(batch, 2u)),
          scalarInj_(plan, iseed), batchInj_(plan, iseed),
          linux_(t.cfgValue("kind", "mosaic") == "linux")
    {
        fault::FaultInjector *sf =
            plan->empty() ? nullptr : &scalarInj_;
        fault::FaultInjector *bf =
            plan->empty() ? nullptr : &batchInj_;
        if (linux_) {
            scalarVm_ =
                std::make_unique<LinuxVm>(linuxVmCfgFromTrace(t, sf));
            batchVm_ =
                std::make_unique<LinuxVm>(linuxVmCfgFromTrace(t, bf));
        } else {
            scalarVm_ = std::make_unique<MosaicVm>(
                mosaicVmCfgFromTrace(t, sf));
            batchVm_ = std::make_unique<MosaicVm>(
                mosaicVmCfgFromTrace(t, bf));
        }
        pending_.reserve(batch_);
        expected_.reserve(batch_);
        got_.resize(batch_);
    }

    /** Mirror one applied op; non-vm op kinds are ignored. */
    MaybeDivergence
    mirror(const TraceOp &op, std::size_t idx)
    {
        const Asid asid = static_cast<Asid>(op.arg(0));
        const Vpn vpn = op.arg(1);
        switch (op.kind) {
        case 't': {
            const bool write = op.arg(2) != 0;
            pending_.push_back(PageTouch{asid, vpn, write});
            expected_.push_back(scalarVm_->touch(asid, vpn, write));
            if (pending_.size() >= batch_)
                return drain(idx);
            return std::nullopt;
        }
        case 'u': {
            if (MaybeDivergence bad = drain(idx))
                return bad;
            const std::size_t n = op.arg(2);
            if (linux_) {
                static_cast<LinuxVm &>(*scalarVm_)
                    .unmapRange(asid, vpn, n);
                static_cast<LinuxVm &>(*batchVm_)
                    .unmapRange(asid, vpn, n);
            } else {
                static_cast<MosaicVm &>(*scalarVm_)
                    .unmapRange(asid, vpn, n);
                static_cast<MosaicVm &>(*batchVm_)
                    .unmapRange(asid, vpn, n);
            }
            return compare(idx);
        }
        case 's': {
            // The harness only reports valid shares as applied.
            if (MaybeDivergence bad = drain(idx))
                return bad;
            const Asid da = static_cast<Asid>(op.arg(2));
            const Vpn dv = op.arg(3);
            const std::size_t n = op.arg(4);
            static_cast<MosaicVm &>(*scalarVm_)
                .shareRange(asid, vpn, da, dv, n);
            static_cast<MosaicVm &>(*batchVm_)
                .shareRange(asid, vpn, da, dv, n);
            return compare(idx);
        }
        default:
            return std::nullopt;
        }
    }

    /** Flush the tail block and run the final cross-checks. */
    MaybeDivergence
    finish(std::size_t idx)
    {
        if (MaybeDivergence bad = drain(idx))
            return bad;
        if (scalarInj_.totalFired() != batchInj_.totalFired()) {
            return diverge(idx, "batched pipeline: injected-fault "
                "count diverged: scalar=" +
                std::to_string(scalarInj_.totalFired()) + " batched=" +
                std::to_string(batchInj_.totalFired()));
        }
        return std::nullopt;
    }

  private:
    MaybeDivergence
    drain(std::size_t idx)
    {
        if (pending_.empty())
            return std::nullopt;
        batchVm_->touchBatch(pending_, got_.data());
        for (std::size_t k = 0; k < pending_.size(); ++k) {
            if (got_[k] != expected_[k]) {
                return diverge(idx, "batched pipeline: touch " +
                    pageStr(pending_[k].asid, pending_[k].vpn) +
                    " returned pfn " + std::to_string(got_[k]) +
                    ", scalar returned " +
                    std::to_string(expected_[k]));
            }
        }
        pending_.clear();
        expected_.clear();
        return compare(idx);
    }

    MaybeDivergence
    compare(std::size_t idx)
    {
        const auto want = vmStateVector(*scalarVm_, !linux_);
        const auto got = vmStateVector(*batchVm_, !linux_);
        for (std::size_t k = 0; k < want.size() && k < got.size();
             ++k) {
            if (want[k] != got[k]) {
                return diverge(idx, "batched pipeline: vm metric " +
                    want[k].first + ": scalar=" +
                    std::to_string(want[k].second) + " batched=" +
                    std::to_string(got[k].second));
            }
        }
        if (want.size() != got.size()) {
            return diverge(idx,
                "batched pipeline: vm metric sets differ");
        }
        return std::nullopt;
    }

    std::size_t batch_;
    fault::FaultInjector scalarInj_;
    fault::FaultInjector batchInj_;
    bool linux_;
    std::unique_ptr<VirtualMemory> scalarVm_;
    std::unique_ptr<VirtualMemory> batchVm_;
    std::vector<PageTouch> pending_;
    std::vector<Pfn> expected_;
    std::vector<Pfn> got_;
};

/**
 * Shadow replica for iceberg traces: finds buffer into blocks served
 * by findMany, which must agree pointer-for-pointer — and in probe
 * accounting — with scalar find() on the same table. Mutations flush
 * the pipeline first, exactly like the VM shadow.
 */
class IcebergBatchShadow
{
  public:
    IcebergBatchShadow(const Trace &t, unsigned batch)
        : config_{t.cfgUint("buckets", 8),
                  static_cast<unsigned>(t.cfgUint("front", 4)),
                  static_cast<unsigned>(t.cfgUint("back", 2)),
                  static_cast<unsigned>(t.cfgUint("d", 2)),
                  t.cfgUint("seed", 1)},
          table_(config_), pseed_(t.cfgUint("pseed", 7)),
          batch_(std::max(batch, 2u))
    {
        pending_.reserve(batch_);
    }

    MaybeDivergence
    mirror(const TraceOp &op, std::size_t idx)
    {
        const std::uint64_t key = op.arg(0);
        switch (op.kind) {
        case 'f':
            pending_.push_back(key);
            if (pending_.size() >= batch_)
                return drain(idx);
            return std::nullopt;
        case 'i':
            if (MaybeDivergence bad = drain(idx))
                return bad;
            table_.insert(key, mix(pseed_, key, 0x1CEBE26));
            return std::nullopt;
        case 'e':
            if (MaybeDivergence bad = drain(idx))
                return bad;
            table_.erase(key);
            return std::nullopt;
        default:
            return std::nullopt;
        }
    }

    MaybeDivergence finish(std::size_t idx) { return drain(idx); }

  private:
    MaybeDivergence
    drain(std::size_t idx)
    {
        if (pending_.empty())
            return std::nullopt;
        const auto &table = std::as_const(table_);
        table_.resetProbeCounters();
        std::vector<const std::uint64_t *> scalar(pending_.size());
        for (std::size_t k = 0; k < pending_.size(); ++k)
            scalar[k] = table.find(pending_[k]);
        const auto want = table_.probeCounters();
        table_.resetProbeCounters();
        std::vector<const std::uint64_t *> batched(pending_.size());
        table.findMany(pending_, batched.data());
        const auto got = table_.probeCounters();
        for (std::size_t k = 0; k < pending_.size(); ++k) {
            if (scalar[k] != batched[k]) {
                return diverge(idx, "batched pipeline: iceberg "
                    "findMany of key " +
                    std::to_string(pending_[k]) +
                    " disagrees with find");
            }
        }
        if (got.wordReads != want.wordReads ||
                got.keyCompares != want.keyCompares) {
            return diverge(idx, "batched pipeline: iceberg findMany "
                "probe accounting diverges from scalar find: words " +
                std::to_string(got.wordReads) + " vs " +
                std::to_string(want.wordReads) + ", compares " +
                std::to_string(got.keyCompares) + " vs " +
                std::to_string(want.keyCompares));
        }
        pending_.clear();
        return std::nullopt;
    }

    IcebergConfig config_;
    IcebergTable<std::uint64_t> table_;
    std::uint64_t pseed_;
    std::size_t batch_;
    std::vector<std::uint64_t> pending_;
};

// ---------------------------------------------- sharded VM harness

/**
 * Differential harness for the sharded multi-tenant engine
 * (DESIGN.md §17). The engine under test is a ShardedMosaicVm; the
 * mirror independently replays the routing, work-stealing, and
 * adoption protocol over its own per-shard scalar MosaicVms — built
 * from ShardedMosaicVm::shardConfig with an identically seeded fault
 * injector — and every op must land on the same global frame. With
 * one shard a plain scalar MosaicVm is additionally locked in step,
 * proving the engine degenerates to MosaicVm over the whole corpus.
 * Deep checkpoints run the whole-machine conservation oracle and a
 * field-for-field per-shard state comparison.
 */
class ShardHarness
{
  public:
    ShardHarness(const Trace &t, const fault::FaultPlan *plan,
                 std::uint64_t iseed, fault::FaultInjector *faults)
        : deep_(t.cfgUint("deep", 512)),
          mirrorInj_(plan, iseed), scalarInj_(plan, iseed)
    {
        ShardedVmConfig cfg;
        cfg.base = mosaicVmCfgFromTrace(t, faults);
        cfg.shards = t.cfgUint("shards", 1);
        locMode_ = cfg.base.sharing == SharingMode::LocationId;
        arity_ = cfg.base.arity;
        log2Arity_ = ceilLog2(arity_);
        shards_ = cfg.shards;
        part_ = PoolPartition::split(cfg.base.geometry, cfg.shards);
        stealEnabled_ = cfg.shards > 1 && !locMode_ &&
                        cfg.base.policy != EvictionPolicy::ShrunkenCache;
        vm_ = std::make_unique<ShardedMosaicVm>(cfg);

        ShardedVmConfig mcfg = cfg;
        mcfg.base.faults = plan->empty() ? nullptr : &mirrorInj_;
        for (std::size_t s = 0; s < shards_; ++s) {
            mirror_.push_back(std::make_unique<MosaicVm>(
                ShardedMosaicVm::shardConfig(mcfg, s)));
        }
        if (shards_ == 1) {
            MosaicVmConfig scfg = cfg.base;
            scfg.faults = plan->empty() ? nullptr : &scalarInj_;
            scalar_ = std::make_unique<MosaicVm>(scfg);
        }
    }

    MaybeDivergence
    apply(const TraceOp &op, std::size_t idx, bool *applied, Digest &dg)
    {
        *applied = true;
        MaybeDivergence bad;
        switch (op.kind) {
        case 't':
            bad = shardTouch(op, idx, dg);
            break;
        case 'u':
            bad = shardUnmap(op, idx, dg);
            break;
        case 's':
            bad = shardShare(op, idx, applied, dg);
            break;
        default:
            *applied = false;
            return std::nullopt;
        }
        if (bad || !*applied)
            return bad;
        if (MaybeDivergence c = compareCounters(idx))
            return c;
        if (deep_ > 0 && (idx + 1) % deep_ == 0)
            return deepCheck(idx);
        return std::nullopt;
    }

  private:
    // ------------------------------------------------ mirror engine
    //
    // An independent replay of the sharded engine's routing layer:
    // same protocol, separately written state, driven only through
    // the scalar MosaicVm public API.

    std::uint64_t
    routeKey(Asid asid, Vpn vpn) const
    {
        return locMode_
            ? (std::uint64_t{asid} << 48) | (vpn >> log2Arity_)
            : packPageId(PageId{asid, vpn});
    }

    std::size_t
    mirrorRoute(Asid asid, Vpn vpn) const
    {
        const auto it = mforward_.find(routeKey(asid, vpn));
        if (it != mforward_.end())
            return it->second;
        return shardRoute(asid, static_cast<std::uint32_t>(shards_));
    }

    bool
    mirrorWouldSteal(std::size_t s, Asid asid, Vpn vpn)
    {
        MosaicVm &vm = *mirror_[s];
        if (vm.frameTable().usedFrames() < vm.numFrames())
            return false;
        if (vm.pageTable(asid).walk(vpn).present)
            return false;
        const std::uint64_t key = packPageId(PageId{asid, vpn});
        if (vm.swapDevice().contains(key))
            return false;
        const Tick h = vm.horizon();
        const CandidateSet cand = vm.allocator().mapper().candidates(key);
        return !vm.allocator()
                    .place(cand, vm.frameTable(),
                           [h](const Frame &f) {
                               return f.lastAccess < h;
                           })
                    .has_value();
    }

    std::optional<std::size_t>
    mirrorPickDonor(std::size_t home, Asid asid, Vpn vpn) const
    {
        std::size_t best = shards_;
        std::size_t best_free = 0;
        for (std::size_t d = 0; d < shards_; ++d) {
            if (d == home)
                continue;
            const MosaicVm &vm = *mirror_[d];
            const std::size_t free =
                vm.numFrames() - vm.frameTable().usedFrames();
            if (free > best_free) {
                best_free = free;
                best = d;
            }
        }
        if (best == shards_ || best_free == 0)
            return std::nullopt;
        const MosaicVm &donor = *mirror_[best];
        const Tick h = donor.horizon();
        const CandidateSet cand = donor.allocator().mapper().candidates(
            packPageId(PageId{asid, vpn}));
        if (!donor.allocator()
                 .place(cand, donor.frameTable(),
                        [h](const Frame &f) {
                            return f.lastAccess < h;
                        })
                 .has_value())
            return std::nullopt;
        return best;
    }

    Pfn
    mirrorTouch(Asid asid, Vpn vpn, bool write)
    {
        const std::size_t s = mirrorRoute(asid, vpn);
        if (stealEnabled_ && mirrorWouldSteal(s, asid, vpn)) {
            if (const std::optional<std::size_t> donor =
                    mirrorPickDonor(s, asid, vpn)) {
                const Pfn local = mirror_[*donor]->touch(asid, vpn, write);
                mforward_[packPageId(PageId{asid, vpn})] =
                    static_cast<std::uint32_t>(*donor);
                ++msteals_;
                return part_.toGlobal(*donor, local);
            }
        }
        return part_.toGlobal(s, mirror_[s]->touch(asid, vpn, write));
    }

    void
    mirrorUnmap(Asid asid, Vpn vpn, std::size_t npages)
    {
        const std::uint64_t arity = std::uint64_t{1} << log2Arity_;
        const auto flush = [&](std::size_t begin, std::size_t end,
                               std::size_t s) {
            mirror_[s]->unmapRange(asid, vpn + begin, end - begin);
            if (!locMode_) {
                for (std::size_t j = begin; j < end; ++j)
                    mforward_.erase(packPageId(PageId{asid, vpn + j}));
            }
        };
        std::size_t run_start = 0;
        std::size_t run_shard = mirrorRoute(asid, vpn);
        std::size_t i = 0;
        while (i < npages) {
            const std::size_t unit_end = locMode_
                ? std::min(npages,
                           i + (arity - ((vpn + i) & (arity - 1))))
                : i + 1;
            i = unit_end;
            if (i >= npages)
                break;
            const std::size_t s = mirrorRoute(asid, vpn + i);
            if (s != run_shard) {
                flush(run_start, i, run_shard);
                run_start = i;
                run_shard = s;
            }
        }
        flush(run_start, npages, run_shard);
    }

    void
    mirrorShare(Asid sa, Vpn sv, Asid da, Vpn dv, std::size_t n)
    {
        for (std::size_t i = 0; i < n; i += arity_) {
            const std::size_t owner = mirrorRoute(sa, sv + i);
            const std::uint64_t dkey = routeKey(da, dv + i);
            if (owner !=
                    shardRoute(da, static_cast<std::uint32_t>(shards_)))
                mforward_[dkey] = static_cast<std::uint32_t>(owner);
            else
                mforward_.erase(dkey);
            mirror_[owner]->shareRange(sa, sv + i, da, dv + i, arity_);
        }
    }

    // --------------------------------------------------------- ops

    MaybeDivergence
    shardTouch(const TraceOp &op, std::size_t idx, Digest &dg)
    {
        const Asid asid = static_cast<Asid>(op.arg(0));
        const Vpn vpn = op.arg(1);
        const bool write = op.arg(2) != 0;
        const Pfn got = vm_->touch(asid, vpn, write);
        dg.mix('t');
        dg.mix(got);
        const Pfn want = mirrorTouch(asid, vpn, write);
        if (got != want) {
            return diverge(idx, "sharded touch " + pageStr(asid, vpn) +
                ": engine frame " + std::to_string(got) +
                " != mirror frame " + std::to_string(want));
        }
        if (got >= vm_->numFrames()) {
            return diverge(idx, "sharded touch " + pageStr(asid, vpn) +
                ": frame outside the global pool");
        }
        if (scalar_) {
            const Pfn sp = scalar_->touch(asid, vpn, write);
            if (sp != got) {
                return diverge(idx, "one-shard touch " +
                    pageStr(asid, vpn) + ": engine frame " +
                    std::to_string(got) + " != scalar MosaicVm frame " +
                    std::to_string(sp));
            }
        }
        return std::nullopt;
    }

    MaybeDivergence
    shardUnmap(const TraceOp &op, std::size_t idx, Digest &dg)
    {
        const Asid asid = static_cast<Asid>(op.arg(0));
        const Vpn vpn = op.arg(1);
        const std::size_t n = op.arg(2);
        vm_->unmapRange(asid, vpn, n);
        mirrorUnmap(asid, vpn, n);
        if (scalar_)
            scalar_->unmapRange(asid, vpn, n);
        dg.mix('u');
        dg.mix(asid);
        dg.mix(vpn);
        dg.mix(n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t s = 0; s < shards_; ++s) {
                if (vm_->shard(s).pageTable(asid).walk(vpn + i).present) {
                    return diverge(idx, "sharded unmap left " +
                        pageStr(asid, vpn + i) + " mapped at shard " +
                        std::to_string(s));
                }
            }
        }
        return std::nullopt;
    }

    MaybeDivergence
    shardShare(const TraceOp &op, std::size_t idx, bool *applied,
               Digest &dg)
    {
        const Asid sa = static_cast<Asid>(op.arg(0));
        const Vpn sv = op.arg(1);
        const Asid da = static_cast<Asid>(op.arg(2));
        const Vpn dv = op.arg(3);
        const std::size_t n = op.arg(4);

        // Deterministic validity rules (mirrors VmHarness): the skip
        // decision depends only on prior applied ops, so every
        // subsequence of a trace replays identically. The
        // destination-unbound probe is route-aware — the engine's own
        // precondition for posting an adoption.
        bool valid = locMode_ && sa != da && n > 0 && n % arity_ == 0 &&
                     (sv & (arity_ - 1)) == 0 && (dv & (arity_ - 1)) == 0;
        for (std::size_t i = 0; valid && i < n; i += arity_) {
            if (vm_->hasLocationBinding(da, dv + i))
                valid = false;
        }
        if (!valid) {
            *applied = false;
            return std::nullopt;
        }
        vm_->shareRange(sa, sv, da, dv, n);
        mirrorShare(sa, sv, da, dv, n);
        if (scalar_)
            scalar_->shareRange(sa, sv, da, dv, n);
        dg.mix('s');
        dg.mix(mix(sa, sv, da, dv));

        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t owner = vm_->routeOf(sa, sv + i);
            const MosaicWalkResult src =
                vm_->shard(owner).pageTable(sa).walk(sv + i);
            const MosaicWalkResult dst =
                vm_->shard(owner).pageTable(da).walk(dv + i);
            if (src.present != dst.present ||
                    (src.present && src.cpfn != dst.cpfn)) {
                return diverge(idx, "sharded share: destination "
                    "mapping of " + pageStr(da, dv + i) +
                    " does not mirror the source at the owner shard");
            }
        }
        if (!vm_->hasLocationBinding(da, dv)) {
            return diverge(idx, "sharded share left the destination "
                "ToC unbound");
        }
        return std::nullopt;
    }

    // ------------------------------------------------------ checks

    MaybeDivergence
    compareCounters(std::size_t idx)
    {
        const ShardCounters &c = vm_->counters();
        if (c.steals != msteals_) {
            return diverge(idx, "sharded steal count: engine " +
                std::to_string(c.steals) + " != mirror " +
                std::to_string(msteals_));
        }
        if (c.msgsPosted != c.msgsDrained) {
            return diverge(idx, "sharded adoption mailboxes not fully "
                "drained between ops");
        }
        if (vm_->forwardEntries() != mforward_.size()) {
            return diverge(idx, "sharded forward map size: engine " +
                std::to_string(vm_->forwardEntries()) + " != mirror " +
                std::to_string(mforward_.size()));
        }
        return std::nullopt;
    }

    MaybeDivergence
    deepCheck(std::size_t idx)
    {
        if (const std::optional<std::string> bad =
                checkShardConservation(*vm_)) {
            return diverge(idx, "sharded conservation: " + *bad);
        }
        MaybeDivergence bad;
        vm_->forEachForward(
            [&](std::uint64_t key, std::uint32_t target) {
                if (bad)
                    return;
                const auto it = mforward_.find(key);
                if (it == mforward_.end() || it->second != target) {
                    bad = diverge(idx, "sharded forward entry for key " +
                        std::to_string(key) +
                        " disagrees with the mirror");
                }
            });
        if (bad)
            return bad;
        for (std::size_t s = 0; s < shards_; ++s) {
            if (MaybeDivergence d =
                    compareVms(idx, vm_->shard(s), *mirror_[s],
                               "shard " + std::to_string(s)))
                return d;
        }
        if (scalar_) {
            if (MaybeDivergence d =
                    compareVms(idx, vm_->shard(0), *scalar_,
                               "one-shard scalar"))
                return d;
        }
        return std::nullopt;
    }

    static MaybeDivergence
    compareVms(std::size_t idx, const MosaicVm &a, const MosaicVm &b,
               const std::string &what)
    {
        const VmStats &x = a.stats();
        const VmStats &y = b.stats();
        if (x.minorFaults != y.minorFaults ||
                x.majorFaults != y.majorFaults ||
                x.swapIns != y.swapIns || x.swapOuts != y.swapOuts ||
                x.conflicts != y.conflicts ||
                x.ghostEvictions != y.ghostEvictions ||
                x.ghostRescues != y.ghostRescues) {
            return diverge(idx, "sharded deep: " + what +
                " stat counters disagree with the replica");
        }
        if (a.residentPages() != b.residentPages() ||
                a.ghostPages() != b.ghostPages() ||
                a.horizon() != b.horizon() || a.now() != b.now()) {
            return diverge(idx, "sharded deep: " + what +
                " residency/clock state disagrees with the replica");
        }
        if (a.locationBindings() != b.locationBindings() ||
                a.locationUsers() != b.locationUsers()) {
            return diverge(idx, "sharded deep: " + what +
                " location-ID population disagrees with the replica");
        }
        return std::nullopt;
    }

    std::size_t deep_;
    fault::FaultInjector mirrorInj_;
    fault::FaultInjector scalarInj_;
    bool locMode_ = false;
    unsigned arity_ = 1;
    unsigned log2Arity_ = 0;
    std::size_t shards_ = 1;
    PoolPartition part_;
    bool stealEnabled_ = false;
    std::unique_ptr<ShardedMosaicVm> vm_;
    std::vector<std::unique_ptr<MosaicVm>> mirror_;
    std::unique_ptr<MosaicVm> scalar_;
    std::map<std::uint64_t, std::uint32_t> mforward_;
    std::uint64_t msteals_ = 0;
};

} // namespace

// -------------------------------------------------------- entry points

FuzzResult
runTrace(const Trace &trace)
{
    return runTrace(trace, 0);
}

FuzzResult
runTrace(const Trace &trace, unsigned batch)
{
    FuzzResult res;
    Digest dg;

    // One injector per trace run, seeded from the trace itself, so
    // injection decisions are a pure function of (plan, trace) —
    // thread-count and machine invariant, like every other fuzz
    // outcome. With MOSAIC_FAULTS unset the plan is empty and a null
    // pointer reaches the harnesses: zero behavior change.
    const fault::FaultPlan plan = fault::FaultPlan::fromEnv();
    const std::uint64_t iseed = mix(
        fault::hashString(trace.component), trace.cfgUint("pseed", 7));
    fault::FaultInjector injector(&plan, iseed);
    fault::FaultInjector *faults = plan.empty() ? nullptr : &injector;

    // Every op the harness applies is also mirrored into the batched
    // pipeline shadow (when batch > 1), which flags any scalar /
    // batched disagreement as a divergence. The primary path — and
    // therefore the digest — is byte-identical either way.
    const auto drive = [&](auto &harness, auto *shadow) {
        for (std::size_t i = 0; i < trace.ops.size(); ++i) {
            bool applied = false;
            MaybeDivergence bad =
                harness.apply(trace.ops[i], i, &applied, dg);
            if (applied)
                ++res.opsApplied;
            if (!bad && applied && shadow != nullptr)
                bad = shadow->mirror(trace.ops[i], i);
            if (bad) {
                res.divergence = std::move(bad);
                return;
            }
        }
        if (shadow != nullptr) {
            if (MaybeDivergence bad = shadow->finish(trace.ops.size()))
                res.divergence = std::move(bad);
        }
    };

    if (trace.component == "iceberg") {
        IcebergHarness h(trace, faults);
        std::unique_ptr<IcebergBatchShadow> shadow;
        if (batch > 1)
            shadow = std::make_unique<IcebergBatchShadow>(trace, batch);
        drive(h, shadow.get());
    } else if (trace.component == "tlb") {
        // accessBatch's apply loop is the scalar access path itself;
        // there is no separate TLB engine to shadow.
        if (designKind(trace.cfgValue("kind", "vanilla"))) {
            DesignHarness h(trace);
            drive(h, static_cast<VmBatchShadow *>(nullptr));
        } else {
            TlbHarness h(trace);
            drive(h, static_cast<VmBatchShadow *>(nullptr));
        }
    } else if (trace.component == "vm") {
        VmHarness h(trace, faults);
        std::unique_ptr<VmBatchShadow> shadow;
        if (batch > 1) {
            shadow = std::make_unique<VmBatchShadow>(trace, batch,
                                                     &plan, iseed);
        }
        drive(h, shadow.get());
    } else if (trace.component == "vm-shard") {
        // The sharded engine's batched pipeline is covered by its own
        // tier-1 tests; like tlb, the batch knob changes nothing here,
        // so batched corpus sweeps reproduce these digests verbatim.
        ShardHarness h(trace, &plan, iseed, faults);
        drive(h, static_cast<VmBatchShadow *>(nullptr));
    } else {
        panic("fuzzer: unknown component '" + trace.component + "'");
    }
    res.faultsInjected = injector.totalFired();
    // Fold the injected-fault count into the digest only when a plan
    // is active: fault-free digests stay byte-identical to pre-PR.
    if (faults != nullptr)
        dg.mix(res.faultsInjected);
    res.digest = dg.h;
    return res;
}

Trace
shrinkTrace(const Trace &trace, std::size_t maxRuns)
{
    std::size_t runs = 0;
    const auto diverges = [&](const Trace &t) {
        ++runs;
        return runTrace(t).divergence.has_value();
    };

    if (!diverges(trace))
        return trace;

    Trace current = trace;
    // Everything after the first divergence is dead weight.
    const FuzzResult first = runTrace(current);
    ++runs;
    if (first.divergence &&
            first.divergence->opIndex + 1 < current.ops.size()) {
        current.ops.resize(first.divergence->opIndex + 1);
    }

    std::size_t chunk = std::max<std::size_t>(1, current.ops.size() / 2);
    while (runs < maxRuns) {
        bool removedAny = false;
        std::size_t start = 0;
        while (start < current.ops.size() && runs < maxRuns) {
            Trace candidate = current;
            const std::size_t end =
                std::min(current.ops.size(), start + chunk);
            candidate.ops.erase(
                candidate.ops.begin() +
                    static_cast<std::ptrdiff_t>(start),
                candidate.ops.begin() + static_cast<std::ptrdiff_t>(end));
            if (!candidate.ops.empty() && diverges(candidate)) {
                current = std::move(candidate);
                removedAny = true;
            } else {
                start = end;
            }
        }
        if (chunk == 1) {
            if (!removedAny)
                break;
        } else {
            chunk = std::max<std::size_t>(1, chunk / 2);
        }
    }
    return current;
}

// ---------------------------------------------------------- generator

namespace
{

Trace
generateIceberg(Rng &rng, std::size_t numOps)
{
    Trace t;
    t.component = "iceberg";
    struct Shape
    {
        unsigned f, b, d;
    };
    static constexpr Shape shapes[] = {{4, 2, 2}, {8, 3, 3}, {56, 8, 6}};
    const Shape shape = shapes[rng.pickWeighted({0.4, 0.4, 0.2})];
    const std::uint64_t buckets = shape.d + 1 + rng.below(6);
    t.setCfgUint("buckets", buckets);
    t.setCfgUint("front", shape.f);
    t.setCfgUint("back", shape.b);
    t.setCfgUint("d", shape.d);
    t.setCfgUint("seed", rng());
    t.setCfgUint("pseed", rng());
    t.setCfgUint("deep", 256);
    const std::uint64_t capacity = buckets * (shape.f + shape.b);
    const std::uint64_t universe =
        std::max<std::uint64_t>(8, capacity * 13 / 10);
    for (std::size_t i = 0; i < numOps; ++i) {
        TraceOp op;
        static constexpr char kinds[] = {'i', 'e', 'f'};
        op.kind = kinds[rng.pickWeighted({0.55, 0.30, 0.15})];
        op.nargs = 1;
        op.args[0] = rng.below(universe);
        t.ops.push_back(op);
    }
    return t;
}

Trace
generateTlb(Rng &rng, std::size_t numOps)
{
    Trace t;
    t.component = "tlb";
    static constexpr const char *kinds[] = {"vanilla", "mosaic",
                                            "coalesced", "perforated"};
    const unsigned kind = static_cast<unsigned>(rng.below(4));
    t.setCfg("kind", kinds[kind]);
    static constexpr unsigned entryOptions[] = {16, 32, 64};
    const unsigned entries = entryOptions[rng.below(3)];
    const unsigned wayOptions[] = {1, 2, 4, entries};
    const unsigned ways = wayOptions[rng.below(4)];
    t.setCfgUint("entries", entries);
    t.setCfgUint("ways", ways);
    static constexpr unsigned arityOptions[] = {2, 4, 8};
    t.setCfgUint("arity", arityOptions[rng.below(3)]);
    t.setCfgUint("pseed", rng());
    const std::uint64_t numAsids = 1 + rng.below(3);
    const std::uint64_t universe = std::uint64_t{entries} * 8;
    for (std::size_t i = 0; i < numOps; ++i) {
        TraceOp op;
        switch (kind) {
        case 0: // vanilla
            op.kind = "lif"[rng.pickWeighted({0.85, 0.09, 0.06})];
            break;
        case 1: // mosaic
            op.kind = "lcief"[rng.pickWeighted(
                {0.70, 0.12, 0.08, 0.06, 0.04})];
            break;
        case 2: // coalesced
            op.kind = "li"[rng.pickWeighted({0.9, 0.1})];
            break;
        default: // perforated
            op.kind = 'l';
        }
        op.nargs = 2;
        op.args[0] = 1 + rng.below(numAsids);
        op.args[1] = rng.below(universe);
        t.ops.push_back(op);
    }
    return t;
}

/**
 * Traces for the registry-built designs ("tlb-stride" / "tlb-pwc" /
 * "tlb-range" pseudo-components). Kept out of generateTlb so the
 * existing "tlb" rng stream — and every pinned golden digest derived
 * from it — is untouched. Accesses follow a drifting strided cursor
 * most of the time (the pattern a stride prefetcher and a PWC reward)
 * with random jumps mixed in to break the runs.
 */
Trace
generateDesignTlb(Rng &rng, std::size_t numOps, const char *kind)
{
    Trace t;
    t.component = "tlb";
    t.setCfg("kind", kind);
    const bool range = std::string(kind) == "range";
    if (!range) {
        static constexpr unsigned entryOptions[] = {16, 32, 64};
        const unsigned entries = entryOptions[rng.below(3)];
        const unsigned wayOptions[] = {1, 2, 4, entries};
        t.setCfgUint("entries", entries);
        t.setCfgUint("ways", wayOptions[rng.below(4)]);
        t.setCfg("base", rng.chance(0.5) ? "mosaic" : "vanilla");
        static constexpr unsigned arityOptions[] = {2, 4, 8};
        t.setCfgUint("arity", arityOptions[rng.below(3)]);
    }
    if (std::string(kind) == "stride") {
        t.setCfg("mode", rng.chance(0.5) ? "arbitrary" : "fixed");
        t.setCfgUint("degree", 1 + rng.below(4));
    } else if (std::string(kind) == "pwc") {
        t.setCfgUint("l1", 4u << rng.below(3));
        t.setCfgUint("l2", 2u << rng.below(3));
    } else if (range) {
        t.setCfgUint("ranges", 4 + rng.below(28));
        static constexpr unsigned runOptions[] = {8, 64, 512};
        t.setCfgUint("maxrun", runOptions[rng.below(3)]);
    }
    t.setCfgUint("pseed", rng());

    const std::uint64_t numAsids = 1 + rng.below(3);
    const std::uint64_t universe = 512;
    std::uint64_t cursor = rng.below(universe);
    std::uint64_t stride = 1 + rng.below(4);
    for (std::size_t i = 0; i < numOps; ++i) {
        TraceOp op;
        op.kind = "lif"[rng.pickWeighted({0.86, 0.08, 0.06})];
        op.nargs = 2;
        op.args[0] = 1 + rng.below(numAsids);
        if (op.kind == 'l') {
            if (rng.chance(0.65)) {
                cursor = (cursor + stride) % universe;
            } else if (rng.chance(0.4)) {
                cursor = rng.below(universe);
                stride = 1 + rng.below(4);
            } else {
                op.args[1] = rng.below(universe);
                t.ops.push_back(op);
                continue;
            }
            op.args[1] = cursor;
        } else {
            op.args[1] = rng.below(universe);
        }
        t.ops.push_back(op);
    }
    return t;
}

Trace
generateLinuxVm(Rng &rng, std::size_t numOps)
{
    Trace t;
    t.component = "vm";
    t.setCfg("kind", "linux");
    const std::uint64_t frames = 96 + rng.below(160);
    t.setCfgUint("frames", frames);
    t.setCfgUint("watermark_ppm",
                 rng.chance(0.5) ? 8000 : 1000 + rng.below(30000));
    static constexpr unsigned batches[] = {1, 8, 32};
    t.setCfgUint("batch", batches[rng.below(3)]);
    t.setCfgUint("deep", 512);
    const std::uint64_t numAsids = 1 + rng.below(3);
    const std::uint64_t universe = frames * (120 + rng.below(200)) / 100;
    for (std::size_t i = 0; i < numOps; ++i) {
        TraceOp op;
        const Asid asid = static_cast<Asid>(1 + rng.below(numAsids));
        if (rng.chance(0.85)) {
            op.kind = 't';
            op.nargs = 3;
            op.args[0] = asid;
            op.args[1] = rng.chance(0.5)
                ? rng.below(std::max<std::uint64_t>(1, universe / 4))
                : rng.below(universe);
            op.args[2] = rng.chance(0.35) ? 1 : 0;
        } else {
            op.kind = 'u';
            op.nargs = 3;
            op.args[0] = asid;
            op.args[1] = rng.below(universe);
            op.args[2] = 1 + rng.below(8);
        }
        t.ops.push_back(op);
    }
    return t;
}

Trace
generateMosaicVm(Rng &rng, std::size_t numOps)
{
    Trace t;
    t.component = "vm";
    t.setCfg("kind", "mosaic");
    struct Shape
    {
        unsigned f, b, d;
    };
    static constexpr Shape shapes[] = {{6, 2, 2}, {12, 4, 3}, {56, 8, 6}};
    const Shape shape = shapes[rng.pickWeighted({0.45, 0.35, 0.2})];
    const std::uint64_t buckets = shape.d + 1 + rng.below(4);
    t.setCfgUint("buckets", buckets);
    t.setCfgUint("front", shape.f);
    t.setCfgUint("back", shape.b);
    t.setCfgUint("d", shape.d);
    static constexpr unsigned arities[] = {1, 2, 4, 8};
    const unsigned arity = arities[rng.below(4)];
    t.setCfgUint("arity", arity);
    const bool locMode = rng.chance(0.35);
    t.setCfg("sharing", locMode ? "locid" : "pageid");
    static constexpr const char *policies[] = {"horizon", "local",
                                               "shrunken"};
    t.setCfg("policy", policies[rng.pickWeighted({0.6, 0.2, 0.2})]);
    t.setCfgUint("shrink_ppm", 20000);
    t.setCfgUint("seed", rng());
    t.setCfgUint("hashseed", rng());
    t.setCfgUint("deep", 512);

    const std::uint64_t frames = buckets * (shape.f + shape.b);
    const std::uint64_t numAsids = 1 + rng.below(3);
    const std::uint64_t numTocs = std::max<std::uint64_t>(
        2, frames * (120 + rng.below(180)) / 100 / arity / numAsids);
    const std::uint64_t universe = numTocs * arity;

    // Track which ToCs shares have probably bound, to emit mostly
    // valid share ops (the harness skips the rest deterministically).
    std::set<std::pair<Asid, std::uint64_t>> bound;

    for (std::size_t i = 0; i < numOps; ++i) {
        TraceOp op;
        const double shareWeight =
            (locMode && numAsids >= 2) ? 0.06 : 0.0;
        const unsigned which =
            rng.pickWeighted({0.82, 0.12, shareWeight});
        const Asid asid = static_cast<Asid>(1 + rng.below(numAsids));
        if (which == 0) {
            op.kind = 't';
            op.nargs = 3;
            const std::uint64_t mvpn = rng.chance(0.5)
                ? rng.below(std::max<std::uint64_t>(1, numTocs / 4))
                : rng.below(numTocs);
            op.args[0] = asid;
            op.args[1] = mvpn * arity + rng.below(arity);
            op.args[2] = rng.chance(0.35) ? 1 : 0;
            if (locMode)
                bound.insert({asid, mvpn});
        } else if (which == 1) {
            op.kind = 'u';
            op.nargs = 3;
            op.args[0] = asid;
            op.args[1] = rng.below(universe);
            op.args[2] = 1 + rng.below(2 * std::uint64_t{arity});
        } else {
            op.kind = 's';
            op.nargs = 5;
            Asid da = static_cast<Asid>(1 + rng.below(numAsids));
            while (da == asid)
                da = static_cast<Asid>(1 + rng.below(numAsids));
            const std::uint64_t srcMvpn = rng.below(numTocs);
            std::uint64_t dstMvpn = rng.below(numTocs);
            for (unsigned tries = 0;
                 tries < 8 && bound.contains({da, dstMvpn}); ++tries)
                dstMvpn = rng.below(numTocs);
            const std::uint64_t span = 1 + rng.below(2);
            op.args[0] = asid;
            op.args[1] = srcMvpn * arity;
            op.args[2] = da;
            op.args[3] = dstMvpn * arity;
            op.args[4] = span * arity;
            bound.insert({asid, srcMvpn});
            for (std::uint64_t j = 0; j < span; ++j)
                bound.insert({da, dstMvpn + j});
        }
        t.ops.push_back(op);
    }
    return t;
}

/** A tiny sharded machine (DESIGN.md §17): the vm mosaic op mix over
 *  a ShardedMosaicVm, with the bucket count scaled by the shard
 *  count so every slice is a valid per-shard geometry, and enough
 *  ASIDs that the Lemire router spreads tenants across shards. */
Trace
generateShardedVm(Rng &rng, std::size_t numOps)
{
    Trace t;
    t.component = "vm-shard";
    t.setCfg("kind", "mosaic");
    struct Shape
    {
        unsigned f, b, d;
    };
    static constexpr Shape shapes[] = {{6, 2, 2}, {12, 4, 3}};
    const Shape shape = shapes[rng.pickWeighted({0.6, 0.4})];
    static constexpr std::size_t shardCounts[] = {1, 2, 4};
    const std::size_t shards =
        shardCounts[rng.pickWeighted({0.3, 0.35, 0.35})];
    const std::uint64_t buckets =
        shards * (shape.d + 1 + rng.below(4));
    t.setCfgUint("shards", shards);
    t.setCfgUint("buckets", buckets);
    t.setCfgUint("front", shape.f);
    t.setCfgUint("back", shape.b);
    t.setCfgUint("d", shape.d);
    static constexpr unsigned arities[] = {1, 2, 4, 8};
    const unsigned arity = arities[rng.below(4)];
    t.setCfgUint("arity", arity);
    const bool locMode = rng.chance(0.35);
    t.setCfg("sharing", locMode ? "locid" : "pageid");
    static constexpr const char *policies[] = {"horizon", "local",
                                               "shrunken"};
    t.setCfg("policy", policies[rng.pickWeighted({0.6, 0.2, 0.2})]);
    t.setCfgUint("shrink_ppm", 20000);
    t.setCfgUint("seed", rng());
    t.setCfgUint("hashseed", rng());
    t.setCfgUint("deep", 256);

    const std::uint64_t frames = buckets * (shape.f + shape.b);
    const std::uint64_t numAsids = 2 + rng.below(4 * shards);
    const std::uint64_t numTocs = std::max<std::uint64_t>(
        2, frames * (120 + rng.below(180)) / 100 / arity / numAsids);
    const std::uint64_t universe = numTocs * arity;

    std::set<std::pair<Asid, std::uint64_t>> bound;
    for (std::size_t i = 0; i < numOps; ++i) {
        TraceOp op;
        const double shareWeight =
            (locMode && numAsids >= 2) ? 0.06 : 0.0;
        const unsigned which =
            rng.pickWeighted({0.82, 0.12, shareWeight});
        const Asid asid = static_cast<Asid>(1 + rng.below(numAsids));
        if (which == 0) {
            op.kind = 't';
            op.nargs = 3;
            const std::uint64_t mvpn = rng.chance(0.5)
                ? rng.below(std::max<std::uint64_t>(1, numTocs / 4))
                : rng.below(numTocs);
            op.args[0] = asid;
            op.args[1] = mvpn * arity + rng.below(arity);
            op.args[2] = rng.chance(0.35) ? 1 : 0;
            if (locMode)
                bound.insert({asid, mvpn});
        } else if (which == 1) {
            op.kind = 'u';
            op.nargs = 3;
            op.args[0] = asid;
            op.args[1] = rng.below(universe);
            op.args[2] = 1 + rng.below(2 * std::uint64_t{arity});
        } else {
            op.kind = 's';
            op.nargs = 5;
            Asid da = static_cast<Asid>(1 + rng.below(numAsids));
            while (da == asid)
                da = static_cast<Asid>(1 + rng.below(numAsids));
            const std::uint64_t srcMvpn = rng.below(numTocs);
            std::uint64_t dstMvpn = rng.below(numTocs);
            for (unsigned tries = 0;
                 tries < 8 && bound.contains({da, dstMvpn}); ++tries)
                dstMvpn = rng.below(numTocs);
            const std::uint64_t span = 1 + rng.below(2);
            op.args[0] = asid;
            op.args[1] = srcMvpn * arity;
            op.args[2] = da;
            op.args[3] = dstMvpn * arity;
            op.args[4] = span * arity;
            bound.insert({asid, srcMvpn});
            for (std::uint64_t j = 0; j < span; ++j)
                bound.insert({da, dstMvpn + j});
        }
        t.ops.push_back(op);
    }
    return t;
}

/** A tiny randomized instance of one scenario engine (DESIGN.md
 *  §15); the config knobs come from the trace's rng so each seed
 *  exercises a different engine shape. */
std::unique_ptr<Workload>
makeTinyEngine(std::string_view kind, Rng &rng)
{
    if (kind == "warp") {
        WarpConfig c;
        static constexpr unsigned widths[] = {8, 16, 32};
        c.warpWidth = widths[rng.below(3)];
        c.numWarps = 1 + static_cast<unsigned>(rng.below(4));
        c.bufferBytes = (std::uint64_t{256} << 10) << rng.below(3);
        c.laneStrideBytes = rng.chance(0.5) ? 8192 : 4096;
        c.coalesceFactor = 0.25 * static_cast<double>(rng.below(4));
        c.divergenceRate = 0.05 * static_cast<double>(rng.below(3));
        c.numInstructions = 4000;
        c.seed = rng();
        return std::make_unique<WarpGpu>(c);
    }
    if (kind == "kv") {
        KvServerConfig c;
        c.numKeys = std::uint64_t{1024} << rng.below(3);
        c.zipfTheta = 0.6 + 0.1 * static_cast<double>(rng.below(4));
        c.hotKeyFraction = 0.1 + 0.2 * static_cast<double>(rng.below(3));
        c.getFraction = 0.5 + 0.1 * static_cast<double>(rng.below(5));
        c.numOps = 8000;
        c.includeLoadPhase = rng.chance(0.5);
        c.seed = rng();
        return std::make_unique<KvServer>(c);
    }
    if (kind == "session") {
        WebSessionConfig c;
        c.maxSessions = std::uint64_t{64} << rng.below(3);
        c.arrivalEvery = 4 + rng.below(12);
        c.meanLifetimeRequests = 500 * (1 + rng.below(4));
        c.numRequests = 8000;
        c.seed = rng();
        return std::make_unique<WebSession>(c);
    }
    ensure(kind == "scan", "makeTinyEngine: unknown engine kind");
    ScanAnalyticsConfig c;
    c.rowCount = 8000 * (1 + rng.below(3));
    c.numColumns = 1 + static_cast<unsigned>(rng.below(3));
    c.dimRows = 512;
    c.aggBytes = 64 << 10;
    c.lookupEvery = std::uint64_t{16} << rng.below(3);
    c.passes = 1 + static_cast<unsigned>(rng.below(2));
    c.seed = rng();
    return std::make_unique<ScanAnalytics>(c);
}

/**
 * VM trace driven by a scenario engine's real reference stream
 * (DESIGN.md §15): the engine's page stream is folded onto a small
 * mosaic/linux VM universe (modulo keeps stride and locality
 * structure intact), with one engine instance per ASID switched
 * every 256 ops and ~5 % random unmaps so eviction and refill run
 * under the engines' access shapes rather than uniform noise.
 */
Trace
generateWorkloadVm(Rng &rng, std::size_t numOps, std::string_view kind)
{
    Trace t;
    t.component = "vm";
    std::uint64_t universe;
    std::uint64_t unmapSpan = 4;
    if (rng.chance(0.35)) {
        t.setCfg("kind", "linux");
        const std::uint64_t frames = 96 + rng.below(160);
        t.setCfgUint("frames", frames);
        t.setCfgUint("watermark_ppm", 8000);
        static constexpr unsigned batches[] = {1, 8, 32};
        t.setCfgUint("batch", batches[rng.below(3)]);
        t.setCfgUint("deep", 512);
        universe = frames * (120 + rng.below(200)) / 100;
    } else {
        t.setCfg("kind", "mosaic");
        struct Shape
        {
            unsigned f, b, d;
        };
        static constexpr Shape shapes[] = {
            {6, 2, 2}, {12, 4, 3}, {56, 8, 6}};
        const Shape shape = shapes[rng.pickWeighted({0.45, 0.35, 0.2})];
        const std::uint64_t buckets = shape.d + 1 + rng.below(4);
        t.setCfgUint("buckets", buckets);
        t.setCfgUint("front", shape.f);
        t.setCfgUint("back", shape.b);
        t.setCfgUint("d", shape.d);
        static constexpr unsigned arities[] = {1, 2, 4, 8};
        const unsigned arity = arities[rng.below(4)];
        t.setCfgUint("arity", arity);
        t.setCfg("sharing", "pageid");
        static constexpr const char *policies[] = {"horizon", "local",
                                                   "shrunken"};
        t.setCfg("policy", policies[rng.pickWeighted({0.6, 0.2, 0.2})]);
        t.setCfgUint("shrink_ppm", 20000);
        t.setCfgUint("seed", rng());
        t.setCfgUint("hashseed", rng());
        t.setCfgUint("deep", 512);
        const std::uint64_t frames = buckets * (shape.f + shape.b);
        const std::uint64_t numTocs = std::max<std::uint64_t>(
            2, frames * (120 + rng.below(180)) / 100 / arity);
        universe = numTocs * arity;
        unmapSpan = arity;
    }

    const unsigned numAsids = 1 + static_cast<unsigned>(rng.below(2));
    std::vector<std::vector<MemRef>> streams;
    for (unsigned a = 0; a < numAsids; ++a) {
        const auto engine = makeTinyEngine(kind, rng);
        VectorSink sink;
        engine->run(sink);
        streams.push_back(sink.trace());
        ensure(!streams.back().empty(), "engine emitted no accesses");
    }
    std::vector<std::size_t> cursor(numAsids, 0);

    for (std::size_t i = 0; i < numOps; ++i) {
        const unsigned a =
            static_cast<unsigned>((i / 256) % numAsids);
        TraceOp op;
        if (rng.chance(0.05)) {
            op.kind = 'u';
            op.nargs = 3;
            op.args[0] = a + 1;
            op.args[1] = rng.below(universe);
            op.args[2] = 1 + rng.below(2 * unmapSpan);
        } else {
            const std::vector<MemRef> &s = streams[a];
            const MemRef ref = s[cursor[a]];
            cursor[a] = (cursor[a] + 1) % s.size();
            op.kind = 't';
            op.nargs = 3;
            op.args[0] = a + 1;
            op.args[1] = vpnOf(ref.vaddr) % universe;
            op.args[2] = ref.write ? 1 : 0;
        }
        t.ops.push_back(op);
    }
    return t;
}

} // namespace

Trace
generateTrace(const std::string &component, std::uint64_t seed,
              std::size_t numOps)
{
    Rng rng(mix(seed, 0xF0220000 + numOps));
    if (component == "iceberg")
        return generateIceberg(rng, numOps);
    if (component == "tlb")
        return generateTlb(rng, numOps);
    if (component == "tlb-stride")
        return generateDesignTlb(rng, numOps, "stride");
    if (component == "tlb-pwc")
        return generateDesignTlb(rng, numOps, "pwc");
    if (component == "tlb-range")
        return generateDesignTlb(rng, numOps, "range");
    if (component == "vm") {
        if (rng.chance(0.25))
            return generateLinuxVm(rng, numOps);
        return generateMosaicVm(rng, numOps);
    }
    if (component == "vm-shard")
        return generateShardedVm(rng, numOps);
    if (component == "wl-warp")
        return generateWorkloadVm(rng, numOps, "warp");
    if (component == "wl-kv")
        return generateWorkloadVm(rng, numOps, "kv");
    if (component == "wl-session")
        return generateWorkloadVm(rng, numOps, "session");
    if (component == "wl-scan")
        return generateWorkloadVm(rng, numOps, "scan");
    panic("generateTrace: unknown component '" + component + "'");
}

} // namespace mosaic
