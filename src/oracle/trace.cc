#include "oracle/trace.hh"

#include <charconv>
#include <fstream>
#include <sstream>

#include "util/log.hh"

namespace mosaic
{

std::string
Trace::cfgValue(const std::string &key, const std::string &fallback) const
{
    for (const auto &[k, v] : cfg) {
        if (k == key)
            return v;
    }
    return fallback;
}

std::uint64_t
Trace::cfgUint(const std::string &key, std::uint64_t fallback) const
{
    const std::string v = cfgValue(key);
    if (v.empty())
        return fallback;
    std::uint64_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc() || ptr != v.data() + v.size())
        panic("trace: cfg '" + key + "' is not an unsigned integer: '" +
              v + "'");
    return out;
}

void
Trace::setCfg(const std::string &key, const std::string &value)
{
    for (auto &[k, v] : cfg) {
        if (k == key) {
            v = value;
            return;
        }
    }
    cfg.emplace_back(key, value);
}

void
Trace::setCfgUint(const std::string &key, std::uint64_t value)
{
    setCfg(key, std::to_string(value));
}

std::string
serializeTrace(const Trace &trace)
{
    std::ostringstream out;
    out << Trace::magic << '\n';
    out << "component " << trace.component << '\n';
    for (const auto &[k, v] : trace.cfg)
        out << "cfg " << k << ' ' << v << '\n';
    for (const TraceOp &op : trace.ops) {
        out << "op " << op.kind;
        for (unsigned i = 0; i < op.nargs; ++i)
            out << ' ' << op.args[i];
        out << '\n';
    }
    out << "end\n";
    return out.str();
}

Trace
parseTrace(const std::string &text)
{
    std::istringstream in(text);
    std::string line;

    ensure(static_cast<bool>(std::getline(in, line)) &&
               line == Trace::magic,
           "trace: missing or wrong magic line");

    Trace trace;
    bool ended = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string word;
        fields >> word;
        if (word == "end") {
            ended = true;
            break;
        }
        if (word == "component") {
            fields >> trace.component;
            ensure(!trace.component.empty(),
                   "trace: empty component name");
            continue;
        }
        if (word == "cfg") {
            std::string key, value;
            fields >> key >> value;
            if (key.empty() || value.empty())
                panic("trace: malformed cfg line: '" + line + "'");
            trace.cfg.emplace_back(key, value);
            continue;
        }
        if (word == "op") {
            std::string kind;
            fields >> kind;
            if (kind.size() != 1)
                panic("trace: op kind must be one letter: '" + line +
                      "'");
            TraceOp op;
            op.kind = kind[0];
            std::uint64_t arg = 0;
            while (op.nargs < TraceOp::maxArgs && fields >> arg)
                op.args[op.nargs++] = arg;
            if (!fields.eof())
                panic("trace: too many op args: '" + line + "'");
            trace.ops.push_back(op);
            continue;
        }
        panic("trace: unknown line: '" + line + "'");
    }
    ensure(ended, "trace: missing 'end' line");
    ensure(!trace.component.empty(), "trace: missing component line");
    return trace;
}

void
writeTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.good())
        panic("trace: cannot open '" + path + "' for writing");
    out << serializeTrace(trace);
    out.flush();
    if (!out.good())
        panic("trace: write to '" + path + "' failed");
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        panic("trace: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseTrace(buffer.str());
}

} // namespace mosaic
