#include "oracle/trace.hh"

#include <charconv>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/log.hh"

namespace mosaic
{

std::string
Trace::cfgValue(const std::string &key, const std::string &fallback) const
{
    for (const auto &[k, v] : cfg) {
        if (k == key)
            return v;
    }
    return fallback;
}

std::uint64_t
Trace::cfgUint(const std::string &key, std::uint64_t fallback) const
{
    const std::string v = cfgValue(key);
    if (v.empty())
        return fallback;
    std::uint64_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc() || ptr != v.data() + v.size()) {
        // Trace cfg is external input, so a bad value is not a
        // library bug: fatal, not panic.
        fatal("trace: cfg '" + key +
              "' is not an unsigned integer: '" + v + "'");
    }
    return out;
}

void
Trace::setCfg(const std::string &key, const std::string &value)
{
    for (auto &[k, v] : cfg) {
        if (k == key) {
            v = value;
            return;
        }
    }
    cfg.emplace_back(key, value);
}

void
Trace::setCfgUint(const std::string &key, std::uint64_t value)
{
    setCfg(key, std::to_string(value));
}

std::string
serializeTrace(const Trace &trace)
{
    std::ostringstream out;
    out << Trace::magic << '\n';
    out << "component " << trace.component << '\n';
    for (const auto &[k, v] : trace.cfg)
        out << "cfg " << k << ' ' << v << '\n';
    for (const TraceOp &op : trace.ops) {
        out << "op " << op.kind;
        for (unsigned i = 0; i < op.nargs; ++i)
            out << ' ' << op.args[i];
        out << '\n';
    }
    out << "end\n";
    return out.str();
}

Result<Trace>
tryParseTrace(const std::string &text)
{
    std::istringstream in(text);
    std::string line;

    if (!std::getline(in, line) || line != Trace::magic)
        return Status::invalidArgument(
            "trace: missing or wrong magic line");

    Trace trace;
    bool ended = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream fields(line);
        std::string word;
        fields >> word;
        if (word == "end") {
            ended = true;
            break;
        }
        if (word == "component") {
            fields >> trace.component;
            if (trace.component.empty())
                return Status::invalidArgument(
                    "trace: empty component name");
            continue;
        }
        if (word == "cfg") {
            std::string key, value;
            fields >> key >> value;
            if (key.empty() || value.empty())
                return Status::invalidArgument(
                    "trace: malformed cfg line: '" + line + "'");
            trace.cfg.emplace_back(key, value);
            continue;
        }
        if (word == "op") {
            std::string kind;
            fields >> kind;
            if (kind.size() != 1)
                return Status::invalidArgument(
                    "trace: op kind must be one letter: '" + line +
                    "'");
            TraceOp op;
            op.kind = kind[0];
            std::uint64_t arg = 0;
            while (op.nargs < TraceOp::maxArgs && fields >> arg)
                op.args[op.nargs++] = arg;
            if (!fields.eof())
                return Status::invalidArgument(
                    "trace: too many op args: '" + line + "'");
            trace.ops.push_back(op);
            continue;
        }
        return Status::invalidArgument("trace: unknown line: '" +
                                       line + "'");
    }
    // No "end" marker means the file was cut off mid-write:
    // truncation, not malformation.
    if (!ended)
        return Status::dataLoss("trace: missing 'end' line "
                                "(truncated input)");
    if (trace.component.empty())
        return Status::invalidArgument(
            "trace: missing component line");
    return trace;
}

Status
tryWriteTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.good())
        return Status::ioError("trace: cannot open '" + path +
                               "' for writing");
    out << serializeTrace(trace);
    out.flush();
    if (!out.good())
        return Status::ioError("trace: write to '" + path +
                               "' failed");
    return Status();
}

Result<Trace>
tryReadTraceFile(const std::string &path, fault::FaultInjector *faults)
{
    if (faults != nullptr && faults->shouldFail("trace.read"))
        return Status::ioError("trace: injected read error on '" +
                               path + "'");
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return Status::notFound("trace: cannot open '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad())
        return Status::ioError("trace: read from '" + path +
                               "' failed");
    std::string text = buffer.str();
    if (faults != nullptr && faults->shouldFail("trace.corrupt")) {
        // Model a torn write: drop the second half of the file,
        // trimmed back to a line boundary so the damage is pure
        // truncation. The parser then reports DataLoss (missing
        // "end"), exercising the truncation path deterministically.
        text.resize(text.size() / 2);
        const std::size_t nl = text.rfind('\n');
        text.resize(nl == std::string::npos ? 0 : nl + 1);
    }
    return tryParseTrace(text);
}

Trace
parseTrace(const std::string &text)
{
    Result<Trace> parsed = tryParseTrace(text);
    if (!parsed.ok())
        fatal(parsed.status().toString());
    return std::move(parsed.value());
}

void
writeTraceFile(const std::string &path, const Trace &trace)
{
    const Status status = tryWriteTraceFile(path, trace);
    if (!status.ok())
        fatal(status.toString());
}

Trace
readTraceFile(const std::string &path)
{
    Result<Trace> read = tryReadTraceFile(path);
    if (!read.ok())
        fatal(read.status().toString());
    return std::move(read.value());
}

} // namespace mosaic
