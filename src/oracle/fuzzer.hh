/**
 * @file
 * The differential fuzzer: drives a real component (a VM, a TLB
 * variant, or the iceberg table) in lockstep with its oracle model
 * through a deterministic operation sequence, cross-checking state
 * after every operation.
 *
 * Three entry points:
 *  - generateTrace() builds a random but fully deterministic Trace
 *    from (component, seed, numOps);
 *  - runTrace() executes a trace, returning the first divergence (if
 *    any) and a digest of every observable outcome — two runs of the
 *    same trace must produce bit-identical digests, on any machine
 *    and under any MOSAIC_THREADS setting;
 *  - shrinkTrace() delta-debugs a diverging trace down to a minimal
 *    reproducer (every subsequence of a trace is itself a valid
 *    trace, because harnesses deterministically skip ops that are
 *    invalid in the current state).
 *
 * What is checked, per component:
 *  - vm/linux: full lockstep against the bounded OracleVm — fault
 *    kinds, all swap/fault counters, resident set, swap population,
 *    per-frame dirty bits and access times;
 *  - vm/mosaic (PageIdHash): the exact placement rule re-derived from
 *    MosaicAllocator, predicted PFN/victim/horizon/conflict/ghost
 *    accounting per touch, per-frame CPFN round trips, ghost-count
 *    scans, and (under HorizonLru) the live-set == global-LRU-top-L
 *    equivalence against an unbounded OracleVm;
 *  - vm/mosaic (LocationId): a slot-level alias mirror validating
 *    hits, sharer adoption, ghost-rescue accounting, binding
 *    lifetimes (creation, sharing, release-on-death) and swap
 *    population;
 *  - tlb (all variants): lockstep against the recency-list oracle
 *    models — every
 *    lookup result, every stats counter, valid-entry counts, and the
 *    variant extras (sub-entry fills, coalesced coverage, hole
 *    lookups);
 *  - iceberg: predicted insert placement (yard + bucket), slot
 *    stability, size/backyard accounting, per-bucket occupancy, and
 *    full-table sweeps for stray or leaked keys.
 */

#ifndef MOSAIC_ORACLE_FUZZER_HH_
#define MOSAIC_ORACLE_FUZZER_HH_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "oracle/trace.hh"

namespace mosaic
{

/** A disagreement between the real component and its oracle. */
struct FuzzDivergence
{
    /** Index of the trace op whose checks failed. */
    std::size_t opIndex = 0;

    /** Human-readable description of the failed check. */
    std::string message;
};

/** Outcome of executing one trace. */
struct FuzzResult
{
    /** First divergence, or nullopt when the whole trace passed. */
    std::optional<FuzzDivergence> divergence;

    /** FNV-1a digest over every applied op's observable outcomes.
     *  Equal traces must produce equal digests everywhere. */
    std::uint64_t digest = 0;

    /** Ops actually applied (invalid ops are skipped, not counted). */
    std::size_t opsApplied = 0;

    /** Faults injected during the run (0 unless MOSAIC_FAULTS names
     *  a site this trace's component consults). Deterministic like
     *  the digest: same trace + same plan = same count, anywhere. */
    std::uint64_t faultsInjected = 0;
};

/**
 * Execute a trace; stops at the first divergence.
 *
 * When $MOSAIC_FAULTS is set, the run wires a per-trace
 * FaultInjector (seeded from the trace, so thread-count invariant)
 * into the component under test: swap I/O errors and latency spikes,
 * "vm.place" placement failures (recovered by the VM's conflict-
 * recovery hook), and "iceberg.insert" failures (coordinated with
 * the oracle, which then expects the insert to fail). The oracles
 * stay in lockstep under every supported plan — any divergence under
 * injection is a real robustness bug, which is the point of the
 * chaos tests. The digest additionally folds in the injected-fault
 * count when (and only when) a plan is active, so fault-free digests
 * are unchanged.
 */
FuzzResult runTrace(const Trace &trace);

/**
 * Execute a trace with the batched-pipeline shadow (DESIGN.md §13).
 * The primary component/oracle/digest path runs exactly as
 * runTrace(trace) — digests and fault counts are unchanged by
 * construction — while every applied vm op is additionally mirrored
 * into a scalar-driven and a touchBatch-driven VM pair (and iceberg
 * finds through findMany) whose per-op results and full observable
 * state are compared at every flush boundary: block full, any
 * mutating non-touch op, and end of trace. Any mismatch surfaces as
 * a divergence. @p batch <= 1 is the plain scalar run; tlb traces
 * ignore the knob (the batched TLB apply loop is the scalar path
 * itself).
 */
FuzzResult runTrace(const Trace &trace, unsigned batch);

/**
 * Build a deterministic random trace.
 *
 * @param component "vm", "tlb", or "iceberg"; the pseudo-components
 *                  "tlb-stride", "tlb-pwc", and "tlb-range" generate
 *                  "tlb" traces pinned to the registry-built designs
 *                  (strided access patterns, design-specific cfg),
 *                  and "wl-warp"/"wl-kv"/"wl-session"/"wl-scan"
 *                  generate "vm" traces whose touch streams come
 *                  from real scenario-engine runs (DESIGN.md §15)
 *                  folded onto a small VM universe.
 * @param seed stream selector; same (component, seed, numOps) always
 *             yields the same trace.
 * @param numOps operations to generate.
 */
Trace generateTrace(const std::string &component, std::uint64_t seed,
                    std::size_t numOps);

/**
 * Delta-debug a diverging trace to a (1-)minimal reproducer: remove
 * chunks, halving the chunk size down to single ops, keeping any
 * candidate that still diverges. Returns the input unchanged when it
 * does not diverge. @p maxRuns bounds the total re-executions.
 */
Trace shrinkTrace(const Trace &trace, std::size_t maxRuns = 3000);

} // namespace mosaic

#endif // MOSAIC_ORACLE_FUZZER_HH_
