#include "oracle/shard_oracle.hh"

#include <sstream>

namespace mosaic
{

namespace
{

std::optional<std::string>
fail(const std::string &message)
{
    return message;
}

} // namespace

std::optional<std::string>
checkShardConservation(const ShardedMosaicVm &vm, bool deep)
{
    const std::size_t shards = vm.numShards();
    const PoolPartition &part = vm.partition();

    // Partition exactness: the shard slices tile the global pool.
    std::size_t sum_frames = 0;
    for (std::size_t s = 0; s < shards; ++s)
        sum_frames += vm.shard(s).numFrames();
    if (sum_frames != vm.numFrames() ||
            sum_frames != part.numShards * part.framesPerShard) {
        std::ostringstream out;
        out << "shard frame sum " << sum_frames << " != global "
            << vm.numFrames();
        return fail(out.str());
    }

    // Conservation: per-shard counts (recomputed from the frame
    // table when deep) sum to the machine-wide figures.
    std::size_t sum_resident = 0;
    std::size_t sum_ghosts = 0;
    std::size_t sum_bindings = 0;
    std::size_t sum_users = 0;
    for (std::size_t s = 0; s < shards; ++s) {
        const MosaicVm &sv = vm.shard(s);
        if (deep) {
            std::size_t used = 0;
            std::size_t ghosts = 0;
            for (Pfn pfn = 0; pfn < sv.numFrames(); ++pfn) {
                const Frame &f = sv.frameTable().frame(pfn);
                if (!f.used)
                    continue;
                ++used;
                if (f.lastAccess < sv.horizon())
                    ++ghosts;
            }
            if (used != sv.residentPages()) {
                std::ostringstream out;
                out << "shard " << s << " resident count " << used
                    << " != reported " << sv.residentPages();
                return fail(out.str());
            }
            if (ghosts != sv.ghostPages()) {
                std::ostringstream out;
                out << "shard " << s << " ghost count " << ghosts
                    << " != reported " << sv.ghostPages();
                return fail(out.str());
            }
        }
        sum_resident += sv.residentPages();
        sum_ghosts += sv.ghostPages();
        sum_bindings += sv.locationBindings();
        sum_users += sv.locationUsers();
    }
    if (sum_resident != vm.residentPages())
        return fail("resident-page sum != machine residentPages()");
    if (sum_ghosts != vm.ghostPages())
        return fail("ghost-page sum != machine ghostPages()");
    if (sum_bindings != vm.locationBindings())
        return fail("binding sum != machine locationBindings()");
    if (sum_users != vm.locationUsers())
        return fail("location-user sum != machine locationUsers()");
    if (sum_users < sum_bindings)
        return fail("fewer location users than bindings");

    // Stat conservation: an independent fold of the per-shard stats
    // must reproduce the machine aggregate field for field.
    VmStats fold;
    for (std::size_t s = 0; s < shards; ++s) {
        const VmStats &st = vm.shard(s).stats();
        fold.minorFaults += st.minorFaults;
        fold.majorFaults += st.majorFaults;
        fold.swapIns += st.swapIns;
        fold.swapOuts += st.swapOuts;
        fold.conflicts += st.conflicts;
        fold.recoveredConflicts += st.recoveredConflicts;
        fold.ghostEvictions += st.ghostEvictions;
        fold.ghostRescues += st.ghostRescues;
        if (st.firstConflictUtilization >= 0 &&
                (fold.firstConflictUtilization < 0 ||
                 st.firstConflictUtilization <
                     fold.firstConflictUtilization))
            fold.firstConflictUtilization = st.firstConflictUtilization;
        if (st.firstSwapOutUtilization >= 0 &&
                (fold.firstSwapOutUtilization < 0 ||
                 st.firstSwapOutUtilization <
                     fold.firstSwapOutUtilization))
            fold.firstSwapOutUtilization = st.firstSwapOutUtilization;
        fold.steadyUtilization.merge(st.steadyUtilization);
    }
    const VmStats &agg = vm.stats();
    if (fold.minorFaults != agg.minorFaults ||
            fold.majorFaults != agg.majorFaults ||
            fold.swapIns != agg.swapIns ||
            fold.swapOuts != agg.swapOuts ||
            fold.conflicts != agg.conflicts ||
            fold.recoveredConflicts != agg.recoveredConflicts ||
            fold.ghostEvictions != agg.ghostEvictions ||
            fold.ghostRescues != agg.ghostRescues ||
            fold.firstConflictUtilization !=
                agg.firstConflictUtilization ||
            fold.firstSwapOutUtilization !=
                agg.firstSwapOutUtilization ||
            fold.steadyUtilization.count() !=
                agg.steadyUtilization.count() ||
            fold.steadyUtilization.sum() != agg.steadyUtilization.sum())
        return fail("aggregate stats != fold of per-shard stats");

    // Routing validity: forwarding entries target a real shard other
    // than the key's home (entries pointing home are erased, never
    // written).
    std::optional<std::string> bad;
    vm.forEachForward([&](std::uint64_t key, std::uint32_t target) {
        if (bad)
            return;
        const Asid asid = static_cast<Asid>(key >> 48);
        if (target >= shards) {
            bad = "forward entry targets a nonexistent shard";
        } else if (target == vm.homeShard(asid)) {
            std::ostringstream out;
            out << "forward entry for asid " << asid
                << " points at its home shard " << target;
            bad = out.str();
        }
    });
    if (bad)
        return bad;

    // Every resident page's owner must route (forward-aware) to the
    // shard actually holding it — stealing and adoption may move
    // pages off home, but never off the books.
    if (deep) {
        for (std::size_t s = 0; s < shards; ++s) {
            const MosaicVm &sv = vm.shard(s);
            for (Pfn pfn = 0; pfn < sv.numFrames(); ++pfn) {
                const Frame &f = sv.frameTable().frame(pfn);
                if (!f.used)
                    continue;
                const std::size_t routed =
                    vm.routeOf(f.owner.asid, f.owner.vpn);
                if (routed != s) {
                    std::ostringstream out;
                    out << "page (" << f.owner.asid << ", "
                        << f.owner.vpn << ") resident at shard " << s
                        << " but routes to shard " << routed;
                    return fail(out.str());
                }
            }
        }
    }

    return std::nullopt;
}

} // namespace mosaic
