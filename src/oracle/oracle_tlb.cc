#include "oracle/oracle_tlb.hh"

#include <bit>

#include "tlb/coalesced_tlb.hh"
#include "util/log.hh"

namespace mosaic
{

// Tag forms mirror the real TLBs exactly; they are part of the
// modelled contract (bit 63 separates secondary tag spaces, ASIDs
// occupy bits 40+).
namespace
{

std::uint64_t
tag4k(Asid asid, Vpn vpn)
{
    return (std::uint64_t{asid} << 40) | vpn;
}

std::uint64_t
tagHugeVanilla(Asid asid, Vpn vpn)
{
    return (std::uint64_t{1} << 63) | (std::uint64_t{asid} << 40) |
           (vpn >> 9);
}

std::uint64_t
tagSecondary(Asid asid, std::uint64_t key)
{
    return (std::uint64_t{1} << 63) | (std::uint64_t{asid} << 40) | key;
}

bool
tagHasAsid(std::uint64_t tag, Asid asid)
{
    const std::uint64_t mask = std::uint64_t{0xFFFF} << 40;
    return (tag & mask) == (std::uint64_t{asid} << 40);
}

} // namespace

// ------------------------------------------------------------ vanilla

std::optional<Pfn>
OracleVanillaTlb::lookup(Asid asid, Vpn vpn)
{
    ++stats_.accesses;
    if (auto *p = array_.find(vpn, tag4k(asid, vpn))) {
        ++stats_.hits;
        return p->pfn;
    }
    if (auto *p = array_.find(vpn >> 9, tagHugeVanilla(asid, vpn))) {
        ++stats_.hits;
        return p->pfn + (vpn & 0x1FF);
    }
    ++stats_.misses;
    return std::nullopt;
}

void
OracleVanillaTlb::fill(Asid asid, Vpn vpn, Pfn pfn)
{
    bool evicted = false;
    auto &p = array_.allocate(vpn, tag4k(asid, vpn), &evicted);
    if (evicted)
        ++stats_.evictions;
    p.pfn = pfn;
}

void
OracleVanillaTlb::fillHuge(Asid asid, Vpn vpn, Pfn base_pfn)
{
    bool evicted = false;
    auto &p =
        array_.allocate(vpn >> 9, tagHugeVanilla(asid, vpn), &evicted);
    if (evicted)
        ++stats_.evictions;
    p.pfn = base_pfn;
}

void
OracleVanillaTlb::invalidate(Asid asid, Vpn vpn)
{
    if (array_.invalidate(vpn, tag4k(asid, vpn)))
        ++stats_.invalidations;
}

void
OracleVanillaTlb::flushAsid(Asid asid)
{
    stats_.invalidations += array_.invalidateIf(
        [&](std::uint64_t tag, const Payload &) {
            return tagHasAsid(tag, asid);
        });
}

bool
OracleVanillaTlb::contains(Asid asid, Vpn vpn) const
{
    return array_.peek(vpn, tag4k(asid, vpn)) ||
           array_.peek(vpn >> 9, tagHugeVanilla(asid, vpn));
}

std::uint64_t
OracleVanillaTlb::reachPages() const
{
    std::uint64_t pages = 0;
    array_.forEach([&](std::uint64_t tag, const Payload &) {
        // Bit 63 marks the huge tag form (512 base pages).
        pages += (tag >> 63) ? pagesPerHugePage : 1;
    });
    return pages;
}

// ------------------------------------------------------------- mosaic

std::optional<Cpfn>
OracleMosaicTlb::lookup(Asid asid, Vpn vpn)
{
    ++stats_.accesses;
    const Mvpn mvpn = mvpnOf(vpn);
    if (auto *p = array_.find(mvpn, tag4k(asid, mvpn))) {
        const Cpfn cpfn = p->cpfns[offsetOf(vpn)];
        if (cpfn != MosaicTlb::absentCpfn) {
            ++stats_.hits;
            return cpfn;
        }
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.misses;
    return std::nullopt;
}

void
OracleMosaicTlb::fill(Asid asid, Vpn vpn, std::span<const Cpfn> toc,
                      Cpfn unmapped_code)
{
    ensure(toc.size() == arity_, "oracle_tlb: ToC size != arity");
    const Mvpn mvpn = mvpnOf(vpn);
    const std::uint64_t tag = tag4k(asid, mvpn);
    auto *p = array_.find(mvpn, tag);
    if (!p) {
        bool evicted = false;
        p = &array_.allocate(mvpn, tag, &evicted);
        if (evicted)
            ++stats_.evictions;
    } else {
        ++stats_.subEntryFills;
    }
    for (unsigned i = 0; i < arity_; ++i) {
        p->cpfns[i] =
            toc[i] == unmapped_code ? MosaicTlb::absentCpfn : toc[i];
    }
    p->conventional = false;
}

std::optional<Pfn>
OracleMosaicTlb::lookupConventional(Asid asid, Vpn vpn)
{
    ++stats_.accesses;
    if (auto *p = array_.find(vpn, tagSecondary(asid, vpn))) {
        ++stats_.hits;
        return p->conventionalPfn;
    }
    ++stats_.misses;
    return std::nullopt;
}

void
OracleMosaicTlb::fillConventional(Asid asid, Vpn vpn, Pfn pfn)
{
    bool evicted = false;
    auto &p = array_.allocate(vpn, tagSecondary(asid, vpn), &evicted);
    if (evicted)
        ++stats_.evictions;
    p.conventional = true;
    p.conventionalPfn = pfn;
}

void
OracleMosaicTlb::invalidateSub(Asid asid, Vpn vpn)
{
    const Mvpn mvpn = mvpnOf(vpn);
    if (auto *p = array_.find(mvpn, tag4k(asid, mvpn))) {
        Cpfn &slot = p->cpfns[offsetOf(vpn)];
        if (slot != MosaicTlb::absentCpfn) {
            slot = MosaicTlb::absentCpfn;
            ++stats_.invalidations;
        }
    }
}

void
OracleMosaicTlb::invalidateEntry(Asid asid, Vpn vpn)
{
    const Mvpn mvpn = mvpnOf(vpn);
    if (array_.invalidate(mvpn, tag4k(asid, mvpn)))
        ++stats_.invalidations;
}

void
OracleMosaicTlb::flushAsid(Asid asid)
{
    stats_.invalidations += array_.invalidateIf(
        [&](std::uint64_t tag, const Payload &) {
            return tagHasAsid(tag, asid);
        });
}

bool
OracleMosaicTlb::contains(Asid asid, Vpn vpn) const
{
    const Mvpn mvpn = mvpnOf(vpn);
    const auto *p = array_.peek(mvpn, tag4k(asid, mvpn));
    return p && p->cpfns[offsetOf(vpn)] != MosaicTlb::absentCpfn;
}

std::uint64_t
OracleMosaicTlb::reachPages() const
{
    std::uint64_t pages = 0;
    array_.forEach([&](std::uint64_t, const Payload &p) {
        if (p.conventional) {
            ++pages;
            return;
        }
        for (unsigned i = 0; i < arity_; ++i)
            pages += p.cpfns[i] != MosaicTlb::absentCpfn ? 1 : 0;
    });
    return pages;
}

// ---------------------------------------------------------- coalesced

std::optional<Pfn>
OracleCoalescedTlb::lookup(Asid asid, Vpn vpn)
{
    ++stats_.accesses;
    const Vpn group = vpn / CoalescedTlb::coalesceFactor;
    const unsigned off = vpn % CoalescedTlb::coalesceFactor;

    if (auto *p = array_.find(group, tag4k(asid, group))) {
        if (p->mask & (1u << off)) {
            ++stats_.hits;
            return p->basePfn + off;
        }
    }
    if (auto *p = array_.find(vpn, tagSecondary(asid, vpn))) {
        ++stats_.hits;
        return p->basePfn;
    }
    ++stats_.misses;
    return std::nullopt;
}

void
OracleCoalescedTlb::fill(
    Asid asid, Vpn vpn, Pfn pfn,
    const std::function<std::optional<Pfn>(Vpn)> &pfn_of)
{
    const Vpn group = vpn / CoalescedTlb::coalesceFactor;
    const unsigned off = vpn % CoalescedTlb::coalesceFactor;
    const Pfn base = pfn - off;

    std::uint8_t mask = static_cast<std::uint8_t>(1u << off);
    if (pfn >= off) {
        for (unsigned i = 0; i < CoalescedTlb::coalesceFactor; ++i) {
            if (i == off)
                continue;
            const std::optional<Pfn> neighbour =
                pfn_of(group * CoalescedTlb::coalesceFactor + i);
            if (neighbour && *neighbour == base + i)
                mask |= static_cast<std::uint8_t>(1u << i);
        }
    }

    covered_ += std::popcount(mask);

    if (std::popcount(mask) == 1) {
        bool evicted = false;
        auto &p = array_.allocate(vpn, tagSecondary(asid, vpn), &evicted);
        if (evicted)
            ++stats_.evictions;
        p.basePfn = pfn;
        p.mask = 0;
        return;
    }

    ++coalescedFills_;
    const std::uint64_t t = tag4k(asid, group);
    auto *p = array_.find(group, t);
    if (p && p->basePfn != base &&
            std::popcount(p->mask) >= std::popcount(mask)) {
        bool evicted = false;
        auto &page =
            array_.allocate(vpn, tagSecondary(asid, vpn), &evicted);
        if (evicted)
            ++stats_.evictions;
        page.basePfn = pfn;
        page.mask = 0;
        return;
    }
    if (!p) {
        bool evicted = false;
        p = &array_.allocate(group, t, &evicted);
        if (evicted)
            ++stats_.evictions;
    }
    p->basePfn = base;
    p->mask = mask;
}

void
OracleCoalescedTlb::invalidate(Asid asid, Vpn vpn)
{
    const Vpn group = vpn / CoalescedTlb::coalesceFactor;
    const unsigned off = vpn % CoalescedTlb::coalesceFactor;
    if (auto *p = array_.find(group, tag4k(asid, group))) {
        if (p->mask & (1u << off)) {
            p->mask &= static_cast<std::uint8_t>(~(1u << off));
            ++stats_.invalidations;
        }
    }
    if (array_.invalidate(vpn, tagSecondary(asid, vpn)))
        ++stats_.invalidations;
}

void
OracleCoalescedTlb::flushAsid(Asid asid)
{
    stats_.invalidations += array_.invalidateIf(
        [&](std::uint64_t tag, const Payload &) {
            return tagHasAsid(tag, asid);
        });
}

bool
OracleCoalescedTlb::contains(Asid asid, Vpn vpn) const
{
    const Vpn group = vpn / CoalescedTlb::coalesceFactor;
    const unsigned off = vpn % CoalescedTlb::coalesceFactor;
    if (const auto *p = array_.peek(group, tag4k(asid, group))) {
        if (p->mask & (1u << off))
            return true;
    }
    return array_.peek(vpn, tagSecondary(asid, vpn)) != nullptr;
}

std::uint64_t
OracleCoalescedTlb::reachPages() const
{
    std::uint64_t pages = 0;
    array_.forEach([&](std::uint64_t tag, const Payload &p) {
        if (tag >> 63)
            ++pages;
        else
            pages += static_cast<unsigned>(std::popcount(p.mask));
    });
    return pages;
}

// --------------------------------------------------------- perforated

std::optional<Pfn>
OraclePerforatedTlb::lookup(Asid asid, Vpn vpn)
{
    ++stats_.accesses;
    const Vpn huge_vpn = vpn >> 9;
    const unsigned off = vpn & 0x1FF;

    if (auto *p = array_.find(huge_vpn, tag4k(asid, huge_vpn))) {
        if (!isHole(p->holes, off)) {
            ++stats_.hits;
            return p->basePfn + off;
        }
        ++holeLookups_;
    }
    if (auto *p = array_.find(vpn, tagSecondary(asid, vpn))) {
        ++stats_.hits;
        return p->basePfn;
    }
    ++stats_.misses;
    return std::nullopt;
}

void
OraclePerforatedTlb::fillPerforated(Asid asid, Vpn vpn, Pfn base_pfn,
                                    const HoleBitmap &holes)
{
    const Vpn huge_vpn = vpn >> 9;
    bool evicted = false;
    auto &p = array_.allocate(huge_vpn, tag4k(asid, huge_vpn), &evicted);
    if (evicted)
        ++stats_.evictions;
    p.basePfn = base_pfn;
    p.holes = holes;
    p.huge = true;
}

void
OraclePerforatedTlb::fill4k(Asid asid, Vpn vpn, Pfn pfn)
{
    bool evicted = false;
    auto &p = array_.allocate(vpn, tagSecondary(asid, vpn), &evicted);
    if (evicted)
        ++stats_.evictions;
    p.basePfn = pfn;
    p.huge = false;
}

void
OraclePerforatedTlb::invalidate(Asid asid, Vpn vpn)
{
    const Vpn huge_vpn = vpn >> 9;
    const unsigned off = vpn & 0x1FF;
    if (auto *p = array_.find(huge_vpn, tag4k(asid, huge_vpn))) {
        if (!isHole(p->holes, off)) {
            setHole(p->holes, off);
            ++stats_.invalidations;
        }
    }
    if (array_.invalidate(vpn, tagSecondary(asid, vpn)))
        ++stats_.invalidations;
}

void
OraclePerforatedTlb::flushAsid(Asid asid)
{
    stats_.invalidations += array_.invalidateIf(
        [&](std::uint64_t tag, const Payload &) {
            return tagHasAsid(tag, asid);
        });
}

bool
OraclePerforatedTlb::hasPerforatedEntry(Asid asid, Vpn vpn) const
{
    const Vpn huge_vpn = vpn >> 9;
    return array_.peek(huge_vpn, tag4k(asid, huge_vpn)) != nullptr;
}

bool
OraclePerforatedTlb::contains(Asid asid, Vpn vpn) const
{
    const Vpn huge_vpn = vpn >> 9;
    const unsigned off = vpn & 0x1FF;
    if (const auto *p = array_.peek(huge_vpn, tag4k(asid, huge_vpn))) {
        if (!isHole(p->holes, off))
            return true;
    }
    return array_.peek(vpn, tagSecondary(asid, vpn)) != nullptr;
}

std::uint64_t
OraclePerforatedTlb::reachPages() const
{
    std::uint64_t pages = 0;
    array_.forEach([&](std::uint64_t, const Payload &p) {
        if (!p.huge) {
            ++pages;
            return;
        }
        unsigned holes = 0;
        for (const std::uint64_t word : p.holes)
            holes += static_cast<unsigned>(std::popcount(word));
        pages += pagesPerHugePage - holes;
    });
    return pages;
}

} // namespace mosaic
