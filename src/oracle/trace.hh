/**
 * @file
 * Replayable fuzz traces. A trace is the complete recipe for one
 * differential run: which component it drives, the configuration
 * (as ordered key/value pairs, so serialization is byte-stable), and
 * the operation sequence. The on-disk form is a line-oriented text
 * file:
 *
 *     mosaic-fuzz-trace v1
 *     component vm
 *     cfg kind mosaic
 *     cfg frames 192
 *     ...
 *     op t 3 1047 1
 *     op u 3 1024 64
 *     end
 *
 * Everything the run needs is in the file — fill payloads and keys
 * are derived from the ops and the `pseed` cfg entry by pure mixing
 * functions, never from ambient randomness — so replaying a trace is
 * byte-deterministic across machines and thread counts.
 *
 * Op vocabulary (args are decimal unsigned integers):
 *   vm:       t asid vpn write | u asid vpn npages | s sa sv da dv n
 *   tlb:      l asid vpn       | i asid vpn        | e asid vpn
 *             f asid           (flush the asid)
 *   iceberg:  i key | e key | f key
 * Harnesses may skip an op that is invalid in the current state
 * (e.g. a share into an ever-bound ToC); skipping is deterministic,
 * which keeps every subsequence of a trace itself a valid trace —
 * the property the delta-debugging shrinker relies on.
 */

#ifndef MOSAIC_ORACLE_TRACE_HH_
#define MOSAIC_ORACLE_TRACE_HH_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hh"
#include "util/status.hh"

namespace mosaic
{

/** One fuzz operation: a kind letter plus integer arguments. */
struct TraceOp
{
    static constexpr unsigned maxArgs = 5;

    char kind = '?';
    unsigned nargs = 0;
    std::array<std::uint64_t, maxArgs> args{};

    std::uint64_t
    arg(unsigned i) const
    {
        return i < nargs ? args[i] : 0;
    }

    bool operator==(const TraceOp &) const = default;
};

/** A complete differential-run recipe. */
struct Trace
{
    static constexpr const char *magic = "mosaic-fuzz-trace v1";

    /** "vm", "tlb", or "iceberg". */
    std::string component;

    /** Ordered configuration; order is part of the byte format. */
    std::vector<std::pair<std::string, std::string>> cfg;

    std::vector<TraceOp> ops;

    /** First cfg value for the key, or fallback. */
    std::string cfgValue(const std::string &key,
                         const std::string &fallback = "") const;

    /** cfgValue parsed as an unsigned integer. */
    std::uint64_t cfgUint(const std::string &key,
                          std::uint64_t fallback) const;

    void setCfg(const std::string &key, const std::string &value);
    void setCfgUint(const std::string &key, std::uint64_t value);
};

/** Serialize to the canonical text form (always ends in "end\n"). */
std::string serializeTrace(const Trace &trace);

/**
 * Parse the canonical text form. Trace text is external input, so
 * malformation is a recoverable error, never a panic:
 * InvalidArgument for a malformed line, DataLoss for a file cut off
 * before its "end" marker (truncation).
 */
Result<Trace> tryParseTrace(const std::string &text);

/**
 * Read and parse a trace file: NotFound / IoError for file-system
 * failures plus everything tryParseTrace reports. When @p faults is
 * non-null, the "trace.read" site injects an IoError and the
 * "trace.corrupt" site truncates the text mid-file before parsing
 * (surfacing as DataLoss) — both deliberate, for chaos testing.
 */
Result<Trace> tryReadTraceFile(const std::string &path,
                               fault::FaultInjector *faults = nullptr);

/** Write the canonical form; IoError when the path can't be opened
 *  or the write fails. */
Status tryWriteTraceFile(const std::string &path, const Trace &trace);

/** Convenience wrappers over the try* forms for tools whose callers
 *  cannot continue without the trace: any error is fatal() (bad
 *  external input, not a library bug — so not panic()). */
Trace parseTrace(const std::string &text);
void writeTraceFile(const std::string &path, const Trace &trace);
Trace readTraceFile(const std::string &path);

} // namespace mosaic

#endif // MOSAIC_ORACLE_TRACE_HH_
