/**
 * @file
 * Whole-machine conservation oracle for the sharded VM engine
 * (DESIGN.md §17): the PR 3 per-shard invariants stay valid because
 * each shard is a full MosaicVm, so what the sharded layer adds —
 * and what this oracle checks — is that nothing is lost or double
 * counted across the shard boundary:
 *
 *  - partition exactness: Σ per-shard frames == global frames;
 *  - conservation: Σ per-shard resident / ghost / binding / user
 *    counts == the machine-wide figures, with the per-shard resident
 *    and ghost counts themselves recomputed from a frame-table scan;
 *  - stat conservation: the aggregate VmStats equals an independent
 *    fold of the per-shard stats;
 *  - routing validity: every forwarding entry targets an existing
 *    shard other than the key's home, and every resident page's
 *    owner routes (forward-aware) to the shard actually holding it.
 */

#ifndef MOSAIC_ORACLE_SHARD_ORACLE_HH_
#define MOSAIC_ORACLE_SHARD_ORACLE_HH_

#include <optional>
#include <string>

#include "os/sharded_vm.hh"

namespace mosaic
{

/**
 * Check every whole-machine invariant; nullopt when all hold, else a
 * description of the first violation. @p deep additionally recounts
 * per-shard resident and ghost pages by scanning every frame —
 * O(total frames), so large pools should sample it.
 */
std::optional<std::string>
checkShardConservation(const ShardedMosaicVm &vm, bool deep = true);

} // namespace mosaic

#endif // MOSAIC_ORACLE_SHARD_ORACLE_HH_
