#include "oracle/oracle_iceberg.hh"

namespace mosaic
{

OracleIceberg::OracleIceberg(const IcebergConfig &config)
    : config_(config),
      hasher_(config.seed),
      frontOcc_(config.buckets, 0),
      backOcc_(config.buckets, 0)
{
}

std::size_t
OracleIceberg::frontBucket(std::uint64_t key) const
{
    return hasher_.hash(key, 0) % config_.buckets;
}

std::size_t
OracleIceberg::backBucket(std::uint64_t key, unsigned k) const
{
    return hasher_.hash(key, k + 1) % config_.buckets;
}

OracleIceberg::Prediction
OracleIceberg::insert(std::uint64_t key, std::uint64_t value)
{
    if (const auto it = items_.find(key); it != items_.end()) {
        // Overwrite in place: stability says the slot cannot move.
        it->second.value = value;
        return Prediction{true, it->second.yard, it->second.bucket};
    }

    const std::size_t fb = frontBucket(key);
    if (frontOcc_[fb] < config_.frontSlots) {
        ++frontOcc_[fb];
        items_.emplace(key, Item{value, Yard::Front, fb});
        return Prediction{true, Yard::Front, fb};
    }

    // Power of d choices: the emptiest candidate backyard, scanning
    // ascending so ties resolve to the lowest choice index, exactly
    // like the real table.
    std::size_t best = config_.buckets;
    unsigned best_occupancy = config_.backSlots + 1;
    for (unsigned k = 0; k < config_.backChoices; ++k) {
        const std::size_t b = backBucket(key, k);
        if (backOcc_[b] < best_occupancy) {
            best_occupancy = backOcc_[b];
            best = b;
        }
    }
    if (best == config_.buckets || best_occupancy >= config_.backSlots)
        return Prediction{false, Yard::Back, 0};

    ++backOcc_[best];
    ++backSize_;
    items_.emplace(key, Item{value, Yard::Back, best});
    return Prediction{true, Yard::Back, best};
}

bool
OracleIceberg::erase(std::uint64_t key)
{
    const auto it = items_.find(key);
    if (it == items_.end())
        return false;
    if (it->second.yard == Yard::Front) {
        --frontOcc_[it->second.bucket];
    } else {
        --backOcc_[it->second.bucket];
        --backSize_;
    }
    items_.erase(it);
    return true;
}

std::optional<std::uint64_t>
OracleIceberg::find(std::uint64_t key) const
{
    const auto it = items_.find(key);
    if (it == items_.end())
        return std::nullopt;
    return it->second.value;
}

} // namespace mosaic
