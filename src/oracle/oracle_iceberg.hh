/**
 * @file
 * A reference occupancy model for the iceberg hash table. It keeps a
 * plain std::map of key -> value plus per-bucket occupancy counters,
 * and *predicts* — straight from the insertion rule of §2.3 — where
 * each insert must land (front yard of h0, else the emptiest of the
 * d candidate backyards) and when an insert must fail.
 *
 * The differential harness checks, against a real IcebergTable:
 *  - insert success/failure agrees with the predicted rule;
 *  - the bucket and yard the real table reports via locate() match
 *    the prediction;
 *  - stability: a key's slot never changes while it is stored;
 *  - find()/erase() results and values agree;
 *  - size(), backyardSize(), and per-bucket occupancies agree;
 *  - the real table holds exactly the oracle's key set (via
 *    IcebergTable::forEachSlot), no strays and no leaks.
 */

#ifndef MOSAIC_ORACLE_ORACLE_ICEBERG_HH_
#define MOSAIC_ORACLE_ORACLE_ICEBERG_HH_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "hash/tabulation.hh"
#include "iceberg/iceberg_table.hh"

namespace mosaic
{

/** Map-based mirror of IcebergTable<std::uint64_t>. */
class OracleIceberg
{
  public:
    /** Where an insert should land (or that it must fail). */
    struct Prediction
    {
        bool ok = false;
        Yard yard = Yard::Front;
        std::size_t bucket = 0;
    };

    explicit OracleIceberg(const IcebergConfig &config);

    /** Apply an insert and return what the real table must do. */
    Prediction insert(std::uint64_t key, std::uint64_t value);

    /** Apply an erase; true when the key was stored. */
    bool erase(std::uint64_t key);

    /** Stored value, or nullopt. */
    std::optional<std::uint64_t> find(std::uint64_t key) const;

    std::size_t size() const { return items_.size(); }
    std::size_t backyardSize() const { return backSize_; }

    unsigned frontOccupancy(std::size_t b) const { return frontOcc_[b]; }
    unsigned backOccupancy(std::size_t b) const { return backOcc_[b]; }

    /** Candidate buckets (same tabulation hash as the real table). */
    std::size_t frontBucket(std::uint64_t key) const;
    std::size_t backBucket(std::uint64_t key, unsigned k) const;

    /** Visit every stored key with its recorded placement. */
    template <typename Fn>
    void
    forEachItem(Fn &&fn) const
    {
        for (const auto &[key, item] : items_)
            fn(key, item.value, item.yard, item.bucket);
    }

  private:
    struct Item
    {
        std::uint64_t value = 0;
        Yard yard = Yard::Front;
        std::size_t bucket = 0;
    };

    IcebergConfig config_;
    TabulationHash hasher_;
    std::map<std::uint64_t, Item> items_;
    std::vector<unsigned> frontOcc_;
    std::vector<unsigned> backOcc_;
    std::size_t backSize_ = 0;
};

} // namespace mosaic

#endif // MOSAIC_ORACLE_ORACLE_ICEBERG_HH_
