/**
 * @file
 * An obviously-correct reference model of demand paging with exact
 * global-LRU reclaim, used as the differential oracle for the real
 * virtual-memory subsystems.
 *
 * The oracle trades all performance for clarity: resident pages live
 * in a std::list ordered by recency (front = least recently used),
 * page metadata lives in a std::map, and the swap device is a
 * std::set. Every operation is a direct transcription of the intended
 * semantics, so any disagreement with `LinuxVm` or `MosaicVm` points
 * at a bug in the optimized code (or, rarely, at a genuine semantic
 * difference the checker must model explicitly).
 *
 * Two modes:
 *  - bounded (numFrames > 0): mirrors `LinuxVm` — a free-frame
 *    watermark triggers batched reclaim of the globally
 *    least-recently-used pages;
 *  - unbounded (numFrames == 0): a pure recency tracker that never
 *    evicts. This is the ground truth for the Horizon-LRU property:
 *    the live (non-ghost) pages of a Horizon-LRU `MosaicVm` must
 *    always equal the most recently touched L distinct pages, where
 *    L is the live-page count (paper §2.4).
 */

#ifndef MOSAIC_ORACLE_ORACLE_VM_HH_
#define MOSAIC_ORACLE_ORACLE_VM_HH_

#include <cstddef>
#include <list>
#include <map>
#include <set>
#include <vector>

#include "os/vm_stats.hh"
#include "util/types.hh"

namespace mosaic
{

/** Configuration of the reference VM. */
struct OracleVmConfig
{
    /** Physical frames; 0 means unbounded (never evict). */
    std::size_t numFrames = 0;

    /** Free-frame reserve fraction (mirrors LinuxVmConfig). */
    double watermarkFraction = 0.008;

    /** Pages reclaimed per batch (mirrors LinuxVmConfig). */
    unsigned reclaimBatch = 32;
};

/** Map/list-based demand paging with exact global-LRU reclaim. */
class OracleVm
{
  public:
    /** What a touch did, predicted from the oracle's own state. */
    struct Outcome
    {
        /** True when the page was not resident before the touch. */
        bool fault = false;

        /** True when the fault required a swap-in. */
        bool major = false;
    };

    explicit OracleVm(const OracleVmConfig &config);

    /** Access one page, faulting it in if necessary. */
    Outcome touch(Asid asid, Vpn vpn, bool write);

    /** Release a range of pages; swap copies are dropped. */
    void unmapRange(Asid asid, Vpn vpn, std::size_t npages);

    std::size_t resident() const { return pages_.size(); }
    bool isResident(PageId id) const { return pages_.contains(id); }

    /** Dirty bit of a resident page. */
    bool isDirty(PageId id) const;

    /** Last access tick of a resident page. */
    Tick lastAccessOf(PageId id) const;

    bool inSwap(PageId id) const { return swap_.contains(id); }
    std::size_t swapStored() const { return swap_.size(); }

    /** Swap write I/Os (== stats().swapOuts, kept for symmetry). */
    std::uint64_t swapWrites() const { return stats_.swapOuts; }

    const VmStats &stats() const { return stats_; }
    Tick now() const { return clock_; }

    /** Reserve size the watermark works out to (bounded mode). */
    std::size_t reserveFrames() const { return reserve_; }

    /** Resident pages from most recently to least recently used. */
    std::vector<PageId> residentByRecency() const;

  private:
    struct Record
    {
        std::list<PageId>::iterator lruPos;
        Tick lastAccess = 0;
        bool dirty = false;
    };

    void reclaim();

    OracleVmConfig config_;
    std::size_t reserve_ = 0;
    Tick clock_ = 0;

    /** Front = least recently used, back = most recently used. */
    std::list<PageId> lru_;

    std::map<PageId, Record> pages_;
    std::set<PageId> swap_;
    VmStats stats_;
};

} // namespace mosaic

#endif // MOSAIC_ORACLE_ORACLE_VM_HH_
