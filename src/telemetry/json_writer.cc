#include "telemetry/json_writer.hh"

#include <cmath>
#include <cstdio>

#include "util/log.hh"

namespace mosaic::telemetry
{

std::string
jsonQuote(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
JsonWriter::indent()
{
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::prepare()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (stack_.empty())
        return;
    if (stack_.back().hasMembers)
        os_ << ',';
    stack_.back().hasMembers = true;
    indent();
}

void
JsonWriter::beginObject()
{
    prepare();
    os_ << '{';
    stack_.push_back({false, false});
}

void
JsonWriter::endObject()
{
    ensure(!stack_.empty() && !stack_.back().array,
           "json_writer: endObject outside an object");
    const bool had = stack_.back().hasMembers;
    stack_.pop_back();
    if (had)
        indent();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    prepare();
    os_ << '[';
    stack_.push_back({true, false});
}

void
JsonWriter::endArray()
{
    ensure(!stack_.empty() && stack_.back().array,
           "json_writer: endArray outside an array");
    const bool had = stack_.back().hasMembers;
    stack_.pop_back();
    if (had)
        indent();
    os_ << ']';
}

void
JsonWriter::key(std::string_view name)
{
    ensure(!stack_.empty() && !stack_.back().array,
           "json_writer: key outside an object");
    ensure(!pendingKey_, "json_writer: key after key");
    prepare();
    os_ << jsonQuote(name) << ": ";
    pendingKey_ = true;
}

void
JsonWriter::value(std::string_view v)
{
    prepare();
    os_ << jsonQuote(v);
}

void
JsonWriter::value(bool v)
{
    prepare();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::value(double v)
{
    prepare();
    os_ << jsonDouble(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    prepare();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    prepare();
    os_ << v;
}

} // namespace mosaic::telemetry
