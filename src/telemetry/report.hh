/**
 * @file
 * BenchReport: the machine-readable run artifact every bench and
 * experiment runner emits next to its stdout tables.
 *
 * A report is a RunManifest (which binary, which seed and config
 * knobs, how many worker threads), a Registry of metric values, and
 * the run's timings, serialized as `BENCH_<name>.json` in the
 * current directory (or $MOSAIC_JSON_DIR). Opt out with
 * MOSAIC_NO_JSON=1. The schema is documented in DESIGN.md §9.
 *
 * Timings live outside the "metrics" object: metric values are
 * deterministic (bit-identical at any thread count, DESIGN.md §8)
 * while wall-clock never is, and keeping them apart lets tests and
 * trajectory tooling compare the metrics section byte-for-byte.
 */

#ifndef MOSAIC_TELEMETRY_REPORT_HH_
#define MOSAIC_TELEMETRY_REPORT_HH_

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>

#include "telemetry/registry.hh"
#include "util/status.hh"

namespace mosaic::telemetry
{

/** Identity and configuration of one bench/experiment run. */
struct RunManifest
{
    /** Bench name; also names the output file BENCH_<name>.json. */
    std::string bench;

    /** Root experiment seed. */
    std::uint64_t seed = 0;

    /** Worker threads the run used (PR 1's pool). */
    unsigned threads = 1;

    /** Remaining config knobs, stringified, sorted by name. */
    std::map<std::string, std::string> config;
};

/** Wall-clock timings of one run (never deterministic). */
struct RunTiming
{
    double wallSeconds = 0.0;

    /** Summed per-cell compute time (the serial-equivalent cost). */
    double serialSeconds = 0.0;

    /** Measured parallel efficiency; 0 when serialSeconds is 0. */
    double
    speedup() const
    {
        return wallSeconds > 0.0 ? serialSeconds / wallSeconds : 0.0;
    }
};

/** One bench run's manifest + metrics + timing, JSON-serializable. */
class BenchReport
{
  public:
    explicit BenchReport(std::string bench);

    RunManifest &manifest() { return manifest_; }
    const RunManifest &manifest() const { return manifest_; }

    Registry &metrics() { return metrics_; }
    const Registry &metrics() const { return metrics_; }

    RunTiming &timing() { return timing_; }

    /** Record a config knob (stringified deterministically). */
    void config(const std::string &name, const std::string &v);
    void config(const std::string &name, const char *v);
    void config(const std::string &name, double v);
    void config(const std::string &name, bool v);
    template <typename T>
        requires std::is_integral_v<T>
    void
    config(const std::string &name, T v)
    {
        config(name, std::to_string(v));
    }

    /** Serialize the full report as JSON. */
    void writeJson(std::ostream &os) const;

    /** Just the sorted "metrics" object (for byte comparisons). */
    std::string metricsJson() const;

    /**
     * Write BENCH_<name>.json to $MOSAIC_JSON_DIR (default: the
     * current directory) unless MOSAIC_NO_JSON is set. Returns the
     * path written; NotFound when MOSAIC_NO_JSON disables artifacts
     * (deliberate, not a failure) and IoError when the path can't be
     * opened or the write is short. A failed artifact write is
     * recoverable (the run's results were already printed) — callers
     * decide whether to warn or abort.
     */
    Result<std::string> tryWrite() const;

    /** tryWrite(), with failures downgraded to a stderr warn():
     *  returns the path written, or nullopt when disabled/failed. */
    std::optional<std::string> write() const;

    /** The output path this report would write to. */
    std::string path() const;

    /** False when MOSAIC_NO_JSON disables JSON artifacts. */
    static bool jsonEnabled();

  private:
    RunManifest manifest_;
    Registry metrics_;
    RunTiming timing_;
};

} // namespace mosaic::telemetry

#endif // MOSAIC_TELEMETRY_REPORT_HH_
