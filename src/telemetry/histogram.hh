/**
 * @file
 * Latency histogram for the serving telemetry (DESIGN.md §16): a
 * log2-bucketed nanosecond histogram whose percentile queries give
 * the p50/p99/p999 tail figures BENCH_serving.json reports.
 *
 * Buckets are powers of two (bucket i covers [2^i, 2^(i+1)) ns, with
 * bucket 0 covering [0, 2)), so recording is two instructions on the
 * hot path and the bucket layout is identical on every machine. The
 * recorded *values* are wall-clock and therefore machine-dependent —
 * like the microbenches, latency metrics are excluded from byte
 * comparisons; the deterministic serving counters live next to them.
 */

#ifndef MOSAIC_TELEMETRY_HISTOGRAM_HH_
#define MOSAIC_TELEMETRY_HISTOGRAM_HH_

#include <array>
#include <cstdint>
#include <string>

namespace mosaic::telemetry
{

/** Log2-bucketed nanosecond latency histogram. */
class LatencyHistogram
{
  public:
    /** 2^63 ns ≈ 292 years: every latency fits one of 64 buckets. */
    static constexpr std::size_t numBuckets = 64;

    /** Record one latency sample (saturating at bucket 63). */
    void record(std::uint64_t nanos);

    /** Merge another histogram's samples into this one. */
    void merge(const LatencyHistogram &other);

    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

    /** Inclusive lower bound of bucket i in nanoseconds. */
    static std::uint64_t bucketFloorNs(std::size_t i);

    /**
     * The smallest bucket floor covering @p permille of samples
     * (660 = p66, 990 = p99, 999 = p999): an upper-bound-of-bucket
     * estimator would overstate tails by up to 2x, the floor
     * understates by at most the same — fine for a log2 histogram
     * whose job is catching order-of-magnitude tail blowups.
     * 0 when empty.
     */
    std::uint64_t percentileNs(unsigned permille) const;

    /**
     * Register under "<prefix>.": count, p50/p90/p99/p999 gauges,
     * and one "bucketNs.<floor>" counter per non-empty bucket (the
     * CI schema check rebuilds the CDF from these and asserts
     * monotonicity). Any type with counter()/gauge() works, so the
     * header stays free of the Registry dependency.
     */
    template <typename RegistryT>
    void
    registerInto(RegistryT &r, const std::string &prefix) const
    {
        r.counter(prefix + ".count", count_);
        r.gauge(prefix + ".p50Ns",
                static_cast<double>(percentileNs(500)));
        r.gauge(prefix + ".p90Ns",
                static_cast<double>(percentileNs(900)));
        r.gauge(prefix + ".p99Ns",
                static_cast<double>(percentileNs(990)));
        r.gauge(prefix + ".p999Ns",
                static_cast<double>(percentileNs(999)));
        for (std::size_t i = 0; i < numBuckets; ++i) {
            if (buckets_[i] == 0)
                continue;
            r.counter(prefix + ".bucketNs." +
                          std::to_string(bucketFloorNs(i)),
                      buckets_[i]);
        }
    }

  private:
    std::array<std::uint64_t, numBuckets> buckets_{};
    std::uint64_t count_ = 0;
};

} // namespace mosaic::telemetry

#endif // MOSAIC_TELEMETRY_HISTOGRAM_HH_
