#include "telemetry/report.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

#include "telemetry/json_writer.hh"
#include "util/log.hh"

namespace mosaic::telemetry
{

namespace
{

/** Current telemetry schema identifier (DESIGN.md §9). */
constexpr const char *schemaName = "mosaic-telemetry-v1";

} // namespace

BenchReport::BenchReport(std::string bench)
{
    manifest_.bench = std::move(bench);
    ensure(!manifest_.bench.empty(), "telemetry: empty bench name");
}

void
BenchReport::config(const std::string &name, const std::string &v)
{
    manifest_.config[name] = v;
}

void
BenchReport::config(const std::string &name, const char *v)
{
    config(name, std::string{v});
}

void
BenchReport::config(const std::string &name, double v)
{
    config(name, jsonDouble(v));
}

void
BenchReport::config(const std::string &name, bool v)
{
    config(name, std::string{v ? "true" : "false"});
}

void
BenchReport::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.field("schema", schemaName);
    w.field("bench", manifest_.bench);
    w.field("seed", manifest_.seed);
    w.field("threads", manifest_.threads);
    w.key("config");
    w.beginObject();
    for (const auto &[name, value] : manifest_.config)
        w.field(name, value);
    w.endObject();
    w.key("timing");
    w.beginObject();
    w.field("wallSeconds", timing_.wallSeconds);
    w.field("serialEquivalentSeconds", timing_.serialSeconds);
    w.field("speedup", timing_.speedup());
    w.endObject();
    w.key("metrics");
    metrics_.writeTo(w);
    w.endObject();
    os << '\n';
}

std::string
BenchReport::metricsJson() const
{
    std::ostringstream os;
    JsonWriter w(os);
    metrics_.writeTo(w);
    return os.str();
}

bool
BenchReport::jsonEnabled()
{
    const char *no_json = std::getenv("MOSAIC_NO_JSON");
    return no_json == nullptr || *no_json == '\0' ||
           std::string_view{no_json} == "0";
}

std::string
BenchReport::path() const
{
    std::string dir;
    if (const char *env = std::getenv("MOSAIC_JSON_DIR");
            env != nullptr && *env != '\0') {
        dir = env;
        if (dir.back() != '/')
            dir += '/';
    }
    return dir + "BENCH_" + manifest_.bench + ".json";
}

Result<std::string>
BenchReport::tryWrite() const
{
    if (!jsonEnabled())
        return Status::notFound("telemetry: JSON artifacts disabled "
                                "by MOSAIC_NO_JSON");
    const std::string file = path();
    std::ofstream os(file);
    if (!os)
        return Status::ioError("telemetry: cannot write " + file);
    writeJson(os);
    if (!os)
        return Status::ioError("telemetry: short write to " + file);
    return file;
}

std::optional<std::string>
BenchReport::write() const
{
    Result<std::string> written = tryWrite();
    if (written.ok())
        return written.value();
    // Disabled-by-env is deliberate; only real failures warn.
    if (written.status().code() != StatusCode::NotFound)
        warn(written.status().toString());
    return std::nullopt;
}

} // namespace mosaic::telemetry
