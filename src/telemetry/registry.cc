#include "telemetry/registry.hh"

#include "telemetry/json_writer.hh"
#include "util/log.hh"

namespace mosaic::telemetry
{

void
Registry::insert(const std::string &name, MetricValue v)
{
    ensure(!name.empty(), "telemetry: empty metric name");
    const auto [it, inserted] = metrics_.emplace(name, std::move(v));
    if (!inserted) {
        // Two sites writing one name is a naming bug; fail loudly so
        // it cannot silently shadow a real measurement.
        fatal("telemetry: duplicate metric name: " + name);
    }
}

void
Registry::counter(const std::string &name, std::uint64_t v)
{
    insert(name, v);
}

void
Registry::gauge(const std::string &name, double v)
{
    insert(name, v);
}

void
Registry::text(const std::string &name, std::string v)
{
    insert(name, std::move(v));
}

void
Registry::stat(const std::string &name, const RunningStat &s)
{
    counter(name + ".count", s.count());
    gauge(name + ".mean", s.mean());
    gauge(name + ".stddev", s.stddev());
    gauge(name + ".min", s.min());
    gauge(name + ".max", s.max());
    gauge(name + ".sum", s.sum());
}

void
Registry::writeTo(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &[name, value] : metrics_) {
        w.key(name);
        std::visit([&](const auto &v) { w.value(v); }, value);
    }
    w.endObject();
}

} // namespace mosaic::telemetry
