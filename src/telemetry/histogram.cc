#include "telemetry/histogram.hh"

#include <bit>
#include <string>

namespace mosaic::telemetry
{

void
LatencyHistogram::record(std::uint64_t nanos)
{
    const std::size_t bucket =
        nanos < 2 ? 0
                  : static_cast<std::size_t>(
                        63 - std::countl_zero(nanos));
    ++buckets_[bucket < numBuckets ? bucket : numBuckets - 1];
    ++count_;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < numBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
}

std::uint64_t
LatencyHistogram::bucketFloorNs(std::size_t i)
{
    return i == 0 ? 0 : std::uint64_t{1} << i;
}

std::uint64_t
LatencyHistogram::percentileNs(unsigned permille) const
{
    if (count_ == 0)
        return 0;
    // Rank of the sample at the requested permille (1-based,
    // ceiling), then the floor of the bucket containing it.
    const std::uint64_t rank =
        (count_ * permille + 999) / 1000;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= rank && buckets_[i] > 0)
            return bucketFloorNs(i);
    }
    // permille > 1000 or all-zero tail: the last non-empty bucket.
    for (std::size_t i = numBuckets; i-- > 0;) {
        if (buckets_[i] > 0)
            return bucketFloorNs(i);
    }
    return 0;
}

} // namespace mosaic::telemetry
