/**
 * @file
 * A minimal dependency-free JSON writer for telemetry output.
 *
 * Produces pretty-printed, deterministically formatted JSON: keys are
 * emitted in the order the caller provides them (the registry sorts
 * its names), and doubles always use the shortest round-trippable
 * %.17g form, so the same metric values serialize to the same bytes
 * on every platform and thread count — the property the golden
 * serial-vs-parallel telemetry tests rely on.
 */

#ifndef MOSAIC_TELEMETRY_JSON_WRITER_HH_
#define MOSAIC_TELEMETRY_JSON_WRITER_HH_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mosaic::telemetry
{

/** Escape and double-quote a string for JSON. */
std::string jsonQuote(std::string_view s);

/** Deterministic JSON representation of a double (%.17g; non-finite
 *  values, which JSON cannot express, become null). */
std::string jsonDouble(double v);

/** Streaming JSON writer with 2-space indentation. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit the key of the next member (inside an object). */
    void key(std::string_view name);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view{v}); }
    void value(bool v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view name, const T &v)
    {
        key(name);
        value(v);
    }

  private:
    /** Separator/indent before a new value or key. */
    void prepare();
    void indent();

    struct Level
    {
        bool array = false;
        bool hasMembers = false;
    };

    std::ostream &os_;
    std::vector<Level> stack_;
    bool pendingKey_ = false;
};

} // namespace mosaic::telemetry

#endif // MOSAIC_TELEMETRY_JSON_WRITER_HH_
