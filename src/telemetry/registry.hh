/**
 * @file
 * The telemetry metric registry: a flat, sorted namespace of
 * counters, gauges, and expanded RunningStat summaries with stable
 * hierarchical dot-separated names (see DESIGN.md §9 for the naming
 * scheme).
 *
 * Stat structs register themselves through their `forEachMetric`
 * member (TlbStats, VmStats, SwapDevice, ...) via addStats(), so
 * print sites never hand-copy counters. The registry stores metrics
 * in a sorted map and the JSON writer formats values
 * deterministically, so two runs that produce the same metric values
 * serialize to identical bytes — the basis of the serial-vs-parallel
 * golden telemetry tests.
 */

#ifndef MOSAIC_TELEMETRY_REGISTRY_HH_
#define MOSAIC_TELEMETRY_REGISTRY_HH_

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <variant>

#include "util/stats.hh"

namespace mosaic::telemetry
{

class JsonWriter;

/** A single recorded metric value. */
using MetricValue = std::variant<std::uint64_t, double, std::string>;

/** Flat registry of named metrics. */
class Registry
{
  public:
    /** Record a monotonic count (integral value). */
    void counter(const std::string &name, std::uint64_t v);

    /** Record a point-in-time measurement (floating value). */
    void gauge(const std::string &name, double v);

    /** Record a free-form text annotation. */
    void text(const std::string &name, std::string v);

    /**
     * Expand a RunningStat summary into <name>.count/.mean/.stddev/
     * .min/.max/.sum sub-metrics.
     */
    void stat(const std::string &name, const RunningStat &s);

    /** Type-dispatched record; the glue behind addStats(). */
    void add(const std::string &name, const RunningStat &v)
    {
        stat(name, v);
    }
    void add(const std::string &name, double v) { gauge(name, v); }
    void add(const std::string &name, std::uint64_t v)
    {
        counter(name, v);
    }
    template <typename T>
        requires std::is_integral_v<T>
    void
    add(const std::string &name, T v)
    {
        counter(name, static_cast<std::uint64_t>(v));
    }

    /**
     * Register every metric of a stats struct under
     * "<prefix>.<field>". Any type exposing
     * `forEachMetric(fn(name, value))` works; the stats headers stay
     * free of telemetry dependencies.
     */
    template <typename Stats>
    void
    addStats(const std::string &prefix, const Stats &s)
    {
        s.forEachMetric([&](const char *leaf, const auto &v) {
            add(prefix + "." + leaf, v);
        });
    }

    bool empty() const { return metrics_.empty(); }
    std::size_t size() const { return metrics_.size(); }

    /** Look up a metric; throws std::out_of_range when absent. */
    const MetricValue &at(const std::string &name) const
    {
        return metrics_.at(name);
    }

    bool contains(const std::string &name) const
    {
        return metrics_.contains(name);
    }

    /** Visit all metrics in sorted name order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[name, value] : metrics_)
            fn(name, value);
    }

    /** Write all metrics as one JSON object, sorted by name. */
    void writeTo(JsonWriter &w) const;

  private:
    void insert(const std::string &name, MetricValue v);

    /** Sorted so output order is independent of insertion order. */
    std::map<std::string, MetricValue> metrics_;
};

} // namespace mosaic::telemetry

#endif // MOSAIC_TELEMETRY_REGISTRY_HH_
