#include "serve/daemon.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "fault/checkpoint.hh"
#include "hash/mix.hh"
#include "util/log.hh"
#include "util/parse.hh"

namespace mosaic::serve
{

namespace
{

constexpr const char *manifestMagic = "mosaicd-sessions v1";

/** One parsed manifest line. */
struct ManifestEntry
{
    std::uint64_t id = 0;
    std::string client;
    Asid asid = 0;
    std::uint64_t footprint = 0;
};

Result<ManifestEntry>
parseManifestLine(const std::string &line)
{
    std::istringstream in(line);
    std::string kSession, vId, kClient, vClient, kAsid, vAsid,
        kFootprint, vFootprint;
    if (!(in >> kSession >> vId >> kClient >> vClient >> kAsid >>
            vAsid >> kFootprint >> vFootprint) ||
            kSession != "session" || kClient != "client" ||
            kAsid != "asid" || kFootprint != "footprint") {
        return Status::dataLoss("malformed manifest line '" + line +
                                "'");
    }
    ManifestEntry entry;
    auto id = parseUnsigned("manifest session id", vId);
    auto asid = parseUnsigned("manifest asid", vAsid);
    auto footprint = parseUnsigned("manifest footprint", vFootprint);
    if (!id.ok())
        return Status::dataLoss(id.status().message());
    if (!asid.ok())
        return Status::dataLoss(asid.status().message());
    if (!footprint.ok())
        return Status::dataLoss(footprint.status().message());
    if (asid.value() >
            std::numeric_limits<Asid>::max()) {
        return Status::dataLoss("manifest asid " + vAsid +
                                " exceeds the ASID range");
    }
    entry.id = id.value();
    entry.client = vClient;
    entry.asid = static_cast<Asid>(asid.value());
    entry.footprint = footprint.value();
    return entry;
}

void
sleepBriefly(std::uint64_t micros)
{
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

} // namespace

// ---------------------------------------------------------------
// SessionHandle

Status
SessionHandle::submit(Addr vaddr, bool write)
{
    if (!valid()) {
        return Status::invalidArgument(
            "submit on an invalid session handle");
    }
    return daemon_->submit(*session_, vaddr, write);
}

Status
SessionHandle::submitRetry(Addr vaddr, bool write, Rng &rng,
                           unsigned max_attempts,
                           unsigned base_micros)
{
    return retryWithBackoff(
        [&] { return submit(vaddr, write); }, rng, max_attempts,
        base_micros);
}

std::uint64_t
SessionHandle::nextSeq() const
{
    ensure(valid(), "serve: nextSeq() on an invalid handle");
    return session_->nextSeq;
}

std::uint64_t
SessionHandle::id() const
{
    ensure(valid(), "serve: id() on an invalid handle");
    return session_->id;
}

Asid
SessionHandle::asid() const
{
    ensure(valid(), "serve: asid() on an invalid handle");
    return session_->asid;
}

const std::string &
SessionHandle::client() const
{
    ensure(valid(), "serve: client() on an invalid handle");
    return session_->client;
}

SessionSnapshot
SessionHandle::snapshot() const
{
    ensure(valid(), "serve: snapshot() on an invalid handle");
    return session_->snapshotNow();
}

// ---------------------------------------------------------------
// Lifecycle

Mosaicd::Mosaicd(ServeConfig config)
    : config_(std::move(config)),
      faultPlan_(fault::FaultPlan::fromEnv())
{
}

Mosaicd::~Mosaicd()
{
    if (phase_.load() == Phase::Running)
        stop();
    stopWorkers_.store(true);
    stopWatchdog_.store(true);
    for (auto &slot : workers_) {
        if (slot->thread.joinable())
            slot->thread.join();
    }
    if (watchdog_.joinable())
        watchdog_.join();
    if (manifest_ != nullptr) {
        std::fclose(manifest_);
        manifest_ = nullptr;
    }
}

std::string
Mosaicd::manifestPath() const
{
    return config_.stateDir + "/sessions.meta";
}

Status
Mosaicd::start()
{
    if (phase_.load() != Phase::Fresh)
        return Status::internal("start() on a non-fresh daemon");
    if (config_.stateDir.empty())
        return Status::invalidArgument(
            "ServeConfig.stateDir must be set");
    if (config_.workers == 0)
        return Status::invalidArgument(
            "ServeConfig.workers must be at least 1");
    std::error_code ec;
    std::filesystem::create_directories(config_.stateDir, ec);
    if (ec) {
        return Status::ioError("cannot create state directory '" +
                               config_.stateDir + "' (" +
                               ec.message() + ")");
    }
    if (std::filesystem::exists(manifestPath())) {
        return Status::invalidArgument(
            "state directory '" + config_.stateDir +
            "' already holds a mosaicd manifest; use "
            "recoverAndStart()");
    }
    manifest_ = std::fopen(manifestPath().c_str(), "wb");
    if (manifest_ == nullptr) {
        return Status::ioError("cannot create manifest '" +
                               manifestPath() + "'");
    }
    const std::string header = std::string(manifestMagic) +
                               "\nfingerprint " +
                               config_.fingerprint() + "\n";
    if (std::fwrite(header.data(), 1, header.size(), manifest_) !=
            header.size() ||
            std::fflush(manifest_) != 0) {
        return Status::ioError("cannot write manifest header to '" +
                               manifestPath() + "'");
    }
    spawnThreads();
    phase_.store(Phase::Running);
    return {};
}

Status
Mosaicd::recoverAndStart()
{
    if (phase_.load() != Phase::Fresh)
        return Status::internal(
            "recoverAndStart() on a non-fresh daemon");
    if (config_.stateDir.empty())
        return Status::invalidArgument(
            "ServeConfig.stateDir must be set");
    if (config_.workers == 0)
        return Status::invalidArgument(
            "ServeConfig.workers must be at least 1");

    std::ifstream in(manifestPath());
    if (!in.good()) {
        return Status::notFound("no mosaicd manifest at '" +
                                manifestPath() + "'");
    }
    std::string line;
    if (!std::getline(in, line) || line != manifestMagic) {
        return Status::dataLoss("manifest '" + manifestPath() +
                                "' has a foreign or corrupt header");
    }
    if (!std::getline(in, line) ||
            line != "fingerprint " + config_.fingerprint()) {
        return Status::dataLoss(
            "manifest '" + manifestPath() +
            "' was written under a different configuration");
    }
    std::vector<std::string> lines;
    while (std::getline(in, line)) {
        if (!line.empty())
            lines.push_back(line);
    }
    in.close();

    std::vector<ManifestEntry> entries;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        auto parsed = parseManifestLine(lines[i]);
        if (!parsed.ok()) {
            // A torn LAST line is a connect whose ack never
            // happened: drop it. Torn interior lines mean real
            // corruption.
            if (i + 1 == lines.size())
                break;
            return parsed.status();
        }
        entries.push_back(parsed.value());
    }

    for (const ManifestEntry &entry : entries) {
        auto session = std::make_shared<ServeSession>(
            config_, entry.id, entry.client, entry.asid,
            entry.footprint, &faultPlan_);
        const std::string fp =
            session->sessionFingerprint(config_);

        EpochCheckpoint ckpt;
        bool haveCkpt = false;
        auto ckptRes = fault::readCheckpointFile(
            session->checkpointPath(config_.stateDir),
            fault::epochCheckpointMagic, fp);
        if (ckptRes.ok()) {
            auto parsed = parseEpochCheckpoint(ckptRes.value());
            if (!parsed.ok())
                return parsed.status();
            ckpt = parsed.value();
            haveCkpt = true;
        } else if (ckptRes.status().code() != StatusCode::NotFound) {
            return ckptRes.status();
        }

        auto logRes = readRequestLog(
            session->logPath(config_.stateDir), fp);
        if (!logRes.ok()) {
            if (logRes.status().code() == StatusCode::NotFound) {
                return Status::dataLoss(
                    "session " + std::to_string(entry.id) +
                    " is in the manifest but its request log is "
                    "missing");
            }
            return logRes.status();
        }
        const RequestLogContents &contents = logRes.value();
        const std::uint64_t durable = contents.records.size();
        if (haveCkpt && ckpt.records > durable) {
            return Status::dataLoss(
                "session " + std::to_string(entry.id) +
                ": epoch checkpoint records " +
                std::to_string(ckpt.records) +
                " exceed the durable log (" +
                std::to_string(durable) + ")");
        }
        for (std::uint64_t i = 0; i < durable; ++i) {
            const LogRecord &rec = contents.records[i];
            if (rec.seq != i) {
                return Status::dataLoss(
                    "session " + std::to_string(entry.id) +
                    ": log record " + std::to_string(i) +
                    " carries sequence " + std::to_string(rec.seq));
            }
            session->sim->access(rec.vaddr, rec.write);
            if (haveCkpt && i + 1 == ckpt.records &&
                    session->stateDigest() != ckpt.digest) {
                return Status::dataLoss(
                    "session " + std::to_string(entry.id) +
                    ": replay diverged from the epoch checkpoint "
                    "digest at record " + std::to_string(i + 1));
            }
        }
        session->nextSeq = durable;
        session->submitted.store(durable);
        session->accepted.store(durable);
        session->completed.store(durable);
        session->replayed.store(
            durable - (haveCkpt ? ckpt.records : 0));
        session->epoch = ckpt.epoch;

        Status st = session->log.openForAppend(
            session->logPath(config_.stateDir),
            contents.durableBytes);
        if (!st.ok())
            return st;

        // The recovered state becomes the new checkpoint baseline
        // (an epoch fence at recovery).
        writeEpochCheckpoint(*session);

        {
            std::lock_guard lk(sessionsMutex_);
            sessions_.push_back(session);
            nextSessionId_ =
                std::max(nextSessionId_, entry.id + 1);
            Asid &next = clientNextAsid_[entry.client];
            next = std::max<Asid>(
                next, static_cast<Asid>(entry.asid + 1));
        }
        ++recoveredSessions_;
    }

    // Rewrite the manifest cleanly (drops any torn tail) and leave
    // it open for appends from future connects.
    manifest_ = std::fopen(manifestPath().c_str(), "wb");
    if (manifest_ == nullptr) {
        return Status::ioError("cannot rewrite manifest '" +
                               manifestPath() + "'");
    }
    std::string rewritten = std::string(manifestMagic) +
                            "\nfingerprint " +
                            config_.fingerprint() + "\n";
    for (const ManifestEntry &entry : entries) {
        rewritten += "session " + std::to_string(entry.id) +
                     " client " + entry.client + " asid " +
                     std::to_string(entry.asid) + " footprint " +
                     std::to_string(entry.footprint) + "\n";
    }
    if (std::fwrite(rewritten.data(), 1, rewritten.size(),
                    manifest_) != rewritten.size() ||
            std::fflush(manifest_) != 0) {
        return Status::ioError("cannot rewrite manifest '" +
                               manifestPath() + "'");
    }

    spawnThreads();
    phase_.store(Phase::Running);
    return {};
}

void
Mosaicd::spawnThreads()
{
    stopWorkers_.store(false);
    stopWatchdog_.store(false);
    workers_.clear();
    for (unsigned w = 0; w < config_.workers; ++w) {
        auto slot = std::make_unique<WorkerSlot>();
        slot->injector = fault::FaultInjector(
            &faultPlan_,
            mix64(config_.seed ^ (0xD00D0000ull + w)));
        workers_.push_back(std::move(slot));
    }
    for (unsigned w = 0; w < config_.workers; ++w) {
        workers_[w]->thread =
            std::thread([this, w] { workerMain(w); });
    }
    watchdog_ = std::thread([this] { watchdogMain(); });
}

bool
Mosaicd::running() const
{
    return phase_.load() == Phase::Running;
}

bool
Mosaicd::crashed() const
{
    return phase_.load() == Phase::Crashed;
}

// ---------------------------------------------------------------
// Client path

Result<SessionHandle>
Mosaicd::connect(const std::string &client,
                 std::uint64_t footprint_bytes)
{
    if (phase_.load() != Phase::Running)
        return Status::internal("mosaicd is not running");
    if (client.empty() ||
            client.find_first_of(" \t\r\n") != std::string::npos) {
        return Status::invalidArgument(
            "client name must be non-empty and contain no "
            "whitespace (it is stored in the session manifest)");
    }
    std::lock_guard lk(sessionsMutex_);
    Asid &next = clientNextAsid_[client];
    if (next == 0)
        next = 1;
    if (next == std::numeric_limits<Asid>::max()) {
        return Status::resourceExhausted(
            "client '" + client + "' exhausted its ASID namespace");
    }
    const std::uint64_t id = nextSessionId_++;
    const Asid asid = next++;
    auto session = std::make_shared<ServeSession>(
        config_, id, client, asid,
        footprint_bytes ? footprint_bytes : config_.footprintBytes,
        &faultPlan_);
    Status st = session->log.open(
        session->logPath(config_.stateDir),
        session->sessionFingerprint(config_));
    if (!st.ok())
        return st;
    st = appendManifest(*session);
    if (!st.ok())
        return st;
    sessions_.push_back(session);
    return SessionHandle(this, std::move(session));
}

Result<SessionHandle>
Mosaicd::attach(const std::string &client)
{
    if (phase_.load() != Phase::Running)
        return Status::internal("mosaicd is not running");
    std::lock_guard lk(sessionsMutex_);
    for (auto it = sessions_.rbegin(); it != sessions_.rend();
         ++it) {
        if ((*it)->client == client && !(*it)->retired.load())
            return SessionHandle(this, *it);
    }
    return Status::notFound("no live session for client '" + client +
                            "'");
}

Status
Mosaicd::appendManifest(const ServeSession &session)
{
    const std::string line =
        "session " + std::to_string(session.id) + " client " +
        session.client + " asid " + std::to_string(session.asid) +
        " footprint " + std::to_string(session.footprintBytes) +
        "\n";
    if (manifest_ == nullptr ||
            std::fwrite(line.data(), 1, line.size(), manifest_) !=
                line.size() ||
            std::fflush(manifest_) != 0) {
        return Status::ioError("cannot append to manifest '" +
                               manifestPath() + "'");
    }
    return {};
}

Status
Mosaicd::shedRequest(ServeSession &session, ShedClass cls,
                     Status status)
{
    session.shed[static_cast<std::size_t>(cls)].fetch_add(
        1, std::memory_order_relaxed);
    return status;
}

Status
Mosaicd::submit(ServeSession &session, Addr vaddr, bool write)
{
    std::shared_lock lk(lifecycle_);
    session.submitted.fetch_add(1, std::memory_order_relaxed);
    if (phase_.load() != Phase::Running) {
        return shedRequest(
            session, ShedClass::Lifecycle,
            Status::internal(
                "mosaicd is not running (crashed or stopped)"));
    }
    if (session.closing.load(std::memory_order_acquire)) {
        return shedRequest(session, ShedClass::Lifecycle,
                           Status::internal("session is closing"));
    }
    ShedClass cls = ShedClass::Lifecycle;
    Status st = session.admission.admit(
        session.accepted.load(std::memory_order_relaxed),
        session.clientInjector, &cls);
    if (!st.ok())
        return shedRequest(session, cls, std::move(st));
    if (session.logBroken) {
        return shedRequest(
            session, ShedClass::LogIo,
            Status::ioError("request log is poisoned by an earlier "
                            "append failure; recover the daemon"));
    }
    if (session.ring.freeSlots() == 0) {
        return shedRequest(
            session, ShedClass::Backpressure,
            Status::resourceExhausted(
                "backpressure: session ring is full"));
    }
    const LogRecord rec{LogRecordKind::Translate, write,
                        session.nextSeq, vaddr};
    // The injected append failure fires BEFORE the file is touched,
    // so it is retryable; a real failure below poisons the log (a
    // retry would duplicate the sequence number).
    if (session.clientInjector.shouldFail("serve.log.append")) {
        return shedRequest(
            session, ShedClass::LogIo,
            Status::ioError(
                "injected fault at site 'serve.log.append'"));
    }
    st = session.log.append(rec);
    if (!st.ok()) {
        session.logBroken = true;
        return shedRequest(session, ShedClass::LogIo, std::move(st));
    }
    st = session.log.flush();
    if (!st.ok()) {
        session.logBroken = true;
        return shedRequest(session, ShedClass::LogIo, std::move(st));
    }
    ++session.nextSeq;
    ensure(session.ring.tryPush(rec),
           "serve: ring push failed after the free-slot check");
    session.accepted.fetch_add(1, std::memory_order_release);
    return {};
}

// ---------------------------------------------------------------
// Worker / watchdog

std::vector<std::shared_ptr<ServeSession>>
Mosaicd::sessionsOwnedBy(unsigned slot)
{
    std::vector<std::shared_ptr<ServeSession>> owned;
    std::lock_guard lk(sessionsMutex_);
    for (const auto &session : sessions_) {
        if (session->id % config_.workers == slot)
            owned.push_back(session);
    }
    return owned;
}

void
Mosaicd::writeEpochCheckpoint(ServeSession &session)
{
    ++session.epoch;
    Status st = fault::writeCheckpointFile(
        session.checkpointPath(config_.stateDir),
        fault::epochCheckpointMagic,
        session.sessionFingerprint(config_),
        session.checkpointPayload());
    if (!st.ok()) {
        warn("mosaicd: session " + std::to_string(session.id) +
             " epoch checkpoint failed: " + st.toString());
        return;
    }
    epochCheckpoints_.fetch_add(1, std::memory_order_relaxed);
}

void
Mosaicd::retireSession(ServeSession &session)
{
    writeEpochCheckpoint(session);
    session.log.close();
    session.retired.store(true, std::memory_order_release);
}

void
Mosaicd::stallUntilCleared(WorkerSlot &slot)
{
    slot.wedged.store(true);
    while (!slot.restartRequested.load() && !stopWorkers_.load() &&
           !crashRequested_.load()) {
        sleepBriefly(500);
    }
    slot.wedged.store(false);
}

void
Mosaicd::workerMain(unsigned slot_index)
{
    WorkerSlot &slot = *workers_[slot_index];
    while (!stopWorkers_.load()) {
        slot.heartbeat.fetch_add(1, std::memory_order_relaxed);
        bool didWork = false;
        for (const auto &session : sessionsOwnedBy(slot_index)) {
            if (session->retired.load(std::memory_order_acquire))
                continue;
            LogRecord rec;
            unsigned budget = 64;
            while (budget-- > 0 && session->ring.tryPop(&rec)) {
                session->sim->access(rec.vaddr, rec.write);
                session->completed.fetch_add(
                    1, std::memory_order_release);
                ++session->appliedSinceEpoch;
                didWork = true;
                if (slot.injector.shouldFail(
                        "serve.worker.stall")) {
                    stallUntilCleared(slot);
                    if (slot.restartRequested.load() ||
                            stopWorkers_.load() ||
                            crashRequested_.load())
                        return;
                }
                if (session->appliedSinceEpoch >=
                        config_.epochEvery) {
                    session->appliedSinceEpoch = 0;
                    writeEpochCheckpoint(*session);
                    if (slot.injector.shouldFail("serve.crash")) {
                        // The watchdog finishes the crash; this
                        // worker is already gone.
                        crashRequested_.store(true);
                        return;
                    }
                }
            }
            if (session->closing.load(std::memory_order_acquire) &&
                    !session->retired.load() &&
                    session->ring.empty() &&
                    session->completed.load() ==
                        session->accepted.load(
                            std::memory_order_acquire)) {
                retireSession(*session);
                didWork = true;
            }
        }
        if (stopWorkers_.load() || crashRequested_.load())
            return;
        if (!didWork)
            sleepBriefly(100);
    }
}

bool
Mosaicd::workerHasPending(unsigned slot)
{
    for (const auto &session : sessionsOwnedBy(slot)) {
        if (session->retired.load())
            continue;
        if (!session->ring.empty())
            return true;
        if (session->completed.load() <
                session->accepted.load())
            return true;
    }
    return false;
}

void
Mosaicd::watchdogMain()
{
    const std::uint64_t pollMs =
        config_.watchdogPollMs ? config_.watchdogPollMs : 1;
    while (!stopWatchdog_.load()) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(pollMs));
        if (crashRequested_.load() && !crashDone_.load()) {
            finishCrash(/*from_watchdog=*/true);
            continue;
        }
        if (phase_.load() != Phase::Running ||
                config_.watchdogStallMs == 0)
            continue;
        for (unsigned w = 0; w < workers_.size(); ++w) {
            WorkerSlot &slot = *workers_[w];
            const std::uint64_t hb = slot.heartbeat.load();
            if (hb != slot.lastSeenHeartbeat) {
                slot.lastSeenHeartbeat = hb;
                slot.frozenMs = 0;
                continue;
            }
            if (!slot.wedged.load() && !workerHasPending(w)) {
                slot.frozenMs = 0;
                continue;
            }
            slot.frozenMs += pollMs;
            if (slot.frozenMs < config_.watchdogStallMs)
                continue;
            // Restart the wedged worker: ask it to exit, join,
            // respawn on the same slot (its injector state
            // survives, so limit= rules keep their meaning).
            slot.restartRequested.store(true);
            if (slot.thread.joinable())
                slot.thread.join();
            slot.restartRequested.store(false);
            slot.frozenMs = 0;
            workerRestarts_.fetch_add(1,
                                      std::memory_order_relaxed);
            if (stopWorkers_.load() || crashRequested_.load())
                continue;
            slot.thread = std::thread([this, w] { workerMain(w); });
        }
    }
}

// ---------------------------------------------------------------
// Quiesce / shutdown / crash

Status
Mosaicd::drain(double timeout_seconds)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    for (;;) {
        if (phase_.load() != Phase::Running)
            return Status::internal(
                "drain() on a non-running daemon");
        bool pending = false;
        {
            std::lock_guard lk(sessionsMutex_);
            for (const auto &session : sessions_) {
                if (session->retired.load())
                    continue;
                if (session->completed.load() <
                        session->accepted.load(
                            std::memory_order_acquire)) {
                    pending = true;
                    break;
                }
            }
        }
        if (!pending)
            return {};
        if (std::chrono::steady_clock::now() > deadline) {
            return Status::timeout(
                "drain did not quiesce within " +
                std::to_string(timeout_seconds) + "s");
        }
        sleepBriefly(200);
    }
}

Status
Mosaicd::disconnect(SessionHandle &handle)
{
    if (!handle.valid()) {
        return Status::invalidArgument(
            "disconnect on an invalid session handle");
    }
    auto session = handle.session_;
    session->closing.store(true, std::memory_order_release);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (!session->retired.load(std::memory_order_acquire)) {
        if (phase_.load() != Phase::Running) {
            return Status::internal(
                "daemon left the running state before the session "
                "retired");
        }
        if (std::chrono::steady_clock::now() > deadline) {
            return Status::timeout(
                "session " + std::to_string(session->id) +
                " did not retire within 30s");
        }
        sleepBriefly(200);
    }
    handle = SessionHandle();
    return {};
}

void
Mosaicd::stop()
{
    if (phase_.load() != Phase::Running)
        return;
    (void)drain(30.0);
    stopWorkers_.store(true);
    stopWatchdog_.store(true);
    if (watchdog_.joinable())
        watchdog_.join();
    for (auto &slot : workers_) {
        if (slot->thread.joinable())
            slot->thread.join();
    }
    {
        std::lock_guard lk(sessionsMutex_);
        for (const auto &session : sessions_) {
            if (session->retired.load())
                continue;
            retireSession(*session);
        }
    }
    if (manifest_ != nullptr) {
        std::fclose(manifest_);
        manifest_ = nullptr;
    }
    phase_.store(Phase::Stopped);
}

void
Mosaicd::crashForTesting()
{
    finishCrash(/*from_watchdog=*/false);
}

void
Mosaicd::finishCrash(bool from_watchdog)
{
    if (crashDone_.exchange(true))
        return;
    crashes_.fetch_add(1, std::memory_order_relaxed);
    phase_.store(Phase::Crashed);
    stopWorkers_.store(true);
    stopWatchdog_.store(true);
    if (!from_watchdog && watchdog_.joinable())
        watchdog_.join();
    for (auto &slot : workers_) {
        if (slot->thread.joinable())
            slot->thread.join();
    }
    // All submitters have left (exclusive lock) and all workers are
    // joined: truncate every log to its flushed watermark — exactly
    // what a real process death would have left on disk.
    std::unique_lock lifecycle(lifecycle_);
    std::lock_guard lk(sessionsMutex_);
    for (const auto &session : sessions_) {
        if (!session->retired.load())
            session->log.crash();
    }
    if (manifest_ != nullptr) {
        std::fclose(manifest_);
        manifest_ = nullptr;
    }
}

// ---------------------------------------------------------------
// Introspection

ServeTotals
Mosaicd::totals() const
{
    ServeTotals t;
    {
        std::lock_guard lk(sessionsMutex_);
        t.sessions = sessions_.size();
        for (const auto &session : sessions_) {
            const SessionSnapshot snap = session->snapshotNow();
            t.submitted += snap.submitted;
            t.accepted += snap.accepted;
            t.completed += snap.completed;
            t.replayed += snap.replayed;
            for (std::size_t i = 0; i < numShedClasses; ++i)
                t.shed[i] += snap.shed[i];
        }
    }
    for (std::uint64_t s : t.shed)
        t.shedTotal += s;
    t.workerRestarts = workerRestarts_.load();
    t.epochCheckpoints = epochCheckpoints_.load();
    t.recoveredSessions = recoveredSessions_;
    t.crashes = crashes_.load();
    return t;
}

std::vector<SessionSnapshot>
Mosaicd::snapshots() const
{
    std::vector<SessionSnapshot> out;
    std::lock_guard lk(sessionsMutex_);
    out.reserve(sessions_.size());
    for (const auto &session : sessions_)
        out.push_back(session->snapshotNow());
    return out;
}

Result<std::uint64_t>
Mosaicd::stateDigest(std::uint64_t session_id) const
{
    std::lock_guard lk(sessionsMutex_);
    for (const auto &session : sessions_) {
        if (session->id == session_id)
            return session->stateDigest();
    }
    return Status::notFound("no session with id " +
                            std::to_string(session_id));
}

} // namespace mosaic::serve
