/**
 * @file
 * Admission control for mosaicd (DESIGN.md §16): the decision layer
 * that stands between a client's submit() and the acceptance point
 * (WAL append + ring push). Every rejection is a *typed* Status and
 * is attributed to exactly one ShedClass, so the conservation
 * invariant — submitted == accepted + Σ shed[class] — is checkable
 * at any quiesce point, and the chaos tests can assert that no
 * injected fault ever turns into a silent drop.
 *
 * The token bucket refills on *logical ticks* (one per submit
 * attempt), not wall clock, so rate-limit decisions are a pure
 * function of the submit sequence and replay bit-identically.
 */

#ifndef MOSAIC_SERVE_ADMISSION_HH_
#define MOSAIC_SERVE_ADMISSION_HH_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "fault/fault.hh"
#include "util/random.hh"
#include "util/status.hh"

namespace mosaic::serve
{

/** Why a request was shed; each maps to one Status code. */
enum class ShedClass
{
    /** Session reached its accepted-request quota
     *  (ResourceExhausted). */
    Quota,

    /** Token bucket empty (ResourceExhausted). */
    RateLimit,

    /** SPSC ring full — the bounded queue pushed back
     *  (ResourceExhausted). */
    Backpressure,

    /** Fault site serve.admit fired (Injected). */
    Injected,

    /** Write-ahead append failed — injected at serve.log.append or
     *  a real I/O failure (IoError). */
    LogIo,

    /** Daemon not running, crashed, or session closing
     *  (Internal). */
    Lifecycle,
};

inline constexpr std::size_t numShedClasses = 6;

constexpr const char *
shedClassName(ShedClass c)
{
    switch (c) {
      case ShedClass::Quota: return "quota";
      case ShedClass::RateLimit: return "rateLimit";
      case ShedClass::Backpressure: return "backpressure";
      case ShedClass::Injected: return "injected";
      case ShedClass::LogIo: return "logIo";
      case ShedClass::Lifecycle: return "lifecycle";
    }
    return "unknown";
}

/**
 * Deterministic token bucket: capacity `burst` tokens, refilled
 * `ratePermille` millitokens per admit() call. burst == 0 disables
 * rate limiting entirely (admit() is always true).
 *
 * With burst B and rate R, a client that submits continuously gets
 * its first B requests through, then roughly R per 1000 attempts —
 * the shape of a wall-clock bucket, made replayable.
 */
class TokenBucket
{
  public:
    TokenBucket() = default;

    TokenBucket(std::uint64_t burst, std::uint64_t rate_permille)
        : enabled_(burst > 0),
          capacity_(burst * 1000),
          level_(burst * 1000),
          ratePermille_(rate_permille)
    {
    }

    bool enabled() const { return enabled_; }

    /** One logical tick: refill, then try to take one token. */
    bool
    admit()
    {
        if (!enabled_)
            return true;
        level_ = std::min(capacity_, level_ + ratePermille_);
        if (level_ < 1000)
            return false;
        level_ -= 1000;
        return true;
    }

  private:
    bool enabled_ = false;
    std::uint64_t capacity_ = 0;
    std::uint64_t level_ = 0;
    std::uint64_t ratePermille_ = 0;
};

/**
 * The pre-acceptance checks that do not touch the ring or the log:
 * quota, rate limit, and the serve.admit fault site, in that fixed
 * order (the order is part of the determinism contract — a replayed
 * submit sequence sheds identically). Per-session, client-thread
 * only, like the injector it drives.
 */
class AdmissionController
{
  public:
    AdmissionController() = default;

    AdmissionController(std::uint64_t quota, TokenBucket bucket)
        : quota_(quota), bucket_(bucket)
    {
    }

    /**
     * Ok to proceed toward acceptance, or the typed shed Status with
     * *cls set. @p accepted_so_far is the session's accepted count.
     */
    Status
    admit(std::uint64_t accepted_so_far, fault::FaultInjector &inj,
          ShedClass *cls)
    {
        if (quota_ != 0 && accepted_so_far >= quota_) {
            *cls = ShedClass::Quota;
            return Status::resourceExhausted(
                "session quota of " + std::to_string(quota_) +
                " accepted requests exhausted");
        }
        if (!bucket_.admit()) {
            *cls = ShedClass::RateLimit;
            return Status::resourceExhausted(
                "rate limited: token bucket empty");
        }
        if (inj.shouldFail("serve.admit")) {
            *cls = ShedClass::Injected;
            return fault::injectedStatus("serve.admit");
        }
        return {};
    }

  private:
    std::uint64_t quota_ = 0;
    TokenBucket bucket_;
};

/**
 * True for Status codes a client may retry: transient sheds
 * (backpressure, rate limit), injected faults, and I/O failures
 * (which may be injected-transient; a genuinely broken log keeps
 * failing and the retry loop gives up at maxAttempts). Lifecycle
 * rejections (Internal) and programming errors are not retryable —
 * after a crash the client must re-attach, not hammer a dead daemon.
 */
constexpr bool
retryableShed(StatusCode code)
{
    return code == StatusCode::ResourceExhausted ||
           code == StatusCode::Injected ||
           code == StatusCode::IoError ||
           code == StatusCode::Timeout;
}

/**
 * Client-side retry with jittered exponential backoff: calls
 * @p attempt up to @p max_attempts times, sleeping
 * base·2^k + U[0, base) microseconds between retryable failures.
 * Returns the first Ok, the first non-retryable Status, or the last
 * failure when attempts run out. The jitter draws from the caller's
 * RNG stream so concurrent clients do not retry in lockstep.
 */
template <typename Fn>
Status
retryWithBackoff(Fn &&attempt, Rng &rng,
                 unsigned max_attempts = 16,
                 unsigned base_micros = 50)
{
    Status st;
    for (unsigned a = 0; a < max_attempts; ++a) {
        st = attempt();
        if (st.ok() || !retryableShed(st.code()))
            return st;
        if (a + 1 == max_attempts)
            break;
        const std::uint64_t base = base_micros ? base_micros : 1;
        const std::uint64_t micros =
            (base << std::min(a, 10u)) + rng.below(base);
        std::this_thread::sleep_for(
            std::chrono::microseconds(micros));
    }
    return st;
}

} // namespace mosaic::serve

#endif // MOSAIC_SERVE_ADMISSION_HH_
