#include "serve/session.hh"

#include <sstream>

#include "core/experiments.hh"
#include "util/parse.hh"

namespace mosaic::serve
{

namespace
{

void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= 1099511628211ull;
    }
}

void
fnvMixStats(std::uint64_t &h, const TlbStats &s)
{
    fnvMix(h, s.accesses);
    fnvMix(h, s.hits);
    fnvMix(h, s.misses);
    fnvMix(h, s.subEntryFills);
    fnvMix(h, s.evictions);
    fnvMix(h, s.invalidations);
}

} // namespace

std::string
ServeConfig::fingerprint() const
{
    std::ostringstream out;
    out << "serve tlb=" << tlbEntries << " ways=" << ways
        << " arity=" << arity << " seed=" << seed;
    // Appended only when set so fingerprints (and thus recovery
    // manifests) from before the knob existed remain byte-identical.
    if (vmShards != 0)
        out << " vmshards=" << vmShards;
    return out.str();
}

TranslationSimConfig
sessionSimConfig(const ServeConfig &config, std::uint64_t session_id,
                 Asid asid, std::uint64_t footprint_bytes)
{
    TranslationSimConfig sc;
    sc.memory = ampleGeometry(footprint_bytes);
    sc.tlbEntries = config.tlbEntries;
    sc.waysList = {config.ways};
    sc.arities = {config.arity};
    // Purely request-driven: no background kernel or instruction
    // stream, so replaying the request log alone rebuilds the state.
    sc.kernel.accessEvery = 0;
    sc.instr.enabled = false;
    sc.asid = asid;
    sc.seed = experimentCellSeed(config.seed, session_id);
    sc.vmShards = config.vmShards;
    return sc;
}

ServeSession::ServeSession(const ServeConfig &config,
                           std::uint64_t session_id,
                           std::string client_name, Asid session_asid,
                           std::uint64_t footprint_bytes,
                           const fault::FaultPlan *plan)
    : id(session_id),
      client(std::move(client_name)),
      asid(session_asid),
      footprintBytes(footprint_bytes),
      admission(config.sessionQuota,
                TokenBucket(config.tokenBurst,
                            config.tokenRatePermille)),
      clientInjector(plan,
                     experimentCellSeed(config.seed ^ 0x5E55104Eull,
                                        session_id)),
      ring(config.ringCapacity),
      sim(std::make_unique<TranslationSim>(sessionSimConfig(
          config, session_id, session_asid, footprint_bytes)))
{
}

std::string
ServeSession::logPath(const std::string &dir) const
{
    return dir + "/s" + std::to_string(id) + ".log";
}

std::string
ServeSession::checkpointPath(const std::string &dir) const
{
    return dir + "/s" + std::to_string(id) + ".ckpt";
}

std::string
ServeSession::sessionFingerprint(const ServeConfig &config) const
{
    std::ostringstream out;
    out << config.fingerprint() << " session=" << id << " client="
        << client << " asid=" << asid << " footprint="
        << footprintBytes;
    return out.str();
}

std::uint64_t
ServeSession::stateDigest() const
{
    std::uint64_t h = 1469598103934665603ull;
    fnvMix(h, sim->mappedPages());
    fnvMix(h, sim->totalAccesses());
    fnvMixStats(h, sim->vanillaStats(0));
    fnvMixStats(h, sim->mosaicStats(0, 0));
    return h;
}

std::string
ServeSession::checkpointPayload() const
{
    std::ostringstream out;
    out << "epoch " << epoch << "\n"
        << "records " << completed.load(std::memory_order_acquire)
        << "\n"
        << "digest " << stateDigest() << "\n";
    return out.str();
}

SessionSnapshot
ServeSession::snapshotNow() const
{
    SessionSnapshot snap;
    snap.id = id;
    snap.client = client;
    snap.asid = asid;
    snap.submitted = submitted.load(std::memory_order_acquire);
    snap.accepted = accepted.load(std::memory_order_acquire);
    snap.completed = completed.load(std::memory_order_acquire);
    snap.replayed = replayed.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < numShedClasses; ++i)
        snap.shed[i] = shed[i].load(std::memory_order_acquire);
    snap.closing = closing.load(std::memory_order_acquire);
    snap.retired = retired.load(std::memory_order_acquire);
    return snap;
}

Result<EpochCheckpoint>
parseEpochCheckpoint(const std::string &payload)
{
    std::istringstream in(payload);
    EpochCheckpoint ckpt;
    bool sawEpoch = false, sawRecords = false, sawDigest = false;
    std::string key, value;
    while (in >> key >> value) {
        auto parsed = parseUnsigned("checkpoint field '" + key + "'",
                                    value);
        if (!parsed.ok())
            return Status::dataLoss(parsed.status().message());
        if (key == "epoch") {
            ckpt.epoch = parsed.value();
            sawEpoch = true;
        } else if (key == "records") {
            ckpt.records = parsed.value();
            sawRecords = true;
        } else if (key == "digest") {
            ckpt.digest = parsed.value();
            sawDigest = true;
        } else {
            return Status::dataLoss(
                "epoch checkpoint has unknown field '" + key + "'");
        }
    }
    if (!sawEpoch || !sawRecords || !sawDigest) {
        return Status::dataLoss(
            "epoch checkpoint payload is missing fields");
    }
    return ckpt;
}

} // namespace mosaic::serve
