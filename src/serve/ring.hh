/**
 * @file
 * Bounded single-producer / single-consumer ring buffer: the
 * client→worker request channel of mosaicd (DESIGN.md §16).
 *
 * One session = one client thread (the producer) = one owning worker
 * (the consumer), so SPSC is exactly the required topology and the
 * ring needs no locks: head and tail are each written by one side
 * only, with acquire/release pairing on the other side's load.
 *
 * Capacity is fixed at construction (rounded up to a power of two)
 * and the ring never allocates after that: a full ring is the
 * *backpressure signal* — tryPush fails and the admission layer
 * sheds with a typed Status instead of queueing unboundedly.
 *
 * freeSlots() is exact from the producer's side (only the consumer
 * can make it grow), which is what lets the admission path check
 * capacity, append to the write-ahead log, and then push with a
 * guarantee the push succeeds — the WAL must never record a request
 * the ring then refuses.
 */

#ifndef MOSAIC_SERVE_RING_HH_
#define MOSAIC_SERVE_RING_HH_

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/log.hh"

namespace mosaic::serve
{

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
        : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2}
                                            : capacity)),
          mask_(slots_.size() - 1)
    {
    }

    std::size_t capacity() const { return slots_.size(); }

    /**
     * Producer: append one element; false when full. A false return
     * is the backpressure signal, not an error.
     */
    bool
    tryPush(const T &value)
    {
        const std::uint64_t tail =
            tail_.load(std::memory_order_relaxed);
        if (tail - head_.load(std::memory_order_acquire) >=
                slots_.size())
            return false;
        slots_[tail & mask_] = value;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer: remove the oldest element; false when empty. */
    bool
    tryPop(T *out)
    {
        const std::uint64_t head =
            head_.load(std::memory_order_relaxed);
        if (head == tail_.load(std::memory_order_acquire))
            return false;
        *out = slots_[head & mask_];
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Exact from the producer thread; a lower bound elsewhere. */
    std::size_t
    freeSlots() const
    {
        return slots_.size() -
               static_cast<std::size_t>(
                   tail_.load(std::memory_order_relaxed) -
                   head_.load(std::memory_order_acquire));
    }

    /** Exact from the consumer thread; an upper bound elsewhere. */
    std::size_t
    sizeApprox() const
    {
        return static_cast<std::size_t>(
            tail_.load(std::memory_order_acquire) -
            head_.load(std::memory_order_acquire));
    }

    bool empty() const { return sizeApprox() == 0; }

  private:
    std::vector<T> slots_;
    std::size_t mask_;

    /** Consumer cursor (popped count). */
    alignas(64) std::atomic<std::uint64_t> head_{0};

    /** Producer cursor (pushed count). */
    alignas(64) std::atomic<std::uint64_t> tail_{0};
};

} // namespace mosaic::serve

#endif // MOSAIC_SERVE_RING_HH_
