/**
 * @file
 * Mosaicd: the in-process translation-serving daemon (DESIGN.md
 * §16). Client threads connect(), obtain a SessionHandle, and
 * submit() translation requests; worker threads drain the
 * per-session SPSC rings into each session's own TranslationSim.
 *
 * The acceptance protocol is the heart of the crash story. submit()
 * runs, in order:
 *
 *   1. lifecycle check          (shed Lifecycle, Internal)
 *   2. quota                    (shed Quota, ResourceExhausted)
 *   3. token bucket             (shed RateLimit, ResourceExhausted)
 *   4. fault site serve.admit   (shed Injected, Injected)
 *   5. ring free-slot check     (shed Backpressure, ResourceExhausted)
 *   6. WAL append + flush       (shed LogIo, IoError;
 *                                site serve.log.append)
 *   7. ring push — cannot fail after 5 (SPSC: only this thread
 *      pushes) — and only now the request counts as ACCEPTED.
 *
 * Accepted therefore implies durable: every acked request is in the
 * flushed log prefix, so recovery replays it; everything else was
 * shed with a typed Status the client saw. Conservation —
 * submitted == accepted + Σshed, and accepted == completed after a
 * drain — holds at every quiesce point and is what the chaos tests
 * assert.
 *
 * Recovery (recoverAndStart) rebuilds each session from the state
 * directory: manifest → construct the identical sim (same derived
 * seed) → replay the durable log in order → verify the epoch
 * checkpoint's state digest when replay crosses its boundary →
 * reopen the log for append at the durable offset. The epoch
 * checkpoint is a *logical* snapshot (counters + digest, not sim
 * guts): replay does the state reconstruction, the checkpoint proves
 * it converged, and the records past it are the in-doubt window
 * counted as `replayed`.
 */

#ifndef MOSAIC_SERVE_DAEMON_HH_
#define MOSAIC_SERVE_DAEMON_HH_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hh"
#include "serve/session.hh"
#include "util/status.hh"

namespace mosaic::serve
{

class Mosaicd;

/** Daemon-wide counter totals (sessions summed + daemon events). */
struct ServeTotals
{
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;
    std::uint64_t replayed = 0;
    std::array<std::uint64_t, numShedClasses> shed{};
    std::uint64_t shedTotal = 0;

    std::uint64_t sessions = 0;
    std::uint64_t workerRestarts = 0;
    std::uint64_t epochCheckpoints = 0;
    std::uint64_t recoveredSessions = 0;
    std::uint64_t crashes = 0;
};

/**
 * A client's capability to one session. Copyable; but submit() must
 * be driven by ONE thread at a time — the handle is the producer
 * side of an SPSC ring. Valid handles come from connect()/attach().
 */
class SessionHandle
{
  public:
    SessionHandle() = default;

    bool valid() const { return session_ != nullptr; }

    /** One submit attempt; Ok = accepted (durable), error = typed
     *  shed. */
    Status submit(Addr vaddr, bool write);

    /** submit() wrapped in retryWithBackoff. */
    Status submitRetry(Addr vaddr, bool write, Rng &rng,
                       unsigned max_attempts = 16,
                       unsigned base_micros = 50);

    /** Next sequence number = count of accepted requests; after a
     *  recovery this is the client's resume index into its trace. */
    std::uint64_t nextSeq() const;

    std::uint64_t id() const;
    Asid asid() const;
    const std::string &client() const;

    SessionSnapshot snapshot() const;

  private:
    friend class Mosaicd;

    SessionHandle(Mosaicd *daemon,
                  std::shared_ptr<ServeSession> session)
        : daemon_(daemon), session_(std::move(session))
    {
    }

    Mosaicd *daemon_ = nullptr;
    std::shared_ptr<ServeSession> session_;
};

/** The daemon. One instance per state directory incarnation. */
class Mosaicd
{
  public:
    explicit Mosaicd(ServeConfig config);
    ~Mosaicd();

    Mosaicd(const Mosaicd &) = delete;
    Mosaicd &operator=(const Mosaicd &) = delete;

    /**
     * Fresh start: create the state directory (must not already
     * hold a manifest), write the manifest header, spawn workers +
     * watchdog.
     */
    Status start();

    /**
     * Start from an existing state directory: recover every
     * manifest session (log replay + digest verification), then
     * spawn workers + watchdog. DataLoss when the directory's state
     * cannot be trusted.
     */
    Status recoverAndStart();

    /** New session for @p client (ASIDs are per-client dense).
     *  footprint 0 = config default. */
    Result<SessionHandle> connect(const std::string &client,
                                  std::uint64_t footprint_bytes = 0);

    /** Re-attach to @p client's most recent live session after a
     *  recovery. */
    Result<SessionHandle> attach(const std::string &client);

    /**
     * Epoch-fenced teardown: stop admissions, wait for the owning
     * worker to drain the queue, take the final checkpoint, and
     * close the log. Blocks until the session is retired.
     */
    Status disconnect(SessionHandle &handle);

    /** Block until every accepted request is applied (rings empty).
     *  Timeout when @p timeout_seconds elapse first. */
    Status drain(double timeout_seconds = 30.0);

    /** Graceful shutdown: final checkpoints, logs closed cleanly. */
    void stop();

    /**
     * Simulated process death: workers stop mid-stream, each log is
     * truncated to its flushed watermark, in-memory sims are dead.
     * The object stays inert (submits shed Lifecycle); recovery
     * happens in a NEW Mosaicd over the same state directory.
     */
    void crashForTesting();

    bool running() const;
    bool crashed() const;

    const ServeConfig &config() const { return config_; }

    ServeTotals totals() const;
    std::vector<SessionSnapshot> snapshots() const;

    /**
     * The deterministic state digest of one session. Only
     * meaningful on a quiesced daemon (after drain() or stop());
     * NotFound for unknown ids.
     */
    Result<std::uint64_t> stateDigest(std::uint64_t session_id) const;

  private:
    friend class SessionHandle;

    enum class Phase
    {
        Fresh,
        Running,
        Crashed,
        Stopped,
    };

    struct WorkerSlot
    {
        std::thread thread;
        fault::FaultInjector injector;
        std::atomic<std::uint64_t> heartbeat{0};
        std::atomic<bool> restartRequested{false};
        std::atomic<bool> wedged{false};

        // Watchdog bookkeeping (watchdog thread only).
        std::uint64_t lastSeenHeartbeat = 0;
        std::uint64_t frozenMs = 0;
    };

    Status submit(ServeSession &session, Addr vaddr, bool write);
    Status shedRequest(ServeSession &session, ShedClass cls,
                       Status status);

    void spawnThreads();
    void workerMain(unsigned slot);
    void watchdogMain();
    bool workerHasPending(unsigned slot);
    void stallUntilCleared(WorkerSlot &slot);
    void writeEpochCheckpoint(ServeSession &session);
    void retireSession(ServeSession &session);

    /** Stop workers and truncate logs to their flushed watermarks;
     *  idempotent (first caller wins). @p from_watchdog skips the
     *  watchdog join (it is the caller). */
    void finishCrash(bool from_watchdog);

    Status appendManifest(const ServeSession &session);

    std::vector<std::shared_ptr<ServeSession>>
    sessionsOwnedBy(unsigned slot);

    std::string manifestPath() const;

    ServeConfig config_;
    fault::FaultPlan faultPlan_;

    std::atomic<Phase> phase_{Phase::Fresh};

    /** Serializes submit-side log appends (shared) against crash
     *  truncation (exclusive); never held while blocking. */
    std::shared_mutex lifecycle_;

    mutable std::mutex sessionsMutex_;
    std::vector<std::shared_ptr<ServeSession>> sessions_;
    std::uint64_t nextSessionId_ = 0;
    std::map<std::string, Asid> clientNextAsid_;

    std::FILE *manifest_ = nullptr;

    std::vector<std::unique_ptr<WorkerSlot>> workers_;
    std::thread watchdog_;
    std::atomic<bool> stopWorkers_{false};
    std::atomic<bool> stopWatchdog_{false};
    std::atomic<bool> crashRequested_{false};
    std::atomic<bool> crashDone_{false};

    std::atomic<std::uint64_t> workerRestarts_{0};
    std::atomic<std::uint64_t> epochCheckpoints_{0};
    std::uint64_t recoveredSessions_ = 0;
    std::atomic<std::uint64_t> crashes_{0};
};

/**
 * Register daemon totals under "<prefix>." in any registry-like
 * object with counter(name, value) (the BenchReport metrics
 * contract: monotonic counts only; latency lives in the caller's
 * LatencyHistogram).
 */
template <typename RegistryT>
void
registerServeTotals(RegistryT &r, const ServeTotals &t,
                    const std::string &prefix = "serve")
{
    r.counter(prefix + ".submitted", t.submitted);
    r.counter(prefix + ".accepted", t.accepted);
    r.counter(prefix + ".completed", t.completed);
    r.counter(prefix + ".replayed", t.replayed);
    r.counter(prefix + ".shedTotal", t.shedTotal);
    for (std::size_t i = 0; i < numShedClasses; ++i) {
        r.counter(prefix + ".shed." +
                      shedClassName(static_cast<ShedClass>(i)),
                  t.shed[i]);
    }
    r.counter(prefix + ".sessions", t.sessions);
    r.counter(prefix + ".workerRestarts", t.workerRestarts);
    r.counter(prefix + ".epochCheckpoints", t.epochCheckpoints);
    r.counter(prefix + ".recoveredSessions", t.recoveredSessions);
    r.counter(prefix + ".crashes", t.crashes);
}

} // namespace mosaic::serve

#endif // MOSAIC_SERVE_DAEMON_HH_
