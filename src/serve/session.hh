/**
 * @file
 * mosaicd's session layer (DESIGN.md §16): one ServeSession per
 * connected client stream.
 *
 * A session owns its OWN small TranslationSim. That per-client
 * isolation is the determinism keystone: a session's simulator state
 * depends only on that session's own accepted-request order (which
 * the WAL records densely), never on how worker threads interleave
 * sessions — so counters are bit-identical at any worker count, and
 * crash recovery can rebuild a session by replaying its log alone.
 *
 * Thread roles are strict and mirror the SPSC ring underneath:
 *   - producer state (nextSeq, bucket, injector, WAL appends) is
 *     touched only by the one client thread driving the handle;
 *   - consumer state (sim, epoch counters, checkpoints) only by the
 *     one worker that owns the session;
 *   - the counters crossing that line are atomics.
 */

#ifndef MOSAIC_SERVE_SESSION_HH_
#define MOSAIC_SERVE_SESSION_HH_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/request_log.hh"
#include "core/translation_sim.hh"
#include "fault/fault.hh"
#include "serve/admission.hh"
#include "serve/ring.hh"
#include "util/status.hh"
#include "util/types.hh"

namespace mosaic::serve
{

/** Daemon-wide configuration (shared by every session). */
struct ServeConfig
{
    /** Worker threads; sessions are sharded by id % workers. */
    unsigned workers = 2;

    /** Per-session SPSC ring capacity (rounded up to a power of
     *  two); a full ring is backpressure. */
    std::size_t ringCapacity = 256;

    /** Per-session simulator shape: a single (ways, arity) point,
     *  small TLBs — the serving path wants throughput, not the
     *  full Figure 6 grid. */
    unsigned tlbEntries = 64;
    unsigned ways = 4;
    unsigned arity = 8;

    /** Default per-session footprint hint (sizes the sim's ample
     *  memory); connect() may override per session. */
    std::uint64_t footprintBytes = std::uint64_t{16} << 20;

    /**
     * Shard count of the per-session ride-along VM engine
     * (DESIGN.md §17): 0 (default) = none — the value every
     * existing recovery-drill digest was pinned at. Nonzero attaches
     * a ShardedMosaicVm to each session sim; it joins the config
     * fingerprint (only when set), so changing it across a restart
     * is a detected config mismatch, not silent state drift.
     */
    std::size_t vmShards = 0;

    /** Max accepted requests per session; 0 = unlimited. */
    std::uint64_t sessionQuota = 0;

    /** Token bucket: burst tokens and millitokens refilled per
     *  submit attempt; burst 0 = rate limiting off. */
    std::uint64_t tokenBurst = 0;
    std::uint64_t tokenRatePermille = 0;

    /** Applied requests between per-session epoch checkpoints. */
    std::uint64_t epochEvery = 4096;

    /** Logs, checkpoints, and the session manifest live here. */
    std::string stateDir;

    /** Root seed; per-session sim seeds derive from it by id. */
    std::uint64_t seed = 7;

    /**
     * Watchdog: a worker whose heartbeat freezes for stallMs while
     * it has pending work (or sits in an injected wedge) is
     * restarted. stallMs 0 disables restarts (the watchdog thread
     * still runs — it also finalizes injected crashes).
     */
    std::uint64_t watchdogStallMs = 200;
    std::uint64_t watchdogPollMs = 5;

    /**
     * The replay-relevant configuration, stamped into every log,
     * checkpoint, and manifest header: state from a config whose
     * replay would diverge must refuse to load.
     */
    std::string fingerprint() const;
};

/** Point-in-time counters of one session (all monotonic). */
struct SessionSnapshot
{
    std::uint64_t id = 0;
    std::string client;
    Asid asid = 0;

    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;

    /** Records re-applied from the durable log during recovery that
     *  were past the last checkpoint (the in-doubt window). */
    std::uint64_t replayed = 0;

    std::array<std::uint64_t, numShedClasses> shed{};

    std::uint64_t
    shedTotal() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t s : shed)
            t += s;
        return t;
    }

    bool closing = false;
    bool retired = false;
};

/**
 * One client session. Constructed (and recovered) only by Mosaicd;
 * clients hold SessionHandle. Public members are internal daemon
 * surface — the thread-role comments at the top of the file are the
 * access contract.
 */
struct ServeSession
{
    ServeSession(const ServeConfig &config, std::uint64_t session_id,
                 std::string client_name, Asid session_asid,
                 std::uint64_t footprint_bytes,
                 const fault::FaultPlan *plan);

    // Identity (immutable after construction).
    const std::uint64_t id;
    const std::string client;
    const Asid asid;
    const std::uint64_t footprintBytes;

    // ---- producer state (client thread only) ----

    /** Next sequence number to submit; dense from 0. After
     *  recovery: the durable record count (the resume point). */
    std::uint64_t nextSeq = 0;

    AdmissionController admission;
    fault::FaultInjector clientInjector;

    /** Sticky: a real WAL append/flush failure poisons the log
     *  (retrying would duplicate sequence numbers); every later
     *  submit sheds LogIo until the session is recovered. */
    bool logBroken = false;

    // ---- the channel ----
    SpscRing<LogRecord> ring;
    RequestLogWriter log;

    // ---- consumer state (owning worker thread only) ----
    std::unique_ptr<TranslationSim> sim;
    std::uint64_t appliedSinceEpoch = 0;
    std::uint64_t epoch = 0;

    // ---- cross-thread counters ----
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> replayed{0};
    std::array<std::atomic<std::uint64_t>, numShedClasses> shed{};

    /** Epoch-fenced teardown: closing stops new admissions; the
     *  owning worker retires the session (final checkpoint + log
     *  close) once its queue drains. */
    std::atomic<bool> closing{false};
    std::atomic<bool> retired{false};

    /** Files under the daemon's state directory. */
    std::string logPath(const std::string &dir) const;
    std::string checkpointPath(const std::string &dir) const;

    /** Header fingerprint binding log/checkpoint to this session's
     *  replay-relevant identity (config + id + client + asid +
     *  footprint). */
    std::string sessionFingerprint(const ServeConfig &config) const;

    /**
     * FNV-1a over the sim's deterministic counters (mapped pages,
     * accesses, vanilla + mosaic TLB stats): the value checkpoints
     * record and recovery re-verifies at the checkpoint boundary.
     * Caller must hold the consumer role or have quiesced the
     * daemon.
     */
    std::uint64_t stateDigest() const;

    /** Checkpoint payload: epoch, applied-record count, digest. */
    std::string checkpointPayload() const;

    SessionSnapshot snapshotNow() const;
};

/** Parsed form of a checkpoint payload. */
struct EpochCheckpoint
{
    std::uint64_t epoch = 0;

    /** Records applied when the checkpoint was taken. */
    std::uint64_t records = 0;

    std::uint64_t digest = 0;
};

/** Parse checkpointPayload() text; DataLoss on malformed input. */
Result<EpochCheckpoint> parseEpochCheckpoint(
    const std::string &payload);

/** The per-session simulator configuration (shared by construction
 *  and recovery so both build bit-identical sims). */
TranslationSimConfig sessionSimConfig(const ServeConfig &config,
                                      std::uint64_t session_id,
                                      Asid asid,
                                      std::uint64_t footprint_bytes);

} // namespace mosaic::serve

#endif // MOSAIC_SERVE_SESSION_HH_
