/**
 * @file
 * Controlled physical-memory fragmentation, in the style of the
 * experiments the paper cites (Zhu et al., ATC '20): allocate every
 * frame, then free a chosen fraction *at random*, leaving the free
 * space scattered so that almost no 2 MiB-aligned runs survive.
 */

#ifndef MOSAIC_MEM_FRAGMENTER_HH_
#define MOSAIC_MEM_FRAGMENTER_HH_

#include <vector>

#include "mem/buddy_allocator.hh"
#include "util/random.hh"

namespace mosaic
{

/**
 * Fragment a freshly constructed buddy allocator.
 *
 * @param buddy the allocator; must own all its frames (fresh).
 * @param pinned_fraction fraction of frames left allocated (pinned).
 * @param rng randomness for the scatter.
 * @param granularity_order pinning is done in blocks of
 *        2^granularity_order frames. Order 0 (single frames) kills
 *        every huge-page run at even light pinning; coarser
 *        granularities (e.g. 6 = 256 KiB chunks, typical unmovable
 *        kernel allocations) give the gradual contiguity decay the
 *        defragmentation literature measures.
 * @return the pinned PFNs (the caller may treat them as unmovable
 *         kernel/file pages).
 */
std::vector<Pfn> fragmentMemory(BuddyAllocator &buddy,
                                double pinned_fraction, Rng &rng,
                                unsigned granularity_order = 0);

} // namespace mosaic

#endif // MOSAIC_MEM_FRAGMENTER_HH_
