/**
 * @file
 * The mapping from a virtual page's hash input to its candidate
 * physical frames, and between CPFNs and PFNs (paper §2.2–2.3).
 *
 * Hash outputs 0..d are produced by one tabulation hash with probed
 * multi-output — exactly the circuit the paper puts on the TLB
 * critical path — so the OS allocator and the simulated TLB hardware
 * always agree on candidate buckets.
 *
 * The default hash input is the packed (ASID, VPN) pair. The
 * location-ID sharing extension (paper §2.5) passes a different
 * 64-bit input through the same mapper.
 */

#ifndef MOSAIC_MEM_MOSAIC_MAPPER_HH_
#define MOSAIC_MEM_MOSAIC_MAPPER_HH_

#include <array>
#include <cstdint>
#include <span>

#include "hash/tabulation.hh"
#include "mem/cpfn.hh"
#include "mem/geometry.hh"
#include "util/fastmod.hh"
#include "util/types.hh"

namespace mosaic
{

/** Upper bound on d supported by the fixed-size candidate array. */
constexpr unsigned maxBackChoices = 16;

/** The candidate buckets of one virtual page. */
struct CandidateSet
{
    /** Front-yard bucket index (from hash output 0). */
    std::uint32_t frontBucket = 0;

    /** Backyard bucket indices (from hash outputs 1..d). */
    std::array<std::uint32_t, maxBackChoices> backBuckets{};

    /** Number of valid entries in backBuckets. */
    unsigned numBackChoices = 0;
};

/** Computes candidate sets and converts CPFN <-> PFN. */
class MosaicMapper
{
  public:
    explicit MosaicMapper(const MemoryGeometry &geometry);

    const MemoryGeometry &geometry() const { return geometry_; }
    const CpfnCodec &codec() const { return codec_; }

    /** Candidate buckets for an arbitrary 64-bit hash input. */
    CandidateSet candidates(std::uint64_t hash_input) const;

    /**
     * Candidate sets for a whole block of hash inputs, batched
     * through TabulationHash::probeAllMany so the tabulation tables
     * are streamed once per chunk instead of once per key.
     * Bit-identical to candidates() per input, including the
     * probe-read accounting (numTables reads charged per key).
     */
    void candidatesMany(std::span<const std::uint64_t> hash_inputs,
                        CandidateSet *out) const;

    /** Candidate buckets for a page identified by (ASID, VPN). */
    CandidateSet
    candidates(PageId id) const
    {
        return candidates(packPageId(id));
    }

    /** PFN of a front-yard slot of the candidate set. */
    Pfn
    frontPfn(const CandidateSet &c, unsigned offset) const
    {
        ensure(offset < geometry_.frontSlots,
               "mapper: front offset range");
        return Pfn{c.frontBucket} * geometry_.slotsPerBucket() + offset;
    }

    /** PFN of a backyard slot of the candidate set. */
    Pfn
    backPfn(const CandidateSet &c, unsigned choice,
            unsigned offset) const
    {
        ensure(choice < c.numBackChoices, "mapper: backyard choice range");
        ensure(offset < geometry_.backSlots,
               "mapper: backyard offset range");
        return Pfn{c.backBuckets[choice]} * geometry_.slotsPerBucket() +
               geometry_.frontSlots + offset;
    }

    /** First PFN of the front-yard bucket's slot run. */
    Pfn
    frontBase(const CandidateSet &c) const
    {
        return Pfn{c.frontBucket} * geometry_.slotsPerBucket();
    }

    /** First PFN of a backyard choice's slot run. */
    Pfn
    backBase(const CandidateSet &c, unsigned choice) const
    {
        return Pfn{c.backBuckets[choice]} * geometry_.slotsPerBucket() +
               geometry_.frontSlots;
    }

    /** Decode a valid CPFN to the PFN it denotes. */
    Pfn
    toPfn(const CandidateSet &c, Cpfn cpfn) const
    {
        const CpfnCodec::Decoded d = codec_.decode(cpfn);
        if (d.front)
            return frontPfn(c, d.offset);
        return backPfn(c, d.choice, d.offset);
    }

    /**
     * Encode the CPFN denoting the given PFN, which must be one of
     * the candidate slots (panics otherwise — that would mean the OS
     * placed a page outside its allowed frames).
     */
    Cpfn toCpfn(const CandidateSet &c, Pfn pfn) const;

  private:
    MemoryGeometry geometry_;
    CpfnCodec codec_;
    TabulationHash hasher_;
    FastMod32 bucketMod_;
    FastMod32 slotMod_;
};

} // namespace mosaic

#endif // MOSAIC_MEM_MOSAIC_MAPPER_HH_
