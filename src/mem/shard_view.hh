/**
 * @file
 * Shard-aware views of the iceberg frame pool (DESIGN.md §17).
 *
 * A PoolPartition slices one global MemoryGeometry into N equal,
 * bucket-aligned shard pools. Each shard runs its own full iceberg
 * allocator over a contiguous frame slice, so a shard-local PFN maps
 * to the global pool by a fixed offset and the split is exact:
 * Σ shard frames == global frames, no remainder and no overlap.
 *
 * shardRoute() is the ASID -> home-shard map: Lemire multiply-shift
 * over a strong 64-bit mix, i.e. the high word of mix64(key) * N.
 * Unlike `key % N` it needs no division and spreads sequential ASIDs
 * uniformly for any shard count, not just powers of two.
 */

#ifndef MOSAIC_MEM_SHARD_VIEW_HH_
#define MOSAIC_MEM_SHARD_VIEW_HH_

#include <cstddef>
#include <cstdint>

#include "hash/mix.hh"
#include "mem/geometry.hh"
#include "util/log.hh"
#include "util/types.hh"

namespace mosaic
{

/** Route a 64-bit key to one of @p num_shards shards: the Lemire
 *  multiply-shift reduction of a mixed key. */
inline std::uint32_t
shardRoute(std::uint64_t key, std::uint32_t num_shards)
{
    const unsigned __int128 product =
        static_cast<unsigned __int128>(mix64(key)) * num_shards;
    return static_cast<std::uint32_t>(product >> 64);
}

/** An exact, bucket-aligned split of one frame pool into N shards. */
struct PoolPartition
{
    std::size_t numShards = 1;
    std::size_t framesPerShard = 0;

    /**
     * Build the partition for @p global split @p shards ways. Fatal
     * when the pool cannot be split exactly into valid per-shard
     * geometries (each shard needs a bucket-aligned slice with more
     * buckets than hash choices).
     */
    static PoolPartition
    split(const MemoryGeometry &global, std::size_t shards)
    {
        ensure(shards >= 1, "shard_view: need at least one shard");
        ensure(global.numFrames % shards == 0,
               "shard_view: frames must split evenly across shards");
        PoolPartition p;
        p.numShards = shards;
        p.framesPerShard = global.numFrames / shards;
        // Per-shard geometry must itself be valid; this catches both
        // misaligned splits and splits too fine for the hash choices.
        p.shardGeometry(global, 0).check();
        return p;
    }

    /** The geometry of one shard's slice: the global shape with
     *  numFrames cut down to the slice. All shards are identical in
     *  shape, so shard index only matters for documentation. */
    MemoryGeometry
    shardGeometry(const MemoryGeometry &global, std::size_t shard) const
    {
        ensure(shard < numShards, "shard_view: shard out of range");
        MemoryGeometry g = global;
        g.numFrames = framesPerShard;
        return g;
    }

    /** Global PFN of @p local in @p shard. */
    Pfn
    toGlobal(std::size_t shard, Pfn local) const
    {
        return static_cast<Pfn>(shard * framesPerShard + local);
    }

    /** Shard-local PFN of a global PFN. */
    Pfn
    toLocal(Pfn global) const
    {
        return static_cast<Pfn>(global % framesPerShard);
    }

    /** Which shard a global PFN belongs to. */
    std::size_t
    shardOf(Pfn global) const
    {
        return static_cast<std::size_t>(global / framesPerShard);
    }
};

} // namespace mosaic

#endif // MOSAIC_MEM_SHARD_VIEW_HH_
