#include "mem/mosaic_mapper.hh"

#include <span>

namespace mosaic
{

MosaicMapper::MosaicMapper(const MemoryGeometry &geometry)
    : geometry_(geometry), codec_(geometry), hasher_(geometry.hashSeed)
{
    geometry_.check();
    ensure(geometry_.backChoices <= maxBackChoices,
           "mapper: d exceeds maxBackChoices");
    ensure(geometry_.numFrames <= UINT32_MAX,
           "mapper: PFNs must fit 32 bits");
    bucketMod_ = FastMod32(
        static_cast<std::uint32_t>(geometry_.numBuckets()));
    slotMod_ = FastMod32(geometry_.slotsPerBucket());
}

CandidateSet
MosaicMapper::candidates(std::uint64_t hash_input) const
{
    CandidateSet out;
    std::array<std::uint32_t, maxBackChoices + 1> hashes;
    const unsigned n = geometry_.backChoices + 1;
    // The paper default (d = 6, so 7 outputs) fits one batched pass:
    // 8 table reads total instead of 8 per output. Wider d falls back
    // to the per-output path; both are bit-identical.
    if (n <= TabulationHash::maxProbes)
        hasher_.probeAll(hash_input, std::span(hashes.data(), n));
    else
        hasher_.hashMany(hash_input, std::span(hashes.data(), n));

    out.frontBucket = bucketMod_.mod(hashes[0]);
    out.numBackChoices = geometry_.backChoices;
    for (unsigned k = 0; k < geometry_.backChoices; ++k)
        out.backBuckets[k] = bucketMod_.mod(hashes[k + 1]);
    return out;
}

Cpfn
MosaicMapper::toCpfn(const CandidateSet &c, Pfn pfn) const
{
    // PFNs fit 32 bits (the ctor checks), so Lemire division is
    // exact and the hot path avoids two div instructions.
    const auto n = static_cast<std::uint32_t>(pfn);
    const std::uint32_t bucket = slotMod_.div(n);
    const unsigned slot = slotMod_.mod(n);

    if (slot < geometry_.frontSlots) {
        if (bucket == c.frontBucket)
            return codec_.encodeFront(slot);
    } else {
        const unsigned offset = slot - geometry_.frontSlots;
        for (unsigned k = 0; k < c.numBackChoices; ++k) {
            if (c.backBuckets[k] == bucket)
                return codec_.encodeBack(k, offset);
        }
    }
    panic("mapper: PFN is not a candidate slot of this page");
}

} // namespace mosaic
