#include "mem/mosaic_mapper.hh"

#include <span>

namespace mosaic
{

MosaicMapper::MosaicMapper(const MemoryGeometry &geometry)
    : geometry_(geometry), codec_(geometry), hasher_(geometry.hashSeed)
{
    geometry_.check();
    ensure(geometry_.backChoices <= maxBackChoices,
           "mapper: d exceeds maxBackChoices");
}

CandidateSet
MosaicMapper::candidates(std::uint64_t hash_input) const
{
    CandidateSet out;
    std::array<std::uint32_t, maxBackChoices + 1> hashes;
    const unsigned n = geometry_.backChoices + 1;
    hasher_.hashMany(hash_input, std::span(hashes.data(), n));

    const auto buckets = static_cast<std::uint32_t>(geometry_.numBuckets());
    out.frontBucket = hashes[0] % buckets;
    out.numBackChoices = geometry_.backChoices;
    for (unsigned k = 0; k < geometry_.backChoices; ++k)
        out.backBuckets[k] = hashes[k + 1] % buckets;
    return out;
}

Pfn
MosaicMapper::frontPfn(const CandidateSet &c, unsigned offset) const
{
    ensure(offset < geometry_.frontSlots, "mapper: front offset range");
    return Pfn{c.frontBucket} * geometry_.slotsPerBucket() + offset;
}

Pfn
MosaicMapper::backPfn(const CandidateSet &c, unsigned choice,
                      unsigned offset) const
{
    ensure(choice < c.numBackChoices, "mapper: backyard choice range");
    ensure(offset < geometry_.backSlots, "mapper: backyard offset range");
    return Pfn{c.backBuckets[choice]} * geometry_.slotsPerBucket() +
           geometry_.frontSlots + offset;
}

Pfn
MosaicMapper::toPfn(const CandidateSet &c, Cpfn cpfn) const
{
    const CpfnCodec::Decoded d = codec_.decode(cpfn);
    if (d.front)
        return frontPfn(c, d.offset);
    return backPfn(c, d.choice, d.offset);
}

Cpfn
MosaicMapper::toCpfn(const CandidateSet &c, Pfn pfn) const
{
    const unsigned spb = geometry_.slotsPerBucket();
    const auto bucket = static_cast<std::uint32_t>(pfn / spb);
    const auto slot = static_cast<unsigned>(pfn % spb);

    if (slot < geometry_.frontSlots) {
        if (bucket == c.frontBucket)
            return codec_.encodeFront(slot);
    } else {
        const unsigned offset = slot - geometry_.frontSlots;
        for (unsigned k = 0; k < c.numBackChoices; ++k) {
            if (c.backBuckets[k] == bucket)
                return codec_.encodeBack(k, offset);
        }
    }
    panic("mapper: PFN is not a candidate slot of this page");
}

} // namespace mosaic
