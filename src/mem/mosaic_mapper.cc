#include "mem/mosaic_mapper.hh"

#include <algorithm>
#include <span>

namespace mosaic
{

MosaicMapper::MosaicMapper(const MemoryGeometry &geometry)
    : geometry_(geometry), codec_(geometry), hasher_(geometry.hashSeed)
{
    geometry_.check();
    ensure(geometry_.backChoices <= maxBackChoices,
           "mapper: d exceeds maxBackChoices");
    ensure(geometry_.numFrames <= UINT32_MAX,
           "mapper: PFNs must fit 32 bits");
    bucketMod_ = FastMod32(
        static_cast<std::uint32_t>(geometry_.numBuckets()));
    slotMod_ = FastMod32(geometry_.slotsPerBucket());
}

CandidateSet
MosaicMapper::candidates(std::uint64_t hash_input) const
{
    CandidateSet out;
    std::array<std::uint32_t, maxBackChoices + 1> hashes;
    const unsigned n = geometry_.backChoices + 1;
    // The paper default (d = 6, so 7 outputs) fits one batched pass:
    // 8 table reads total instead of 8 per output. Wider d falls back
    // to the per-output path; both are bit-identical.
    if (n <= TabulationHash::maxProbes)
        hasher_.probeAll(hash_input, std::span(hashes.data(), n));
    else
        hasher_.hashMany(hash_input, std::span(hashes.data(), n));

    out.frontBucket = bucketMod_.mod(hashes[0]);
    out.numBackChoices = geometry_.backChoices;
    for (unsigned k = 0; k < geometry_.backChoices; ++k)
        out.backBuckets[k] = bucketMod_.mod(hashes[k + 1]);
    return out;
}

void
MosaicMapper::candidatesMany(std::span<const std::uint64_t> hash_inputs,
                             CandidateSet *out) const
{
    const unsigned n = geometry_.backChoices + 1;
    if (n > TabulationHash::maxProbes) {
        // Wide d has no batched probe port; per-key path is already
        // the scalar behaviour.
        for (std::size_t i = 0; i < hash_inputs.size(); ++i)
            out[i] = candidates(hash_inputs[i]);
        return;
    }
    // Stack chunks keep the hash scratch cache-resident regardless of
    // the caller's block size.
    constexpr std::size_t chunk = 32;
    std::array<std::uint32_t, chunk *(maxBackChoices + 1)> hashes;
    for (std::size_t base = 0; base < hash_inputs.size(); base += chunk) {
        const std::size_t count =
            std::min(chunk, hash_inputs.size() - base);
        hasher_.probeAllMany(hash_inputs.subspan(base, count), n,
                             hashes.data());
        for (std::size_t i = 0; i < count; ++i) {
            CandidateSet &c = out[base + i];
            const std::uint32_t *h = &hashes[i * n];
            c.frontBucket = bucketMod_.mod(h[0]);
            c.numBackChoices = geometry_.backChoices;
            for (unsigned k = 0; k < geometry_.backChoices; ++k)
                c.backBuckets[k] = bucketMod_.mod(h[k + 1]);
        }
    }
}

Cpfn
MosaicMapper::toCpfn(const CandidateSet &c, Pfn pfn) const
{
    // PFNs fit 32 bits (the ctor checks), so Lemire division is
    // exact and the hot path avoids two div instructions.
    const auto n = static_cast<std::uint32_t>(pfn);
    const std::uint32_t bucket = slotMod_.div(n);
    const unsigned slot = slotMod_.mod(n);

    if (slot < geometry_.frontSlots) {
        if (bucket == c.frontBucket)
            return codec_.encodeFront(slot);
    } else {
        const unsigned offset = slot - geometry_.frontSlots;
        for (unsigned k = 0; k < c.numBackChoices; ++k) {
            if (c.backBuckets[k] == bucket)
                return codec_.encodeBack(k, offset);
        }
    }
    panic("mapper: PFN is not a candidate slot of this page");
}

} // namespace mosaic
