#include "mem/buddy_allocator.hh"

#include <algorithm>

namespace mosaic
{

BuddyAllocator::BuddyAllocator(std::size_t num_frames)
    : numFrames_(num_frames),
      blocks_(num_frames),
      heads_(maxOrder + 1, invalidPfn)
{
    const std::size_t top = std::size_t{1} << maxOrder;
    ensure(num_frames >= top && num_frames % top == 0,
           "buddy: numFrames must be a multiple of the top order");
    for (Pfn pfn = 0; pfn < num_frames; pfn += top)
        pushFree(pfn, maxOrder);
    freeFrames_ = num_frames;
}

void
BuddyAllocator::pushFree(Pfn pfn, unsigned order)
{
    Block &b = blocks_[pfn];
    b.freeOrder = static_cast<std::uint8_t>(order);
    b.prev = invalidPfn;
    b.next = heads_[order];
    if (heads_[order] != invalidPfn)
        blocks_[heads_[order]].prev = pfn;
    heads_[order] = pfn;
}

void
BuddyAllocator::removeFree(Pfn pfn, unsigned order)
{
    Block &b = blocks_[pfn];
    ensure(b.freeOrder == order, "buddy: free-list order mismatch");
    if (b.prev != invalidPfn)
        blocks_[b.prev].next = b.next;
    else
        heads_[order] = b.next;
    if (b.next != invalidPfn)
        blocks_[b.next].prev = b.prev;
    b.freeOrder = notFree;
}

std::optional<Pfn>
BuddyAllocator::allocate(unsigned order)
{
    ensure(order <= maxOrder, "buddy: order out of range");

    unsigned found = order;
    while (found <= maxOrder && heads_[found] == invalidPfn)
        ++found;
    if (found > maxOrder)
        return std::nullopt;

    Pfn pfn = heads_[found];
    removeFree(pfn, found);

    // Split down to the requested order, freeing the upper halves.
    while (found > order) {
        --found;
        pushFree(pfn + (Pfn{1} << found), found);
    }
    freeFrames_ -= std::size_t{1} << order;
    return pfn;
}

bool
BuddyAllocator::isFree(Pfn pfn) const
{
    ensure(pfn < numFrames_, "buddy: PFN out of range");
    for (unsigned order = 0; order <= maxOrder; ++order) {
        const Pfn head = pfn & ~((Pfn{1} << order) - 1);
        if (blocks_[head].freeOrder == order)
            return true;
    }
    return false;
}

bool
BuddyAllocator::allocateSpecific(Pfn pfn)
{
    ensure(pfn < numFrames_, "buddy: PFN out of range");
    for (unsigned order = 0; order <= maxOrder; ++order) {
        const Pfn head = pfn & ~((Pfn{1} << order) - 1);
        if (blocks_[head].freeOrder != order)
            continue;
        removeFree(head, order);
        // Split the block, returning every half not containing pfn.
        Pfn cur = head;
        for (unsigned o = order; o-- > 0;) {
            const Pfn upper = cur + (Pfn{1} << o);
            if (pfn >= upper) {
                pushFree(cur, o);
                cur = upper;
            } else {
                pushFree(upper, o);
            }
        }
        --freeFrames_;
        return true;
    }
    return false;
}

void
BuddyAllocator::free(Pfn pfn, unsigned order)
{
    ensure(order <= maxOrder, "buddy: order out of range");
    ensure(pfn % (Pfn{1} << order) == 0, "buddy: misaligned free");
    ensure(pfn < numFrames_, "buddy: PFN out of range");
    ensure(blocks_[pfn].freeOrder == notFree, "buddy: double free");

    freeFrames_ += std::size_t{1} << order;
    while (order < maxOrder) {
        const Pfn buddy = pfn ^ (Pfn{1} << order);
        if (blocks_[buddy].freeOrder != order)
            break;
        removeFree(buddy, order);
        pfn = std::min(pfn, buddy);
        ++order;
    }
    pushFree(pfn, order);
}

std::size_t
BuddyAllocator::freeBlocks(unsigned order) const
{
    std::size_t count = 0;
    for (Pfn pfn = heads_[order]; pfn != invalidPfn;
         pfn = blocks_[pfn].next)
        ++count;
    return count;
}

int
BuddyAllocator::largestFreeOrder() const
{
    for (int order = maxOrder; order >= 0; --order) {
        if (heads_[order] != invalidPfn)
            return order;
    }
    return -1;
}

double
BuddyAllocator::fragmentationIndex() const
{
    if (freeFrames_ == 0)
        return 0.0;
    // Free frames sitting in blocks smaller than a huge page.
    std::size_t small_free = 0;
    for (unsigned order = 0; order < maxOrder; ++order)
        small_free += freeBlocks(order) << order;
    return static_cast<double>(small_free) /
           static_cast<double>(freeFrames_);
}

} // namespace mosaic
