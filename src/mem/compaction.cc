#include "mem/compaction.hh"

#include <algorithm>

#include "util/log.hh"

namespace mosaic
{

CompactionPlan
planCompaction(std::size_t num_frames, const std::vector<bool> &pinned,
               const std::vector<bool> &movable,
               std::uint64_t regions_wanted)
{
    ensure(num_frames % 512 == 0, "compaction: frames % 512");
    ensure(pinned.size() == num_frames && movable.size() == num_frames,
           "compaction: flag vectors must cover all frames");

    CompactionPlan plan;
    plan.regionsRequested = regions_wanted;

    // Classify windows: blocked (any pin), else count the movable
    // pages that would have to migrate out.
    const std::size_t windows = num_frames / 512;
    std::vector<std::uint32_t> cost;
    cost.reserve(windows);
    std::size_t free_frames = 0;
    for (std::size_t w = 0; w < windows; ++w) {
        bool blocked = false;
        std::uint32_t movers = 0;
        for (std::size_t i = w * 512; i < (w + 1) * 512; ++i) {
            if (pinned[i]) {
                blocked = true;
            } else if (movable[i]) {
                ++movers;
            } else {
                ++free_frames;
            }
        }
        if (blocked)
            ++plan.windowsBlockedByPins;
        else
            cost.push_back(movers);
    }
    std::sort(cost.begin(), cost.end());

    // Claim the cheapest windows. Each claimed window's movers need
    // destination frames *outside* the claimed set; the free frames
    // inside a claimed window are consumed by the region itself.
    std::size_t free_outside = free_frames;
    for (const std::uint32_t movers : cost) {
        if (plan.regionsAchievable >= regions_wanted)
            break;
        // Free frames inside this window stop being destinations.
        const std::size_t window_free = 512 - movers;
        if (free_outside < window_free + movers)
            break; // nowhere left to migrate to
        free_outside -= window_free + movers;
        plan.pageCopies += movers;
        ++plan.regionsAchievable;
    }
    return plan;
}

} // namespace mosaic
