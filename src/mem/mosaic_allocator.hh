/**
 * @file
 * Mosaic frame allocation: the iceberg placement policy over the
 * frame table (paper §2.3–2.4).
 *
 * Allocation order for a page's candidate set:
 *  1. a free slot in the front-yard bucket;
 *  2. the oldest ghost in the front-yard bucket (Horizon LRU treats
 *     ghost frames as free);
 *  3. power-of-d-choices over the backyard buckets, where a bucket's
 *     occupancy counts only live (non-ghost) pages; within the chosen
 *     bucket, a free slot, else the oldest ghost.
 *
 * When every candidate slot holds a live page, the allocation is an
 * *associativity conflict* and the caller must evict a live page —
 * normally the least-recently-used candidate (Horizon LRU, §2.4).
 */

#ifndef MOSAIC_MEM_MOSAIC_ALLOCATOR_HH_
#define MOSAIC_MEM_MOSAIC_ALLOCATOR_HH_

#include <algorithm>
#include <bit>
#include <optional>
#include <type_traits>

#include "mem/frame_table.hh"
#include "mem/mosaic_mapper.hh"
#include "util/bitvec.hh"

namespace mosaic
{

/** One placement decision made by the allocator. */
struct Placement
{
    /** The chosen frame. */
    Pfn pfn = invalidPfn;

    /** Its compressed encoding relative to the page's candidates. */
    Cpfn cpfn = 0;

    /** True when a ghost page occupies the frame and must be evicted
     *  before the frame can be reused. */
    bool evictsGhost = false;
};

/**
 * Stateless placement policy; all mutable state lives in the
 * FrameTable owned by the caller.
 */
class MosaicAllocator
{
  public:
    explicit MosaicAllocator(const MemoryGeometry &geometry)
        : mapper_(geometry)
    {
    }

    const MosaicMapper &mapper() const { return mapper_; }
    const MemoryGeometry &geometry() const { return mapper_.geometry(); }

    /**
     * Choose a frame for a page with the given candidate set.
     *
     * @param c candidate buckets of the page being allocated.
     * @param frames the frame table to inspect.
     * @param is_ghost predicate: is this used frame a ghost?
     * @return the placement, or nullopt on an associativity conflict.
     */
    template <typename GhostPred>
        requires std::is_invocable_r_v<bool, GhostPred, const Frame &>
    std::optional<Placement>
    place(const CandidateSet &c, const FrameTable &frames,
          GhostPred &&is_ghost) const
    {
        const MemoryGeometry &g = geometry();

        // 1. Free front-yard slot.
        std::optional<Placement> front_ghost;
        for (unsigned off = 0; off < g.frontSlots; ++off) {
            const Pfn pfn = mapper_.frontPfn(c, off);
            const Frame &f = frames.frame(pfn);
            if (!f.used) {
                return Placement{pfn, mapper_.codec().encodeFront(off),
                                 false};
            }
            if (is_ghost(f)) {
                if (!front_ghost ||
                        f.lastAccess <
                            frames.frame(front_ghost->pfn).lastAccess) {
                    front_ghost = Placement{
                        pfn, mapper_.codec().encodeFront(off), true};
                }
            }
        }

        // 2. Oldest front-yard ghost.
        if (front_ghost)
            return front_ghost;

        // 3. Power-of-d-choices over backyards; ghosts don't count
        //    towards occupancy.
        unsigned best_choice = c.numBackChoices;
        unsigned best_live = g.backSlots + 1;
        for (unsigned k = 0; k < c.numBackChoices; ++k) {
            unsigned live = 0;
            for (unsigned off = 0; off < g.backSlots; ++off) {
                const Frame &f = frames.frame(mapper_.backPfn(c, k, off));
                if (f.used && !is_ghost(f))
                    ++live;
            }
            if (live < best_live) {
                best_live = live;
                best_choice = k;
            }
        }
        if (best_choice == c.numBackChoices || best_live >= g.backSlots)
            return std::nullopt; // associativity conflict

        std::optional<Placement> back_ghost;
        for (unsigned off = 0; off < g.backSlots; ++off) {
            const Pfn pfn = mapper_.backPfn(c, best_choice, off);
            const Frame &f = frames.frame(pfn);
            if (!f.used) {
                return Placement{
                    pfn, mapper_.codec().encodeBack(best_choice, off),
                    false};
            }
            if (is_ghost(f)) {
                if (!back_ghost ||
                        f.lastAccess <
                            frames.frame(back_ghost->pfn).lastAccess) {
                    back_ghost = Placement{
                        pfn, mapper_.codec().encodeBack(best_choice, off),
                        true};
                }
            }
        }
        ensure(back_ghost.has_value(),
               "mosaic_allocator: occupancy accounting out of sync");
        return back_ghost;
    }

    /**
     * Bitmap-driven placement: decision-for-decision identical to the
     * predicate overload when `ghosts.test(pfn) == is_ghost(frame)`
     * for every used frame, but free-slot choice, ghost discovery,
     * and power-of-d occupancy counts run on the frame table's used
     * bits (countr_zero/popcount) instead of per-Frame loads; only
     * ghost slots' timestamps are read, from the dense tick array.
     *
     * @param ghosts PFN-indexed ghost bits; a set bit marks a used
     *        frame as a ghost (DESIGN.md §12). Maintained by the
     *        eviction policy (MosaicVm).
     */
    std::optional<Placement>
    place(const CandidateSet &c, const FrameTable &frames,
          const BitVec &ghosts) const
    {
        return placeBits(c, frames, &ghosts);
    }

    /** Bitmap-driven placement with no ghosts: equivalent to the
     *  predicate overload with an always-false predicate. */
    std::optional<Placement>
    place(const CandidateSet &c, const FrameTable &frames) const
    {
        return placeBits(c, frames, nullptr);
    }

    /** Visit every candidate slot of a page as (pfn, cpfn). */
    template <typename Visitor>
    void
    forEachCandidate(const CandidateSet &c, Visitor &&visit) const
    {
        const MemoryGeometry &g = geometry();
        for (unsigned off = 0; off < g.frontSlots; ++off) {
            visit(mapper_.frontPfn(c, off),
                  mapper_.codec().encodeFront(off));
        }
        for (unsigned k = 0; k < c.numBackChoices; ++k) {
            for (unsigned off = 0; off < g.backSlots; ++off) {
                visit(mapper_.backPfn(c, k, off),
                      mapper_.codec().encodeBack(k, off));
            }
        }
    }

    /**
     * The least-recently-used *used* candidate slot — the victim on
     * an associativity conflict. Panics if every candidate is free
     * (callers only invoke this after place() failed).
     */
    Placement
    lruCandidate(const CandidateSet &c, const FrameTable &frames) const
    {
        const MemoryGeometry &g = geometry();
        std::optional<Placement> best;
        Tick best_tick = invalidTick;
        // Same visit order and strict-< tie-break as the historical
        // forEachCandidate scan, but only used slots' ticks are read.
        const auto consider = [&](Pfn base, unsigned width, auto encode) {
            forEachUsed(frames, base, width, [&](unsigned off) {
                const Tick t = frames.lastAccessOf(base + off);
                if (t < best_tick) {
                    best_tick = t;
                    best = Placement{base + off, encode(off), false};
                }
            });
        };
        consider(mapper_.frontBase(c), g.frontSlots, [&](unsigned off) {
            return mapper_.codec().encodeFront(off);
        });
        for (unsigned k = 0; k < c.numBackChoices; ++k) {
            consider(mapper_.backBase(c, k), g.backSlots,
                     [&](unsigned off) {
                         return mapper_.codec().encodeBack(k, off);
                     });
        }
        ensure(best.has_value(), "mosaic_allocator: no LRU candidate");
        return *best;
    }

  private:
    /** One yard decision: offset of the chosen slot in the bucket. */
    struct YardPick
    {
        unsigned offset = 0;
        bool evictsGhost = false;
    };

    static std::uint64_t
    windowMask(unsigned n)
    {
        return n >= 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << n) - 1;
    }

    /** Visit the offsets of used slots in [base, base + width),
     *  ascending, via the frame table's occupancy bits. */
    template <typename Fn>
    static void
    forEachUsed(const FrameTable &frames, Pfn base, unsigned width,
                Fn &&fn)
    {
        for (unsigned w = 0; w < width; w += 64) {
            const unsigned n = std::min(64u, width - w);
            std::uint64_t used = frames.usedWindow(base + w, n);
            while (used != 0) {
                fn(w + static_cast<unsigned>(std::countr_zero(used)));
                used &= used - 1;
            }
        }
    }

    /**
     * One bucket's allocation decision: the first free slot, else the
     * oldest ghost (earliest offset on equal ticks), else nullopt —
     * the same preference order as the predicate scan.
     */
    std::optional<YardPick>
    yardPick(const FrameTable &frames, const BitVec *ghosts, Pfn base,
             unsigned width) const
    {
        for (unsigned w = 0; w < width; w += 64) {
            const unsigned n = std::min(64u, width - w);
            const std::uint64_t free =
                ~frames.usedWindow(base + w, n) & windowMask(n);
            if (free != 0) {
                return YardPick{
                    w + static_cast<unsigned>(std::countr_zero(free)),
                    false};
            }
        }
        if (ghosts == nullptr)
            return std::nullopt;
        std::optional<unsigned> best;
        Tick best_tick = 0;
        for (unsigned w = 0; w < width; w += 64) {
            const unsigned n = std::min(64u, width - w);
            std::uint64_t g = ghosts->window(base + w, n) &
                              frames.usedWindow(base + w, n);
            while (g != 0) {
                const unsigned off =
                    w + static_cast<unsigned>(std::countr_zero(g));
                g &= g - 1;
                const Tick t = frames.lastAccessOf(base + off);
                if (!best || t < best_tick) {
                    best = off;
                    best_tick = t;
                }
            }
        }
        if (!best)
            return std::nullopt;
        return YardPick{*best, true};
    }

    /** Live (used and non-ghost) slots in [base, base + width). */
    unsigned
    liveCount(const FrameTable &frames, const BitVec *ghosts, Pfn base,
              unsigned width) const
    {
        unsigned live = 0;
        for (unsigned w = 0; w < width; w += 64) {
            const unsigned n = std::min(64u, width - w);
            std::uint64_t used = frames.usedWindow(base + w, n);
            if (ghosts != nullptr)
                used &= ~ghosts->window(base + w, n);
            live += static_cast<unsigned>(std::popcount(used));
        }
        return live;
    }

    std::optional<Placement>
    placeBits(const CandidateSet &c, const FrameTable &frames,
              const BitVec *ghosts) const
    {
        const MemoryGeometry &g = geometry();

        // 1./2. Free front-yard slot, else oldest front-yard ghost.
        const Pfn fbase = mapper_.frontBase(c);
        if (const auto front = yardPick(frames, ghosts, fbase,
                                        g.frontSlots)) {
            return Placement{fbase + front->offset,
                             mapper_.codec().encodeFront(front->offset),
                             front->evictsGhost};
        }

        // 3. Power-of-d-choices over backyards; ghosts don't count
        //    towards occupancy.
        unsigned best_choice = c.numBackChoices;
        unsigned best_live = g.backSlots + 1;
        for (unsigned k = 0; k < c.numBackChoices; ++k) {
            const unsigned live = liveCount(
                frames, ghosts, mapper_.backBase(c, k), g.backSlots);
            if (live < best_live) {
                best_live = live;
                best_choice = k;
            }
        }
        if (best_choice == c.numBackChoices || best_live >= g.backSlots)
            return std::nullopt; // associativity conflict

        const Pfn bbase = mapper_.backBase(c, best_choice);
        const auto back = yardPick(frames, ghosts, bbase, g.backSlots);
        ensure(back.has_value(),
               "mosaic_allocator: occupancy accounting out of sync");
        return Placement{
            bbase + back->offset,
            mapper_.codec().encodeBack(best_choice, back->offset),
            back->evictsGhost};
    }

    MosaicMapper mapper_;
};

} // namespace mosaic

#endif // MOSAIC_MEM_MOSAIC_ALLOCATOR_HH_
