/**
 * @file
 * Mosaic frame allocation: the iceberg placement policy over the
 * frame table (paper §2.3–2.4).
 *
 * Allocation order for a page's candidate set:
 *  1. a free slot in the front-yard bucket;
 *  2. the oldest ghost in the front-yard bucket (Horizon LRU treats
 *     ghost frames as free);
 *  3. power-of-d-choices over the backyard buckets, where a bucket's
 *     occupancy counts only live (non-ghost) pages; within the chosen
 *     bucket, a free slot, else the oldest ghost.
 *
 * When every candidate slot holds a live page, the allocation is an
 * *associativity conflict* and the caller must evict a live page —
 * normally the least-recently-used candidate (Horizon LRU, §2.4).
 */

#ifndef MOSAIC_MEM_MOSAIC_ALLOCATOR_HH_
#define MOSAIC_MEM_MOSAIC_ALLOCATOR_HH_

#include <optional>

#include "mem/frame_table.hh"
#include "mem/mosaic_mapper.hh"

namespace mosaic
{

/** One placement decision made by the allocator. */
struct Placement
{
    /** The chosen frame. */
    Pfn pfn = invalidPfn;

    /** Its compressed encoding relative to the page's candidates. */
    Cpfn cpfn = 0;

    /** True when a ghost page occupies the frame and must be evicted
     *  before the frame can be reused. */
    bool evictsGhost = false;
};

/**
 * Stateless placement policy; all mutable state lives in the
 * FrameTable owned by the caller.
 */
class MosaicAllocator
{
  public:
    explicit MosaicAllocator(const MemoryGeometry &geometry)
        : mapper_(geometry)
    {
    }

    const MosaicMapper &mapper() const { return mapper_; }
    const MemoryGeometry &geometry() const { return mapper_.geometry(); }

    /**
     * Choose a frame for a page with the given candidate set.
     *
     * @param c candidate buckets of the page being allocated.
     * @param frames the frame table to inspect.
     * @param is_ghost predicate: is this used frame a ghost?
     * @return the placement, or nullopt on an associativity conflict.
     */
    template <typename GhostPred>
    std::optional<Placement>
    place(const CandidateSet &c, const FrameTable &frames,
          GhostPred &&is_ghost) const
    {
        const MemoryGeometry &g = geometry();

        // 1. Free front-yard slot.
        std::optional<Placement> front_ghost;
        for (unsigned off = 0; off < g.frontSlots; ++off) {
            const Pfn pfn = mapper_.frontPfn(c, off);
            const Frame &f = frames.frame(pfn);
            if (!f.used) {
                return Placement{pfn, mapper_.codec().encodeFront(off),
                                 false};
            }
            if (is_ghost(f)) {
                if (!front_ghost ||
                        f.lastAccess <
                            frames.frame(front_ghost->pfn).lastAccess) {
                    front_ghost = Placement{
                        pfn, mapper_.codec().encodeFront(off), true};
                }
            }
        }

        // 2. Oldest front-yard ghost.
        if (front_ghost)
            return front_ghost;

        // 3. Power-of-d-choices over backyards; ghosts don't count
        //    towards occupancy.
        unsigned best_choice = c.numBackChoices;
        unsigned best_live = g.backSlots + 1;
        for (unsigned k = 0; k < c.numBackChoices; ++k) {
            unsigned live = 0;
            for (unsigned off = 0; off < g.backSlots; ++off) {
                const Frame &f = frames.frame(mapper_.backPfn(c, k, off));
                if (f.used && !is_ghost(f))
                    ++live;
            }
            if (live < best_live) {
                best_live = live;
                best_choice = k;
            }
        }
        if (best_choice == c.numBackChoices || best_live >= g.backSlots)
            return std::nullopt; // associativity conflict

        std::optional<Placement> back_ghost;
        for (unsigned off = 0; off < g.backSlots; ++off) {
            const Pfn pfn = mapper_.backPfn(c, best_choice, off);
            const Frame &f = frames.frame(pfn);
            if (!f.used) {
                return Placement{
                    pfn, mapper_.codec().encodeBack(best_choice, off),
                    false};
            }
            if (is_ghost(f)) {
                if (!back_ghost ||
                        f.lastAccess <
                            frames.frame(back_ghost->pfn).lastAccess) {
                    back_ghost = Placement{
                        pfn, mapper_.codec().encodeBack(best_choice, off),
                        true};
                }
            }
        }
        ensure(back_ghost.has_value(),
               "mosaic_allocator: occupancy accounting out of sync");
        return back_ghost;
    }

    /** Visit every candidate slot of a page as (pfn, cpfn). */
    template <typename Visitor>
    void
    forEachCandidate(const CandidateSet &c, Visitor &&visit) const
    {
        const MemoryGeometry &g = geometry();
        for (unsigned off = 0; off < g.frontSlots; ++off) {
            visit(mapper_.frontPfn(c, off),
                  mapper_.codec().encodeFront(off));
        }
        for (unsigned k = 0; k < c.numBackChoices; ++k) {
            for (unsigned off = 0; off < g.backSlots; ++off) {
                visit(mapper_.backPfn(c, k, off),
                      mapper_.codec().encodeBack(k, off));
            }
        }
    }

    /**
     * The least-recently-used *used* candidate slot — the victim on
     * an associativity conflict. Panics if every candidate is free
     * (callers only invoke this after place() failed).
     */
    Placement
    lruCandidate(const CandidateSet &c, const FrameTable &frames) const
    {
        std::optional<Placement> best;
        Tick best_tick = invalidTick;
        forEachCandidate(c, [&](Pfn pfn, Cpfn cpfn) {
            const Frame &f = frames.frame(pfn);
            if (f.used && f.lastAccess < best_tick) {
                best_tick = f.lastAccess;
                best = Placement{pfn, cpfn, false};
            }
        });
        ensure(best.has_value(), "mosaic_allocator: no LRU candidate");
        return *best;
    }

  private:
    MosaicMapper mapper_;
};

} // namespace mosaic

#endif // MOSAIC_MEM_MOSAIC_ALLOCATOR_HH_
