/**
 * @file
 * Per-frame metadata for the modeled physical memory.
 *
 * The frame table is policy-free: it records which virtual page owns
 * each frame, when the frame was last accessed, and whether it is
 * dirty. Ghost status (Horizon LRU, paper §2.4) is *derived* by the
 * eviction policy from lastAccess and the current horizon; the frame
 * table itself does not distinguish ghosts from live pages.
 */

#ifndef MOSAIC_MEM_FRAME_TABLE_HH_
#define MOSAIC_MEM_FRAME_TABLE_HH_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/bitvec.hh"
#include "util/log.hh"
#include "util/types.hh"

namespace mosaic
{

/** Metadata for one physical frame. */
struct Frame
{
    /** Owning virtual page; meaningful only when used. */
    PageId owner{};

    /** Tick of the most recent access to the owning page. */
    Tick lastAccess = 0;

    /** True when some virtual page is mapped here. */
    bool used = false;

    /** True when the contents differ from the swap copy. */
    bool dirty = false;
};

/** An indexed array of Frame records; PFN == index. */
class FrameTable
{
  public:
    explicit FrameTable(std::size_t num_frames)
        : frames_(num_frames), ticks_(num_frames, 0),
          usedBits_(num_frames)
    {
    }

    std::size_t numFrames() const { return frames_.size(); }

    /** Frames currently holding a page (live or ghost). */
    std::size_t usedFrames() const { return used_; }

    /** Fraction of frames holding a page. */
    double
    utilization() const
    {
        return static_cast<double>(used_) /
               static_cast<double>(frames_.size());
    }

    const Frame &frame(Pfn pfn) const { return frames_.at(pfn); }

    /** lastAccess of a frame, from the dense tick array. Equal to
     *  frame(pfn).lastAccess; placement scans read it here so that a
     *  bucket's worth of ticks spans 8 bytes per slot, not a whole
     *  Frame record each. */
    Tick lastAccessOf(Pfn pfn) const { return ticks_[pfn]; }

    /** Used bits of frames [base, base + width), width in [1, 64]
     *  (bit k set iff frame base + k holds a page). Lets placement
     *  find free slots with countr_zero and count bucket occupancy
     *  with popcount instead of scanning Frame records. */
    std::uint64_t
    usedWindow(Pfn base, unsigned width) const
    {
        return usedBits_.window(base, width);
    }

    /** Record a page -> frame mapping. The frame must be free. */
    void
    map(Pfn pfn, PageId owner, Tick now, bool dirty = true)
    {
        Frame &f = frames_.at(pfn);
        ensure(!f.used, "frame_table: mapping an occupied frame");
        f.owner = owner;
        f.lastAccess = now;
        f.used = true;
        f.dirty = dirty;
        ticks_[pfn] = now;
        usedBits_.set(pfn);
        ++used_;
    }

    /** Release a frame. The frame must be in use. */
    void
    unmap(Pfn pfn)
    {
        Frame &f = frames_.at(pfn);
        ensure(f.used, "frame_table: unmapping a free frame");
        f.used = false;
        f.dirty = false;
        f.owner = PageId{};
        usedBits_.clear(pfn);
        --used_;
    }

    /**
     * Hint the cache hierarchy that the metadata of frames
     * [base, base + width) is about to be scanned: the dense tick
     * run, the used-bit word, and the Frame records themselves. Pure
     * performance hint — no observable state changes. Used by the
     * batched touch pipeline to warm a candidate bucket one stage
     * before placement reads it.
     */
    void
    prefetchRange(Pfn base, unsigned width) const
    {
        if (base >= frames_.size())
            return;
        __builtin_prefetch(&ticks_[base]);
        __builtin_prefetch(usedBits_.wordAddr(base));
        // Frame records are 32 bytes; touch each cache line of the run.
        const std::size_t last =
            std::min<std::size_t>(base + width, frames_.size()) - 1;
        for (std::size_t p = base; p <= last; p += 2)
            __builtin_prefetch(&frames_[p]);
    }

    /** Update the access timestamp (and dirtiness) of a used frame. */
    void
    touch(Pfn pfn, Tick now, bool write)
    {
        Frame &f = frames_.at(pfn);
        ensure(f.used, "frame_table: touching a free frame");
        f.lastAccess = now;
        f.dirty = f.dirty || write;
        ticks_[pfn] = now;
    }

  private:
    std::vector<Frame> frames_;

    /** Mirror of Frame::lastAccess, densely packed for placement
     *  scans. Maintained by map() and touch() only. */
    std::vector<Tick> ticks_;

    /** Mirror of Frame::used, one bit per frame. Maintained by
     *  map() and unmap() only. */
    BitVec usedBits_;

    std::size_t used_ = 0;
};

} // namespace mosaic

#endif // MOSAIC_MEM_FRAME_TABLE_HH_
