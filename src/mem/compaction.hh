/**
 * @file
 * A memory-compaction cost model: what would it take to *restore*
 * the 2 MiB contiguity that huge pages need (paper §1, §5.1 — "the
 * cost of defragmenting memory can easily nullify these gains")?
 *
 * Linux-style compaction migrates movable pages out of target
 * windows; unmovable (pinned) pages block a window outright. The
 * planner picks the cheapest windows for a requested number of huge
 * regions and reports the page copies and TLB shootdowns the
 * migration would cost — the bill Mosaic never pays.
 */

#ifndef MOSAIC_MEM_COMPACTION_HH_
#define MOSAIC_MEM_COMPACTION_HH_

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace mosaic
{

/** The cost of creating huge-page contiguity by compaction. */
struct CompactionPlan
{
    /** Huge regions requested. */
    std::uint64_t regionsRequested = 0;

    /** Regions that can be produced at all (enough pin-free
     *  windows and enough free space to migrate into). */
    std::uint64_t regionsAchievable = 0;

    /** Movable pages that must be copied. */
    std::uint64_t pageCopies = 0;

    /** Bytes moved (pageCopies * 4 KiB). */
    std::uint64_t bytesMoved() const { return pageCopies * pageSize; }

    /** TLB shootdowns: one remap per moved page. */
    std::uint64_t shootdowns() const { return pageCopies; }

    /** Windows rejected because a pinned page blocks them. */
    std::uint64_t windowsBlockedByPins = 0;
};

/**
 * Plan a compaction run.
 *
 * @param num_frames total frames; multiple of 512.
 * @param pinned per-frame flag: unmovable.
 * @param movable per-frame flag: allocated and migratable.
 *        (frames neither pinned nor movable are free)
 * @param regions_wanted how many 2 MiB regions the caller needs.
 */
CompactionPlan planCompaction(std::size_t num_frames,
                              const std::vector<bool> &pinned,
                              const std::vector<bool> &movable,
                              std::uint64_t regions_wanted);

} // namespace mosaic

#endif // MOSAIC_MEM_COMPACTION_HH_
