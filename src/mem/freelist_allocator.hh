/**
 * @file
 * The baseline fully-associative frame allocator: any free frame can
 * back any virtual page, like a conventional OS allocator. Used for
 * the "vanilla"/default-Linux side of every comparison.
 */

#ifndef MOSAIC_MEM_FREELIST_ALLOCATOR_HH_
#define MOSAIC_MEM_FREELIST_ALLOCATOR_HH_

#include <cstddef>
#include <optional>
#include <vector>

#include "util/log.hh"
#include "util/types.hh"

namespace mosaic
{

/** A LIFO free list over all physical frames. */
class FreeListAllocator
{
  public:
    explicit FreeListAllocator(std::size_t num_frames)
        : numFrames_(num_frames)
    {
        free_.reserve(num_frames);
        // Push in reverse so frames are first handed out in
        // ascending PFN order, like a freshly booted system.
        for (std::size_t i = num_frames; i-- > 0;)
            free_.push_back(static_cast<Pfn>(i));
    }

    std::size_t numFrames() const { return numFrames_; }

    std::size_t freeFrames() const { return free_.size(); }

    std::size_t usedFrames() const { return numFrames_ - free_.size(); }

    double
    utilization() const
    {
        return static_cast<double>(usedFrames()) /
               static_cast<double>(numFrames_);
    }

    /** Pop a free frame; nullopt when memory is exhausted. */
    std::optional<Pfn>
    allocate()
    {
        if (free_.empty())
            return std::nullopt;
        const Pfn pfn = free_.back();
        free_.pop_back();
        return pfn;
    }

    /** Return a frame to the free list. */
    void
    release(Pfn pfn)
    {
        ensure(pfn < numFrames_, "freelist: PFN out of range");
        free_.push_back(pfn);
    }

  private:
    std::size_t numFrames_;
    std::vector<Pfn> free_;
};

} // namespace mosaic

#endif // MOSAIC_MEM_FREELIST_ALLOCATOR_HH_
