#include "mem/fragmenter.hh"

#include <algorithm>

namespace mosaic
{

std::vector<Pfn>
fragmentMemory(BuddyAllocator &buddy, double pinned_fraction, Rng &rng,
               unsigned granularity_order)
{
    ensure(pinned_fraction >= 0.0 && pinned_fraction <= 1.0,
           "fragmenter: fraction out of range");
    ensure(buddy.freeFrames() == buddy.numFrames(),
           "fragmenter: allocator must be fresh");
    ensure(granularity_order <= BuddyAllocator::maxOrder,
           "fragmenter: granularity above top order");

    // Take every block of the pin granularity...
    std::vector<Pfn> blocks;
    blocks.reserve(buddy.numFrames() >> granularity_order);
    while (auto pfn = buddy.allocate(granularity_order))
        blocks.push_back(*pfn);

    // ...shuffle, and give back all but the pinned fraction.
    for (std::size_t i = blocks.size(); i-- > 1;)
        std::swap(blocks[i], blocks[rng.below(i + 1)]);

    const auto pinned_blocks = static_cast<std::size_t>(
        pinned_fraction * static_cast<double>(blocks.size()));
    for (std::size_t i = pinned_blocks; i < blocks.size(); ++i)
        buddy.free(blocks[i], granularity_order);

    std::vector<Pfn> pinned;
    pinned.reserve(pinned_blocks << granularity_order);
    for (std::size_t i = 0; i < pinned_blocks; ++i) {
        for (Pfn p = 0; p < (Pfn{1} << granularity_order); ++p)
            pinned.push_back(blocks[i] + p);
    }
    return pinned;
}

} // namespace mosaic
