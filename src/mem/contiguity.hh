/**
 * @file
 * Contiguity-run mining for range-style translation designs
 * (SVNAPOT / Virtuoso rangelb lineage): given one mapped anchor page,
 * discover the maximal run of virtually *and* physically contiguous
 * pages around it. A range TLB caches the run as a single entry, so
 * its reach is exactly the contiguity the mapper happened to produce
 * — which is the property the paper's bake-off compares mosaic
 * against.
 *
 * Header-only and mapper-agnostic: the caller passes a pfn_of
 * callback (one PTE read per probe) and counts the probes into its
 * modeled walk cost.
 */

#ifndef MOSAIC_MEM_CONTIGUITY_HH_
#define MOSAIC_MEM_CONTIGUITY_HH_

#include <cstdint>
#include <optional>

#include "util/types.hh"

namespace mosaic
{

/** A run of pages where pfn(first + i) == basePfn + i for all i. */
struct ContigRun
{
    Vpn first = 0;
    std::uint64_t length = 0;
    Pfn basePfn = 0;

    bool
    covers(Vpn vpn) const
    {
        return vpn >= first && vpn - first < length;
    }
};

/**
 * Mine the maximal contiguity run containing @p anchor, capped at
 * @p max_run pages: extend left while the previous page maps to the
 * previous frame, then right symmetrically. Each neighbour probe
 * calls @p pfn_of once and increments *probes (the caller charges
 * them as PTE reads); the anchor's own walk is the caller's.
 * Returns nullopt when the anchor itself is unmapped.
 *
 * Deterministic: probe order is left-down then right-up, so real and
 * oracle models mining through the same pfn_of agree exactly.
 */
template <typename PfnOf>
std::optional<ContigRun>
mineContigRun(PfnOf &&pfn_of, Vpn anchor, std::uint64_t max_run,
              std::uint64_t *probes)
{
    const std::optional<Pfn> anchor_pfn = pfn_of(anchor);
    if (!anchor_pfn)
        return std::nullopt;

    ContigRun run{anchor, 1, *anchor_pfn};
    while (run.length < max_run && run.first > 0 && run.basePfn > 0) {
        ++*probes;
        const std::optional<Pfn> left = pfn_of(run.first - 1);
        if (!left || *left != run.basePfn - 1)
            break;
        --run.first;
        --run.basePfn;
        ++run.length;
    }
    Vpn last = anchor;
    Pfn last_pfn = *anchor_pfn;
    while (run.length < max_run) {
        ++*probes;
        const std::optional<Pfn> right = pfn_of(last + 1);
        if (!right || *right != last_pfn + 1)
            break;
        ++last;
        ++last_pfn;
        ++run.length;
    }
    return run;
}

} // namespace mosaic

#endif // MOSAIC_MEM_CONTIGUITY_HH_
