/**
 * @file
 * Compressed Physical Frame Number encoding (paper §3.1).
 *
 * Paper encoding, 7 bits with the default geometry:
 *  - all ones        -> unmapped;
 *  - MSB 0           -> front yard, remaining bits = slot offset;
 *  - MSB 1           -> backyard, next bits = which of the d
 *                       candidate buckets, low bits = slot offset.
 *
 * The codec generalizes to other geometries: field widths are derived
 * from the geometry, and when the all-ones pattern would collide with
 * a legal backyard encoding the codec widens by one bit.
 */

#ifndef MOSAIC_MEM_CPFN_HH_
#define MOSAIC_MEM_CPFN_HH_

#include <cstdint>

#include "mem/geometry.hh"
#include "util/types.hh"

namespace mosaic
{

/** Encoder/decoder for CPFNs under a particular geometry. */
class CpfnCodec
{
  public:
    /** A decoded CPFN. */
    struct Decoded
    {
        /** True when the page lives in its front-yard bucket. */
        bool front = true;

        /** Backyard choice index in [0, d); unused for front. */
        unsigned choice = 0;

        /** Slot offset within the selected yard. */
        unsigned offset = 0;
    };

    explicit CpfnCodec(const MemoryGeometry &geometry);

    /** Bits per CPFN (7 with paper defaults). */
    unsigned bits() const { return bits_; }

    /** The reserved "unmapped" code (all ones). */
    Cpfn invalid() const { return invalid_; }

    /** True for any code other than the unmapped sentinel. */
    bool isValid(Cpfn cpfn) const { return cpfn != invalid_; }

    /** Encode a front-yard placement. */
    Cpfn encodeFront(unsigned offset) const;

    /** Encode a backyard placement. */
    Cpfn encodeBack(unsigned choice, unsigned offset) const;

    /** Decode a valid CPFN. */
    Decoded decode(Cpfn cpfn) const;

  private:
    unsigned frontOffsetBits_;
    unsigned choiceBits_;
    unsigned backOffsetBits_;
    unsigned bits_;
    Cpfn invalid_;
    unsigned frontSlots_;
    unsigned backSlots_;
    unsigned backChoices_;
};

} // namespace mosaic

#endif // MOSAIC_MEM_CPFN_HH_
