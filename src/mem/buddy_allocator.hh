/**
 * @file
 * A binary buddy allocator over physical frames, like the Linux page
 * allocator that backs the huge-page baselines the paper argues
 * against. Needed to model *fragmentation*: transparent huge pages
 * require 512 contiguous, aligned free frames, and whether those
 * exist is exactly what a buddy allocator's free lists encode.
 *
 * Orders 0..maxOrder; order k = 2^k contiguous frames. Frees
 * coalesce with their buddy recursively, as in Linux.
 */

#ifndef MOSAIC_MEM_BUDDY_ALLOCATOR_HH_
#define MOSAIC_MEM_BUDDY_ALLOCATOR_HH_

#include <cstddef>
#include <optional>
#include <vector>

#include "util/log.hh"
#include "util/types.hh"

namespace mosaic
{

/** Buddy allocator over [0, numFrames) frame numbers. */
class BuddyAllocator
{
  public:
    /** Largest block: 2^maxOrder frames (9 -> 2 MiB, like x86). */
    static constexpr unsigned maxOrder = 9;

    /** @param num_frames total frames; must be a multiple of
     *         2^maxOrder. */
    explicit BuddyAllocator(std::size_t num_frames);

    std::size_t numFrames() const { return numFrames_; }

    /** Free frames remaining (across all orders). */
    std::size_t freeFrames() const { return freeFrames_; }

    /**
     * Allocate a naturally aligned block of 2^order frames.
     * @return the first PFN of the block, or nullopt if no block of
     *         that order (or splittable larger order) exists.
     */
    std::optional<Pfn> allocate(unsigned order);

    /** Convenience: one 4 KiB frame. */
    std::optional<Pfn> allocateFrame() { return allocate(0); }

    /** Convenience: one 2 MiB block (order 9). */
    std::optional<Pfn> allocateHuge() { return allocate(maxOrder); }

    /**
     * Carve one specific frame out of free memory (splitting the
     * free block containing it). Needed by the perforated-pages
     * baseline, which claims the free frames of a chosen 2 MiB
     * window individually.
     * @return false when the frame is not free.
     */
    bool allocateSpecific(Pfn pfn);

    /** True when the frame lies inside some free block. */
    bool isFree(Pfn pfn) const;

    /**
     * Free a block previously returned by allocate(order). Buddies
     * coalesce upward greedily.
     */
    void free(Pfn pfn, unsigned order);

    /** Free blocks currently on the order-k list. */
    std::size_t freeBlocks(unsigned order) const;

    /**
     * The largest allocatable order right now — the instantaneous
     * contiguity of free memory.
     */
    int largestFreeOrder() const;

    /**
     * Fraction of free memory that is *not* usable for huge pages:
     * the standard unusable-free-space index at maxOrder.
     */
    double fragmentationIndex() const;

  private:
    struct Block
    {
        Pfn prev = invalidPfn;
        Pfn next = invalidPfn;

        /** Order if this PFN heads a free block; 0xFF otherwise. */
        std::uint8_t freeOrder = notFree;
    };

    static constexpr std::uint8_t notFree = 0xFF;

    void pushFree(Pfn pfn, unsigned order);
    void removeFree(Pfn pfn, unsigned order);

    std::size_t numFrames_;
    std::size_t freeFrames_ = 0;
    std::vector<Block> blocks_;
    std::vector<Pfn> heads_; // per-order free-list heads
};

} // namespace mosaic

#endif // MOSAIC_MEM_BUDDY_ALLOCATOR_HH_
