/**
 * @file
 * Physical-memory geometry for Mosaic: how frames are grouped into
 * iceberg buckets, and how many candidate frames a virtual page has.
 *
 * Paper defaults (§2.3, §3.1): buckets of 64 frames split into a
 * 56-frame front yard and an 8-frame backyard; each page hashes to
 * one front-yard bucket and d = 6 backyard buckets, for an
 * associativity of h = 56 + 6*8 = 104 and 7-bit CPFNs.
 */

#ifndef MOSAIC_MEM_GEOMETRY_HH_
#define MOSAIC_MEM_GEOMETRY_HH_

#include <cstddef>
#include <cstdint>

#include "util/log.hh"
#include "util/types.hh"

namespace mosaic
{

/** Ceiling of log2(x) for x >= 1. */
constexpr unsigned
ceilLog2(std::uint64_t x)
{
    unsigned bits = 0;
    std::uint64_t v = 1;
    while (v < x) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

/** Shape of mosaic physical memory. */
struct MemoryGeometry
{
    /** Total physical frames; must be a multiple of slotsPerBucket. */
    std::size_t numFrames = 64 * 1024;

    /** Front-yard slots per bucket (f). */
    unsigned frontSlots = 56;

    /** Backyard slots per bucket (b). */
    unsigned backSlots = 8;

    /** Number of backyard candidate buckets (d). */
    unsigned backChoices = 6;

    /** Seed for the placement hash. */
    std::uint64_t hashSeed = 1;

    unsigned slotsPerBucket() const { return frontSlots + backSlots; }

    std::size_t numBuckets() const { return numFrames / slotsPerBucket(); }

    /** Associativity h: candidate frames per virtual page. */
    unsigned
    associativity() const
    {
        return frontSlots + backChoices * backSlots;
    }

    /** Bytes of physical memory modeled. */
    std::uint64_t bytes() const { return std::uint64_t{numFrames} * pageSize; }

    /** Validate invariants; call once after construction. */
    void
    check() const
    {
        ensure(frontSlots >= 1, "geometry: front yard must be nonempty");
        ensure(backSlots >= 1, "geometry: backyard must be nonempty");
        ensure(backChoices >= 1, "geometry: need at least one choice");
        ensure(numFrames % slotsPerBucket() == 0,
               "geometry: numFrames must be a bucket multiple");
        ensure(numBuckets() >= backChoices + 1,
               "geometry: fewer buckets than hash choices");
    }

    /** Geometry matching the paper's 4 GiB Linux mosaic pool. */
    static MemoryGeometry
    paperLinuxPool()
    {
        MemoryGeometry g;
        g.numFrames = (std::uint64_t{4} << 30) / pageSize;
        return g;
    }
};

} // namespace mosaic

#endif // MOSAIC_MEM_GEOMETRY_HH_
