#include "mem/cpfn.hh"

#include <algorithm>

namespace mosaic
{

CpfnCodec::CpfnCodec(const MemoryGeometry &geometry)
    : frontOffsetBits_(ceilLog2(geometry.frontSlots)),
      choiceBits_(ceilLog2(geometry.backChoices)),
      backOffsetBits_(ceilLog2(geometry.backSlots)),
      frontSlots_(geometry.frontSlots),
      backSlots_(geometry.backSlots),
      backChoices_(geometry.backChoices)
{
    unsigned payload =
        std::max(frontOffsetBits_, choiceBits_ + backOffsetBits_);
    bits_ = 1 + payload;

    // If the all-ones pattern is a legal backyard encoding, widen the
    // choice field so the sentinel stays distinct (cannot happen with
    // the paper's geometry, where choice 7 is never used).
    const bool back_all_ones =
        backChoices_ == (1u << choiceBits_) &&
        backSlots_ == (1u << backOffsetBits_) &&
        choiceBits_ + backOffsetBits_ >= frontOffsetBits_;
    if (back_all_ones) {
        ++choiceBits_;
        payload = std::max(frontOffsetBits_, choiceBits_ + backOffsetBits_);
        bits_ = 1 + payload;
    }
    ensure(bits_ <= 8, "cpfn: encoding exceeds 8 bits");
    invalid_ = static_cast<Cpfn>((1u << bits_) - 1);
}

Cpfn
CpfnCodec::encodeFront(unsigned offset) const
{
    ensure(offset < frontSlots_, "cpfn: front offset out of range");
    return static_cast<Cpfn>(offset);
}

Cpfn
CpfnCodec::encodeBack(unsigned choice, unsigned offset) const
{
    ensure(choice < backChoices_, "cpfn: backyard choice out of range");
    ensure(offset < backSlots_, "cpfn: backyard offset out of range");
    const unsigned msb = 1u << (bits_ - 1);
    return static_cast<Cpfn>(msb | (choice << backOffsetBits_) | offset);
}

CpfnCodec::Decoded
CpfnCodec::decode(Cpfn cpfn) const
{
    ensure(isValid(cpfn), "cpfn: decoding the unmapped sentinel");
    Decoded out;
    const unsigned msb = 1u << (bits_ - 1);
    if ((cpfn & msb) == 0) {
        out.front = true;
        out.offset = cpfn & (msb - 1);
        ensure(out.offset < frontSlots_, "cpfn: corrupt front encoding");
    } else {
        out.front = false;
        out.choice = (cpfn & (msb - 1)) >> backOffsetBits_;
        out.offset = cpfn & ((1u << backOffsetBits_) - 1);
        ensure(out.choice < backChoices_, "cpfn: corrupt backyard choice");
        ensure(out.offset < backSlots_, "cpfn: corrupt backyard offset");
    }
    return out;
}

} // namespace mosaic
