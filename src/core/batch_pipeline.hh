/**
 * @file
 * The batched translation pipeline (ROADMAP item 2): adapters that
 * buffer a workload's reference stream into blocks and drive the
 * batched engines — VirtualMemory::touchBatch for the demand-paging
 * experiments and TranslationSim::accessBatch for the TLB sweeps —
 * instead of one virtual call per reference.
 *
 * Batching never changes results: every batched engine is bit-exact
 * against its scalar path (stats, placements, digests), enforced by
 * tests/test_batch_pipeline.cc and the fuzz harness's batched leg.
 * The block size comes from the MOSAIC_BATCH environment knob (0 or
 * unset = scalar), so every driver — experiments, benches, replay —
 * can flip between paths without code changes. See DESIGN.md §13.
 */

#ifndef MOSAIC_CORE_BATCH_PIPELINE_HH_
#define MOSAIC_CORE_BATCH_PIPELINE_HH_

#include <algorithm>
#include <vector>

#include "core/translation_sim.hh"
#include "core/vm_touch_sink.hh"
#include "os/virtual_memory.hh"
#include "workloads/access_sink.hh"

namespace mosaic
{

/** Upper bound on the batch block size (keeps scratch bounded). */
constexpr unsigned maxBatchBlock = 4096;

/**
 * Block size selected by the MOSAIC_BATCH environment variable:
 * 0 when unset, empty, unparsable, or <= 1 (all meaning "scalar");
 * otherwise the value clamped to maxBatchBlock.
 */
unsigned batchBlockFromEnv();

/**
 * Buffers page touches into fixed-size blocks and drains them
 * through VirtualMemory::touchBatch. Deterministic by construction:
 * the block preserves stream order and touchBatch's contract is
 * bit-exact equivalence to a scalar touch() loop. flush() (also run
 * on destruction) drains a partial tail block.
 */
class BatchVmTouchSink : public AccessSink
{
  public:
    BatchVmTouchSink(VirtualMemory &vm, Asid asid, unsigned block)
        : vm_(vm), asid_(asid),
          block_(std::clamp(block, 2u, maxBatchBlock))
    {
        buf_.reserve(block_);
        pfns_.resize(block_);
    }

    ~BatchVmTouchSink() override { drain(); }

    void
    access(Addr vaddr, bool write) override
    {
        buf_.push_back(PageTouch{asid_, vpnOf(vaddr), write});
        if (buf_.size() >= block_)
            drain();
    }

    void flush() override { drain(); }

  private:
    void
    drain()
    {
        if (buf_.empty())
            return;
        vm_.touchBatch(buf_, pfns_.data());
        buf_.clear();
    }

    VirtualMemory &vm_;
    Asid asid_;
    std::size_t block_;
    std::vector<PageTouch> buf_;
    std::vector<Pfn> pfns_;
};

/**
 * Buffers data references into fixed-size blocks and drains them
 * through TranslationSim::accessBatch (whose apply loop is the
 * scalar access() path itself, so stats are identical).
 */
class BatchTranslationSink : public AccessSink
{
  public:
    BatchTranslationSink(TranslationSim &sim, unsigned block)
        : sim_(sim), block_(std::clamp(block, 2u, maxBatchBlock))
    {
        buf_.reserve(block_);
    }

    ~BatchTranslationSink() override { drain(); }

    void
    access(Addr vaddr, bool write) override
    {
        buf_.push_back(MemRef{vaddr, write});
        if (buf_.size() >= block_)
            drain();
    }

    void flush() override { drain(); }

  private:
    void
    drain()
    {
        if (buf_.empty())
            return;
        sim_.accessBatch(buf_);
        buf_.clear();
    }

    TranslationSim &sim_;
    std::size_t block_;
    std::vector<MemRef> buf_;
};

} // namespace mosaic

#endif // MOSAIC_CORE_BATCH_PIPELINE_HH_
