/**
 * @file
 * Runners for the paper's evaluation experiments. Each function
 * executes one experiment configuration and returns structured
 * results; the bench binaries format them as the paper's tables and
 * figures.
 *
 * Experiment index (see DESIGN.md):
 *  - runFig6:   TLB misses, vanilla vs Mosaic-{arity} across TLB
 *               associativities (Figure 6 a–d).
 *  - runTable3: utilization at first associativity conflict and in
 *               steady state under the mosaic allocator (Table 3).
 *  - runTable4: swap I/O, Linux baseline vs Mosaic/Horizon LRU,
 *               across over-commit factors (Table 4).
 *
 * Parallelism and determinism (see DESIGN.md §8): every sweep is
 * decomposed into independent *cells* — one ways value for Figure 6,
 * one repetition for Tables 3/4 — each of which builds its own
 * TLB/page-table/allocator stack and owns its RNG streams outright.
 * A cell's streams are a pure function of (options.seed, cell
 * identity) via experimentCellSeed(), never a shared generator, so
 * results are bit-identical at any thread count. Cells run on a
 * ThreadPool; pass one explicitly to pin the worker count (tests),
 * or use the overloads without one for ThreadPool::shared().
 */

#ifndef MOSAIC_CORE_EXPERIMENTS_HH_
#define MOSAIC_CORE_EXPERIMENTS_HH_

#include <cstdint>
#include <vector>

#include "hash/mix.hh"
#include "mem/geometry.hh"
#include "util/stats.hh"
#include "util/thread_pool.hh"
#include "workloads/factory.hh"

namespace mosaic
{

/** Mosaic memory comfortably larger than @p footprint_bytes, so the
 *  no-swapping experiments (Figure 6, the bake-off) never see
 *  associativity conflicts during demand mapping. */
MemoryGeometry ampleGeometry(std::uint64_t footprint_bytes);

/**
 * The RNG seed of experiment cell @p cell of an experiment seeded
 * with @p seed: both words pass through the mix64 finalizer, so
 * consecutive cell indices yield statistically independent streams
 * (unlike the additive seed+k*1000 scheme this replaces, whose
 * xoshiro states differed in two bits).
 */
constexpr std::uint64_t
experimentCellSeed(std::uint64_t seed, std::uint64_t cell)
{
    return mix64(seed ^ mix64(cell + 0x9E3779B97F4A7C15ull));
}

// ---------------------------------------------------------------- Fig 6

/** Options for the Figure 6 sweep. */
struct Fig6Options
{
    /** Workload size multiplier (1.0 = default sizes). */
    double scale = 1.0;

    std::vector<unsigned> waysList{1, 2, 4, 8, 1024};
    std::vector<unsigned> arities{4, 8, 16, 32, 64};
    unsigned tlbEntries = 1024;

    /** Model the kernel's huge-page mappings (paper's vanilla
     *  advantage artifact); false = "huge pages fully disabled". */
    bool kernelHugePages = true;

    std::uint64_t seed = 1;
};

/** One associativity row of a Figure 6 panel. */
struct Fig6Row
{
    unsigned ways = 0;
    std::uint64_t vanillaMisses = 0;
    std::vector<std::uint64_t> mosaicMisses; // parallel to arities
};

/** One Figure 6 panel (one workload). */
struct Fig6Result
{
    WorkloadKind kind{};
    std::uint64_t footprintBytes = 0;
    std::uint64_t accesses = 0;
    std::vector<unsigned> arities;
    std::vector<Fig6Row> rows;

    /** Sum of per-cell wall-clock seconds (the serial-equivalent
     *  cost). Timing only — not deterministic, never compared. */
    double cellSeconds = 0.0;
};

/**
 * One (workload × ways) cell of the Figure 6 sweep: a full
 * simulation of options.waysList[ways_index] against every arity.
 *
 * Figure 6 cells deliberately share one reference stream: the figure
 * compares TLB geometries *on the same trace*, so the workload and
 * kernel streams are derived from options.seed alone (not the cell
 * index) and each cell re-derives identical private copies.
 */
struct Fig6Cell
{
    Fig6Row row;
    std::uint64_t footprintBytes = 0;
    std::uint64_t accesses = 0;

    /** Wall-clock seconds this cell took (timing only). */
    double seconds = 0.0;
};

Fig6Cell runFig6Cell(WorkloadKind kind, const Fig6Options &options,
                     std::size_t ways_index);

/** Run all cells of one panel on @p pool and assemble the result in
 *  waysList order. */
Fig6Result runFig6(WorkloadKind kind, const Fig6Options &options,
                   ThreadPool &pool);

/** runFig6 on ThreadPool::shared(). */
Fig6Result runFig6(WorkloadKind kind, const Fig6Options &options);

// -------------------------------------------------------------- Table 3

/** Options for the utilization experiment. */
struct Table3Options
{
    /** Physical frames of the mosaic pool. */
    std::size_t memFrames = 16 * 1024;

    /** Workload footprint as a multiple of memory (> 1). */
    double footprintFactor = 1.015;

    /** Repetitions (paper: 10). */
    unsigned runs = 3;

    std::uint64_t seed = 1;
};

/** One Table 3 row. */
struct Table3Row
{
    WorkloadKind kind{};
    std::uint64_t footprintBytes = 0;

    /** Utilization (%) at the first associativity conflict. */
    RunningStat firstConflictPct;

    /** Steady-state utilization (%). */
    RunningStat steadyPct;

    /** Sum of per-run wall-clock seconds (timing only). */
    double cellSeconds = 0.0;
};

/** Cells are the repetitions; run r is seeded with
 *  experimentCellSeed(options.seed, r). Samples fold into the
 *  RunningStats in run order regardless of completion order. */
Table3Row runTable3(WorkloadKind kind, const Table3Options &options,
                    ThreadPool &pool);

/** runTable3 on ThreadPool::shared(). */
Table3Row runTable3(WorkloadKind kind, const Table3Options &options);

// -------------------------------------------------------------- Table 4

/** Options for the swapping experiment. */
struct Table4Options
{
    std::size_t memFrames = 16 * 1024;
    double footprintFactor = 1.015;
    unsigned runs = 1;
    std::uint64_t seed = 1;
};

/** One Table 4 row. */
struct Table4Row
{
    WorkloadKind kind{};
    std::uint64_t footprintBytes = 0;

    /** Swap I/O (pages in + out), averaged over runs. */
    RunningStat linuxSwapIo;
    RunningStat mosaicSwapIo;

    /** Sum of per-run wall-clock seconds (timing only). */
    double cellSeconds = 0.0;

    /** Percent reduction by Mosaic (positive = Mosaic swaps less). */
    double differencePct() const;
};

/** Cells are the repetitions (both VMs of a run form one cell);
 *  seeding and fold order as in runTable3. */
Table4Row runTable4(WorkloadKind kind, const Table4Options &options,
                    ThreadPool &pool);

/** runTable4 on ThreadPool::shared(). */
Table4Row runTable4(WorkloadKind kind, const Table4Options &options);

} // namespace mosaic

#endif // MOSAIC_CORE_EXPERIMENTS_HH_
