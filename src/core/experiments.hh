/**
 * @file
 * Runners for the paper's evaluation experiments. Each function
 * executes one experiment configuration and returns structured
 * results; the bench binaries format them as the paper's tables and
 * figures.
 *
 * Experiment index (see DESIGN.md):
 *  - runFig6:   TLB misses, vanilla vs Mosaic-{arity} across TLB
 *               associativities (Figure 6 a–d).
 *  - runTable3: utilization at first associativity conflict and in
 *               steady state under the mosaic allocator (Table 3).
 *  - runTable4: swap I/O, Linux baseline vs Mosaic/Horizon LRU,
 *               across over-commit factors (Table 4).
 */

#ifndef MOSAIC_CORE_EXPERIMENTS_HH_
#define MOSAIC_CORE_EXPERIMENTS_HH_

#include <cstdint>
#include <vector>

#include "util/stats.hh"
#include "workloads/factory.hh"

namespace mosaic
{

// ---------------------------------------------------------------- Fig 6

/** Options for the Figure 6 sweep. */
struct Fig6Options
{
    /** Workload size multiplier (1.0 = default sizes). */
    double scale = 1.0;

    std::vector<unsigned> waysList{1, 2, 4, 8, 1024};
    std::vector<unsigned> arities{4, 8, 16, 32, 64};
    unsigned tlbEntries = 1024;

    /** Model the kernel's huge-page mappings (paper's vanilla
     *  advantage artifact); false = "huge pages fully disabled". */
    bool kernelHugePages = true;

    std::uint64_t seed = 1;
};

/** One associativity row of a Figure 6 panel. */
struct Fig6Row
{
    unsigned ways = 0;
    std::uint64_t vanillaMisses = 0;
    std::vector<std::uint64_t> mosaicMisses; // parallel to arities
};

/** One Figure 6 panel (one workload). */
struct Fig6Result
{
    WorkloadKind kind{};
    std::uint64_t footprintBytes = 0;
    std::uint64_t accesses = 0;
    std::vector<unsigned> arities;
    std::vector<Fig6Row> rows;
};

Fig6Result runFig6(WorkloadKind kind, const Fig6Options &options);

// -------------------------------------------------------------- Table 3

/** Options for the utilization experiment. */
struct Table3Options
{
    /** Physical frames of the mosaic pool. */
    std::size_t memFrames = 16 * 1024;

    /** Workload footprint as a multiple of memory (> 1). */
    double footprintFactor = 1.015;

    /** Repetitions (paper: 10). */
    unsigned runs = 3;

    std::uint64_t seed = 1;
};

/** One Table 3 row. */
struct Table3Row
{
    WorkloadKind kind{};
    std::uint64_t footprintBytes = 0;

    /** Utilization (%) at the first associativity conflict. */
    RunningStat firstConflictPct;

    /** Steady-state utilization (%). */
    RunningStat steadyPct;
};

Table3Row runTable3(WorkloadKind kind, const Table3Options &options);

// -------------------------------------------------------------- Table 4

/** Options for the swapping experiment. */
struct Table4Options
{
    std::size_t memFrames = 16 * 1024;
    double footprintFactor = 1.015;
    unsigned runs = 1;
    std::uint64_t seed = 1;
};

/** One Table 4 row. */
struct Table4Row
{
    WorkloadKind kind{};
    std::uint64_t footprintBytes = 0;

    /** Swap I/O (pages in + out), averaged over runs. */
    RunningStat linuxSwapIo;
    RunningStat mosaicSwapIo;

    /** Percent reduction by Mosaic (positive = Mosaic swaps less). */
    double differencePct() const;
};

Table4Row runTable4(WorkloadKind kind, const Table4Options &options);

} // namespace mosaic

#endif // MOSAIC_CORE_EXPERIMENTS_HH_
