/**
 * @file
 * The paper's *motivation* experiment (§1, §5.1–5.2), which its
 * evaluation never needed to run because Mosaic sidesteps it: how do
 * contiguity-based reach techniques fare as physical memory
 * fragments?
 *
 * Four designs translate the same reference stream over the same
 * fragmented physical memory:
 *  - a plain 4 KiB TLB (baseline floor);
 *  - transparent huge pages: 2 MiB mappings when the buddy
 *    allocator can still produce an aligned 512-frame block,
 *    falling back to 4 KiB pages otherwise;
 *  - a CoLT-style coalesced TLB riding whatever incidental
 *    contiguity the 4 KiB allocations have;
 *  - a Mosaic TLB, whose reach needs no physical contiguity at all.
 *
 * Expected shape: THP ~matches Mosaic with pristine memory and
 * collapses toward the 4 KiB floor as fragmentation rises (the Zhu
 * et al. result the paper quotes); CoLT sits in between; Mosaic is
 * flat in fragmentation.
 */

#ifndef MOSAIC_CORE_FRAGMENTATION_SIM_HH_
#define MOSAIC_CORE_FRAGMENTATION_SIM_HH_

#include <cstdint>

#include "workloads/factory.hh"

namespace mosaic
{

/** Options for the fragmentation experiment. */
struct FragmentationOptions
{
    /** Physical frames (default 128 MiB). */
    std::size_t numFrames = 32 * 1024;

    /** Fraction of frames pinned at random (the fragmentation). */
    double pinnedFraction = 0.5;

    /** Pinning granularity: blocks of 2^order frames (6 = 256 KiB
     *  chunks; 0 = single frames, which annihilates contiguity at
     *  even light pinning). */
    unsigned pinGranularityOrder = 6;

    WorkloadKind kind = WorkloadKind::BTree;

    /** Workload footprint as a fraction of memory. */
    double footprintFraction = 0.35;

    unsigned tlbEntries = 1024;
    unsigned ways = 8;
    unsigned mosaicArity = 8;

    /** Perforated pages: maximum holes tolerated per 2 MiB region
     *  (Park et al. perforate up to a quarter of the region). */
    unsigned maxHolesPerRegion = 128;

    std::uint64_t seed = 1;
};

/** Results of one fragmentation point. */
struct FragmentationResult
{
    /** Unusable-free-space index after pinning (0 = pristine). */
    double fragmentationIndex = 0.0;

    /** THP regions successfully mapped as 2 MiB. */
    std::uint64_t hugeMappings = 0;

    /** THP regions that fell back to 4 KiB pages. */
    std::uint64_t hugeFallbacks = 0;

    /** Regions mapped as perforated 2 MiB pages. */
    std::uint64_t perforatedRegions = 0;

    /** Regions where even perforation failed (too many holes). */
    std::uint64_t perforatedFallbacks = 0;

    /** Mean holes per successfully perforated region. */
    double meanHoles = 0.0;

    std::uint64_t accesses = 0;
    std::uint64_t misses4k = 0;
    std::uint64_t missesThp = 0;
    std::uint64_t missesColt = 0;
    std::uint64_t missesPerforated = 0;
    std::uint64_t missesMosaic = 0;

    /** Mean pages covered per CoLT fill (contiguity harvested). */
    double coltCoverage = 0.0;
};

/** Run one fragmentation point. */
FragmentationResult runFragmentation(const FragmentationOptions &options);

} // namespace mosaic

#endif // MOSAIC_CORE_FRAGMENTATION_SIM_HH_
