/**
 * @file
 * Telemetry exporters for the experiment runners: map the structured
 * results of runFig6/runTable3/runTable4 onto stable hierarchical
 * metric names (DESIGN.md §9), so every bench that runs an experiment
 * registers the same names and the BENCH_*.json trajectory stays
 * comparable across PRs.
 *
 * Name scheme (all lowercase workload keys):
 *   fig6.<workload>.footprintBytes
 *   fig6.<workload>.accesses
 *   fig6.<workload>.ways<W>.vanilla.misses
 *   fig6.<workload>.ways<W>.mosaic<A>.misses
 *   table3.<workload>.footprint<B>.footprintBytes
 *   table3.<workload>.footprint<B>.firstConflictPct
 *       .{count,mean,stddev,min,max,sum}
 *   table3.<workload>.footprint<B>.steadyPct.{...}
 *   table4.<workload>.footprint<B>.footprintBytes
 *   table4.<workload>.footprint<B>.{linuxSwapIo,mosaicSwapIo}.{...}
 *   table4.<workload>.footprint<B>.differencePct
 *
 * (<B> is the footprint in bytes: tables 3 and 4 run each workload at
 * several footprints, so the footprint disambiguates the names.)
 */

#ifndef MOSAIC_CORE_EXPERIMENT_EXPORT_HH_
#define MOSAIC_CORE_EXPERIMENT_EXPORT_HH_

#include <string>

#include "core/experiments.hh"
#include "telemetry/registry.hh"
#include "util/status.hh"

namespace mosaic
{

/** Lowercase workload key used in metric names ("graph500", ...). */
std::string metricWorkloadKey(WorkloadKind kind);

/** Register one Figure 6 panel's results. */
void recordFig6(telemetry::Registry &r, const Fig6Result &result);

/** Register one Table 3 row's results. */
void recordTable3(telemetry::Registry &r, const Table3Row &row);

/** Register one Table 4 row's results. */
void recordTable4(telemetry::Registry &r, const Table4Row &row);

// --------------------------------------------------- checkpoint codecs
//
// Line-oriented text codecs for the sweep checkpoint/resume machinery
// (fault::SweepRunner, DESIGN.md §11). Doubles travel as hexfloats so
// a resumed cell's metrics merge byte-identically with freshly
// computed ones. decode* returns DataLoss naming the corrupt or
// missing field — numeric fields are parsed strictly, so a truncated
// or bit-flipped checkpoint row is discarded (the runner then
// recomputes the cell) instead of silently resuming a zeroed row; the
// output is unspecified on failure.

std::string encodeFig6Cell(const Fig6Cell &cell);
Status decodeFig6Cell(const std::string &text, Fig6Cell *out);

std::string encodeTable3Row(const Table3Row &row);
Status decodeTable3Row(const std::string &text, Table3Row *out);

std::string encodeTable4Row(const Table4Row &row);
Status decodeTable4Row(const std::string &text, Table4Row *out);

} // namespace mosaic

#endif // MOSAIC_CORE_EXPERIMENT_EXPORT_HH_
