/**
 * @file
 * Telemetry exporters for the experiment runners: map the structured
 * results of runFig6/runTable3/runTable4 onto stable hierarchical
 * metric names (DESIGN.md §9), so every bench that runs an experiment
 * registers the same names and the BENCH_*.json trajectory stays
 * comparable across PRs.
 *
 * Name scheme (all lowercase workload keys):
 *   fig6.<workload>.footprintBytes
 *   fig6.<workload>.accesses
 *   fig6.<workload>.ways<W>.vanilla.misses
 *   fig6.<workload>.ways<W>.mosaic<A>.misses
 *   table3.<workload>.footprint<B>.footprintBytes
 *   table3.<workload>.footprint<B>.firstConflictPct
 *       .{count,mean,stddev,min,max,sum}
 *   table3.<workload>.footprint<B>.steadyPct.{...}
 *   table4.<workload>.footprint<B>.footprintBytes
 *   table4.<workload>.footprint<B>.{linuxSwapIo,mosaicSwapIo}.{...}
 *   table4.<workload>.footprint<B>.differencePct
 *
 * (<B> is the footprint in bytes: tables 3 and 4 run each workload at
 * several footprints, so the footprint disambiguates the names.)
 */

#ifndef MOSAIC_CORE_EXPERIMENT_EXPORT_HH_
#define MOSAIC_CORE_EXPERIMENT_EXPORT_HH_

#include <string>

#include "core/experiments.hh"
#include "telemetry/registry.hh"

namespace mosaic
{

/** Lowercase workload key used in metric names ("graph500", ...). */
std::string metricWorkloadKey(WorkloadKind kind);

/** Register one Figure 6 panel's results. */
void recordFig6(telemetry::Registry &r, const Fig6Result &result);

/** Register one Table 3 row's results. */
void recordTable3(telemetry::Registry &r, const Table3Row &row);

/** Register one Table 4 row's results. */
void recordTable4(telemetry::Registry &r, const Table4Row &row);

} // namespace mosaic

#endif // MOSAIC_CORE_EXPERIMENT_EXPORT_HH_
