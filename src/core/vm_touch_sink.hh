/**
 * @file
 * Adapter that drives a virtual-memory model from a workload's
 * reference stream: each data access becomes a page touch (demand
 * paging). Used by the memory-pressure experiments (Tables 3 and 4).
 */

#ifndef MOSAIC_CORE_VM_TOUCH_SINK_HH_
#define MOSAIC_CORE_VM_TOUCH_SINK_HH_

#include <memory>

#include "os/virtual_memory.hh"
#include "workloads/access_sink.hh"

namespace mosaic
{

/** Forwards accesses to VirtualMemory::touch at page granularity. */
class VmTouchSink : public AccessSink
{
  public:
    VmTouchSink(VirtualMemory &vm, Asid asid)
        : vm_(vm), asid_(asid)
    {
    }

    void
    access(Addr vaddr, bool write) override
    {
        vm_.touch(asid_, vpnOf(vaddr), write);
    }

  private:
    VirtualMemory &vm_;
    Asid asid_;
};

/**
 * Factory behind the MOSAIC_BATCH knob: a plain VmTouchSink when
 * @p block <= 1, otherwise a BatchVmTouchSink (batch_pipeline.hh)
 * buffering @p block touches per VirtualMemory::touchBatch call.
 * Both produce bit-identical VM state; callers must flush() before
 * reading stats. Defined in batch_pipeline.cc.
 */
std::unique_ptr<AccessSink> makeVmTouchSink(VirtualMemory &vm,
                                            Asid asid, unsigned block);

} // namespace mosaic

#endif // MOSAIC_CORE_VM_TOUCH_SINK_HH_
