#include "core/batch_pipeline.hh"

#include <cstdlib>
#include <memory>

namespace mosaic
{

unsigned
batchBlockFromEnv()
{
    const char *s = std::getenv("MOSAIC_BATCH");
    if (!s || !*s)
        return 0;
    char *end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0' || v <= 1)
        return 0; // unset, malformed, 0, or 1: all mean scalar
    return static_cast<unsigned>(
        std::min<unsigned long>(v, maxBatchBlock));
}

std::unique_ptr<AccessSink>
makeVmTouchSink(VirtualMemory &vm, Asid asid, unsigned block)
{
    if (block <= 1)
        return std::make_unique<VmTouchSink>(vm, asid);
    return std::make_unique<BatchVmTouchSink>(vm, asid, block);
}

} // namespace mosaic
