#include "core/batch_pipeline.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "util/parse.hh"

namespace mosaic
{

unsigned
batchBlockFromEnv()
{
    const char *s = std::getenv("MOSAIC_BATCH");
    if (!s || !*s)
        return 0;
    // Strict digits-only parse: "-1" must not wrap to ULONG_MAX (and
    // then silently clamp to the maximum block), and trailing junk
    // ("64x") or a sign prefix ("+8") means the knob was mistyped.
    // Every malformed form falls back to scalar.
    std::uint64_t v = 0;
    if (!parseU64(s, &v) || v <= 1)
        return 0; // unset, malformed, 0, or 1: all mean scalar
    return static_cast<unsigned>(
        std::min<std::uint64_t>(v, maxBatchBlock));
}

std::unique_ptr<AccessSink>
makeVmTouchSink(VirtualMemory &vm, Asid asid, unsigned block)
{
    if (block <= 1)
        return std::make_unique<VmTouchSink>(vm, asid);
    return std::make_unique<BatchVmTouchSink>(vm, asid, block);
}

} // namespace mosaic
