#include "core/fragmentation_sim.hh"

#include "mem/buddy_allocator.hh"
#include "mem/fragmenter.hh"
#include "mem/frame_table.hh"
#include "mem/mosaic_allocator.hh"
#include "pt/mosaic_page_table.hh"
#include "pt/vanilla_page_table.hh"
#include "tlb/coalesced_tlb.hh"
#include "tlb/mosaic_tlb.hh"
#include "tlb/perforated_tlb.hh"
#include "tlb/vanilla_tlb.hh"
#include "util/log.hh"
#include "util/random.hh"
#include "workloads/access_sink.hh"

#include <algorithm>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mosaic
{

namespace
{

/** ASID of the synthetic pinned pages. */
constexpr Asid pinnedAsid = 0xFFFF;

/** The four-design translation harness. */
class FragmentationSim : public AccessSink
{
  public:
    explicit FragmentationSim(const FragmentationOptions &options)
        : options_(options),
          buddyPlain_(options.numFrames),
          rng_(options.seed ^ 0xF7A6),
          mosaicGeometry_(makeGeometry(options)),
          mosaicAllocator_(mosaicGeometry_),
          mosaicFrames_(mosaicGeometry_.numFrames),
          mosaicPt_(options.mosaicArity,
                    mosaicAllocator_.mapper().codec().invalid()),
          tlb4k_(TlbGeometry{options.tlbEntries, options.ways}),
          tlbThp_(TlbGeometry{options.tlbEntries, options.ways}),
          tlbColt_(TlbGeometry{options.tlbEntries, options.ways}),
          tlbPerf_(TlbGeometry{options.tlbEntries, options.ways}),
          tlbMosaic_(TlbGeometry{options.tlbEntries, options.ways},
                     options.mosaicArity)
    {
        // One fragmentation pattern for both contiguity-based sides.
        const std::vector<Pfn> pinned =
            fragmentMemory(buddyPlain_, options.pinnedFraction, rng_,
                           options.pinGranularityOrder);
        buddyThp_ = std::make_unique<BuddyAllocator>(buddyPlain_);
        buddyPerf_ = std::make_unique<BuddyAllocator>(buddyPlain_);
        fragmentationIndex_ = buddyPlain_.fragmentationIndex();

        // Perforated pages: rank the 2 MiB physical windows by how
        // many pinned frames (future holes) each contains.
        const std::size_t windows = options.numFrames / 512;
        std::vector<unsigned> pinned_count(windows, 0);
        for (const Pfn pfn : pinned)
            ++pinned_count[pfn / 512];
        for (std::size_t w = 0; w < windows; ++w)
            windowOrder_.push_back(w);
        std::sort(windowOrder_.begin(), windowOrder_.end(),
                  [&](std::size_t a, std::size_t b) {
                      return pinned_count[a] < pinned_count[b];
                  });

        // The mosaic side carries the same *quantity* of pinned
        // pages, but placed through its own allocator: in a mosaic
        // system the pinned pages were iceberg-allocated too, so
        // their layout is hash-scattered by construction — physical
        // layout is exactly what mosaic does not depend on.
        Tick t = 0;
        for (std::size_t i = 0; i < pinned.size(); ++i) {
            const PageId id{pinnedAsid, static_cast<Vpn>(i)};
            const CandidateSet cand =
                mosaicAllocator_.mapper().candidates(id);
            const auto placement =
                mosaicAllocator_.place(cand, mosaicFrames_);
            ensure(placement.has_value(),
                   "fragmentation_sim: pinned fraction beyond "
                   "mosaic capacity");
            mosaicFrames_.map(placement->pfn, id, ++t);
        }
    }

    /** Demand-map a page outside the measured run — models the
     *  construction phase, whose faults arrive in roughly ascending
     *  VA order and therefore receive roughly sequential frames on
     *  unfragmented memory (the contiguity CoLT harvests). */
    void
    prefault(Vpn vpn)
    {
        ensureMapped(vpn);
    }

    void
    access(Addr vaddr, bool) override
    {
        const Vpn vpn = vpnOf(vaddr);
        ++accesses_;
        ensureMapped(vpn);

        if (!tlb4k_.lookup(asid_, vpn)) {
            const VanillaWalkResult walk = pt4k_.walk(vpn);
            tlb4k_.fill(asid_, vpn, walk.pfn);
        }

        if (!tlbThp_.lookup(asid_, vpn)) {
            const VanillaWalkResult walk = ptThp_.walk(vpn);
            if (walk.huge)
                tlbThp_.fillHuge(asid_, vpn, walk.pfn - (vpn & 0x1FF));
            else
                tlbThp_.fill(asid_, vpn, walk.pfn);
        }

        if (!tlbColt_.lookup(asid_, vpn)) {
            const VanillaWalkResult walk = pt4k_.walk(vpn);
            tlbColt_.fill(asid_, vpn, walk.pfn, [this](Vpn v) {
                const VanillaWalkResult w = pt4k_.walk(v);
                return w.present ? std::optional<Pfn>(w.pfn)
                                 : std::nullopt;
            });
        }

        if (!tlbPerf_.lookup(asid_, vpn)) {
            const PerfRegion &region = perfRegions_.at(vpn >> 9);
            const unsigned off = vpn & 0x1FF;
            if (!region.perforated)
                tlbPerf_.fill4k(asid_, vpn, region.flat4k.at(off));
            else if (isHole(region.holes, off))
                tlbPerf_.fill4k(asid_, vpn, region.holePfns.at(off));
            else
                tlbPerf_.fillPerforated(asid_, vpn, region.basePfn,
                                        region.holes);
        }

        if (!tlbMosaic_.lookup(asid_, vpn)) {
            const MosaicWalkResult walk = mosaicPt_.walk(vpn);
            tlbMosaic_.fill(asid_, vpn, walk.toc,
                            mosaicPt_.unmappedCode());
        }
    }

    FragmentationResult
    result() const
    {
        FragmentationResult out;
        out.fragmentationIndex = fragmentationIndex_;
        out.hugeMappings = hugeMappings_;
        out.hugeFallbacks = hugeFallbacks_;
        out.perforatedRegions = perforatedRegions_;
        out.perforatedFallbacks = perforatedFallbacks_;
        out.meanHoles = perforatedRegions_ == 0
            ? 0.0
            : static_cast<double>(totalHoles_) /
                  static_cast<double>(perforatedRegions_);
        out.accesses = accesses_;
        out.misses4k = tlb4k_.stats().misses;
        out.missesThp = tlbThp_.stats().misses;
        out.missesColt = tlbColt_.stats().misses;
        out.missesPerforated = tlbPerf_.stats().misses;
        out.missesMosaic = tlbMosaic_.stats().misses;
        out.coltCoverage = tlbColt_.stats().misses == 0
            ? 0.0
            : static_cast<double>(tlbColt_.pagesCoveredByFills()) /
                  static_cast<double>(tlbColt_.stats().misses);
        return out;
    }

  private:
    static MemoryGeometry
    makeGeometry(const FragmentationOptions &options)
    {
        MemoryGeometry g;
        g.numFrames = options.numFrames;
        return g;
    }

    void
    ensureMapped(Vpn vpn)
    {
        if (pt4k_.walk(vpn).present)
            return;

        // Plain 4 KiB side (shared with CoLT): any free frame.
        const std::optional<Pfn> frame = buddyPlain_.allocateFrame();
        ensure(frame.has_value(),
               "fragmentation_sim: plain side out of memory");
        pt4k_.map(vpn, *frame);

        // THP side: the first touch in a 2 MiB region decides once —
        // a huge mapping if the buddy allocator still has an aligned
        // block, else the whole region stays 4 KiB.
        if (!ptThp_.walk(vpn).present) {
            const Vpn region = vpn >> 9;
            if (!thp4kRegions_.contains(region)) {
                if (const auto huge = buddyThp_->allocateHuge()) {
                    ptThp_.mapHuge(vpn, *huge);
                    ++hugeMappings_;
                } else {
                    thp4kRegions_.insert(region);
                    ++hugeFallbacks_;
                }
            }
            if (thp4kRegions_.contains(region)) {
                const auto fallback = buddyThp_->allocateFrame();
                ensure(fallback.has_value(),
                       "fragmentation_sim: THP side out of memory");
                ptThp_.map(vpn, *fallback);
            }
        }

        // Perforated-pages side: the first touch of a 2 MiB region
        // claims the least-pinned remaining physical window if its
        // current hole count is tolerable; holes get individual
        // frames. Otherwise the whole region falls back to 4 KiB.
        {
            PerfRegion &region = perfRegions_[vpn >> 9];
            if (!region.decided)
                decidePerforated(region);
            if (!region.perforated) {
                const unsigned off = vpn & 0x1FF;
                if (!region.flat4k.contains(off)) {
                    const auto frame = buddyPerf_->allocateFrame();
                    ensure(frame.has_value(),
                           "fragmentation_sim: perforated side out "
                           "of memory");
                    region.flat4k.emplace(off, *frame);
                }
            }
        }

        // Mosaic side: iceberg placement around the pinned frames.
        const CandidateSet cand = mosaicAllocator_.mapper().candidates(
            PageId{asid_, vpn});
        const auto placement =
            mosaicAllocator_.place(cand, mosaicFrames_);
        ensure(placement.has_value(),
               "fragmentation_sim: mosaic conflict (pinned fraction "
               "+ footprint too close to capacity)");
        mosaicFrames_.map(placement->pfn, PageId{asid_, vpn}, ++clock_);
        mosaicPt_.setCpfn(vpn, placement->cpfn);
    }

    /** One VA 2 MiB region's perforated-pages state. */
    struct PerfRegion
    {
        bool decided = false;
        bool perforated = false;
        Pfn basePfn = invalidPfn;
        HoleBitmap holes{};
        std::unordered_map<unsigned, Pfn> holePfns;
        std::unordered_map<unsigned, Pfn> flat4k;
    };

    /** Claim a physical window for a region, or mark it fallback. */
    void
    decidePerforated(PerfRegion &region)
    {
        region.decided = true;
        while (windowCursor_ < windowOrder_.size()) {
            const std::size_t w = windowOrder_[windowCursor_];
            ++windowCursor_;
            const Pfn base = static_cast<Pfn>(w) * 512;
            unsigned holes = 0;
            for (unsigned i = 0; i < 512; ++i)
                holes += buddyPerf_->isFree(base + i) ? 0 : 1;
            if (holes > options_.maxHolesPerRegion)
                continue; // windows are sorted: later ones are worse
            region.perforated = true;
            region.basePfn = base;
            for (unsigned i = 0; i < 512; ++i) {
                if (buddyPerf_->isFree(base + i)) {
                    const bool ok = buddyPerf_->allocateSpecific(base + i);
                    ensure(ok, "fragmentation_sim: window race");
                } else {
                    setHole(region.holes, i);
                    const auto frame = buddyPerf_->allocateFrame();
                    ensure(frame.has_value(),
                           "fragmentation_sim: no frame for hole");
                    region.holePfns.emplace(i, *frame);
                }
            }
            ++perforatedRegions_;
            totalHoles_ += holes;
            return;
        }
        ++perforatedFallbacks_;
    }

    FragmentationOptions options_;
    BuddyAllocator buddyPlain_;
    std::unique_ptr<BuddyAllocator> buddyThp_;
    std::unique_ptr<BuddyAllocator> buddyPerf_;
    Rng rng_;

    MemoryGeometry mosaicGeometry_;
    MosaicAllocator mosaicAllocator_;
    FrameTable mosaicFrames_;

    VanillaPageTable pt4k_;
    VanillaPageTable ptThp_;
    MosaicPageTable mosaicPt_;

    VanillaTlb tlb4k_;
    VanillaTlb tlbThp_;
    CoalescedTlb tlbColt_;
    PerforatedTlb tlbPerf_;
    MosaicTlb tlbMosaic_;

    /** Perforated-pages bookkeeping. */
    std::unordered_map<Vpn, PerfRegion> perfRegions_;
    std::vector<std::size_t> windowOrder_;
    std::size_t windowCursor_ = 0;
    std::uint64_t perforatedRegions_ = 0;
    std::uint64_t perforatedFallbacks_ = 0;
    std::uint64_t totalHoles_ = 0;

    /** THP regions that fell back to 4 KiB mappings. */
    std::unordered_set<Vpn> thp4kRegions_;

    Asid asid_ = 1;
    Tick clock_ = 0;
    double fragmentationIndex_ = 0.0;
    std::uint64_t accesses_ = 0;
    std::uint64_t hugeMappings_ = 0;
    std::uint64_t hugeFallbacks_ = 0;
};

} // namespace

FragmentationResult
runFragmentation(const FragmentationOptions &options)
{
    ensure(options.pinnedFraction + options.footprintFraction < 0.95,
           "fragmentation: pinned + footprint must leave headroom");

    FragmentationSim sim(options);
    const auto footprint = static_cast<std::uint64_t>(
        static_cast<double>(options.numFrames) * pageSize *
        options.footprintFraction);
    const auto workload =
        makeFootprintWorkload(options.kind, footprint, options.seed);

    // Construction phase: discover the working set and fault it in
    // ascending VA order (see prefault()).
    class PageSetSink : public AccessSink
    {
      public:
        void
        access(Addr vaddr, bool) override
        {
            pages.insert(vpnOf(vaddr));
        }
        std::set<Vpn> pages;
    } pages;
    workload->run(pages);
    for (const Vpn vpn : pages.pages)
        sim.prefault(vpn);

    // Measured phase.
    workload->run(sim);
    return sim.result();
}

} // namespace mosaic
