#include "core/translation_sim.hh"

#include "tlb/design_registry.hh"
#include "util/log.hh"

namespace mosaic
{

namespace
{

/** TLB tag used for kernel mappings: they behave like x86 global
 *  pages, shared by every process. */
constexpr Asid kernelAsid = 0;

} // namespace

TranslationSim::TranslationSim(const TranslationSimConfig &config)
    : config_(config),
      allocator_(config.memory),
      frames_(config.memory.numFrames),
      kernelBase_(Addr{1} << 40),
      kernelRng_(config.seed ^ 0x4B45524Eull),
      activeAsid_(config.asid)
{
    ensure(!config_.waysList.empty(), "sim: need at least one ways value");
    ensure(!config_.arities.empty(), "sim: need at least one arity");

    for (const unsigned ways : config_.waysList) {
        const TlbGeometry g{config_.tlbEntries, ways};
        vanillaTlbs_.push_back(std::make_unique<VanillaTlb>(g));
        auto &row = mosaicTlbs_.emplace_back();
        for (const unsigned arity : config_.arities)
            row.push_back(std::make_unique<MosaicTlb>(g, arity));
        if (config_.instr.enabled) {
            itlbVanilla_.push_back(std::make_unique<VanillaTlb>(g));
            auto &irow = itlbMosaic_.emplace_back();
            for (const unsigned arity : config_.arities)
                irow.push_back(std::make_unique<MosaicTlb>(g, arity));
        }
    }

    if (config_.vmShards > 0) {
        // Round the pool up so it splits into bucket-aligned shard
        // slices; ample-memory experiments only grow, never shrink.
        ShardedVmConfig vcfg;
        vcfg.base.geometry = config_.memory;
        const std::size_t align =
            config_.vmShards * config_.memory.slotsPerBucket();
        vcfg.base.geometry.numFrames =
            (config_.memory.numFrames + align - 1) / align * align;
        vcfg.base.arity = config_.arities.front();
        vcfg.base.seed = config_.seed;
        vcfg.shards = config_.vmShards;
        shardedVm_ = std::make_unique<ShardedMosaicVm>(vcfg);
    }

    DesignParams defaults;
    defaults.geometry =
        TlbGeometry{config_.tlbEntries, config_.designWays};
    for (const std::string &spec : config_.designSpecs) {
        Result<std::unique_ptr<TranslationDesign>> design =
            makeTranslationDesign(spec, defaults);
        if (!design.ok())
            fatal("translation_sim: " + design.status().toString());
        designs_.push_back(std::move(design.value()));
    }
}

std::optional<Pfn>
TranslationSim::DesignWalker::pfnOf(Asid asid, Vpn vpn)
{
    const VanillaWalkResult walk = sim_.vanillaPtFor(asid).walk(vpn);
    if (!walk.present)
        return std::nullopt;
    return walk.pfn;
}

void
TranslationSim::DesignWalker::tocOf(Asid asid, Vpn vpn, unsigned arity,
                                    std::span<Cpfn> out)
{
    const Cpfn unmapped = unmappedCode();
    const Vpn first = vpn & ~Vpn{arity - 1};
    for (unsigned i = 0; i < arity; ++i) {
        const Cpfn *cpfn =
            sim_.designCpfns_.find(packPageId(PageId{asid, first + i}));
        out[i] = cpfn != nullptr ? *cpfn : unmapped;
    }
}

Cpfn
TranslationSim::DesignWalker::unmappedCode() const
{
    return sim_.allocator_.mapper().codec().invalid();
}

VanillaPageTable &
TranslationSim::vanillaPtFor(Asid asid)
{
    auto [pt, inserted] = vanillaPts_.emplace(asid);
    if (inserted)
        pt = std::make_unique<VanillaPageTable>();
    return *pt;
}

TranslationSim::MosaicPtSet &
TranslationSim::mosaicPtsFor(Asid asid)
{
    auto [set, inserted] = mosaicPts_.emplace(asid);
    if (inserted) {
        const Cpfn unmapped = allocator_.mapper().codec().invalid();
        for (const unsigned arity : config_.arities) {
            set.push_back(
                std::make_unique<MosaicPageTable>(arity, unmapped));
        }
    }
    return set;
}

const TlbStats &
TranslationSim::vanillaStats(std::size_t ways_idx) const
{
    return vanillaTlbs_.at(ways_idx)->stats();
}

const TlbStats &
TranslationSim::mosaicStats(std::size_t ways_idx,
                            std::size_t arity_idx) const
{
    return mosaicTlbs_.at(ways_idx).at(arity_idx)->stats();
}

const TlbStats &
TranslationSim::itlbVanillaStats(std::size_t ways_idx) const
{
    return itlbVanilla_.at(ways_idx)->stats();
}

const TlbStats &
TranslationSim::itlbMosaicStats(std::size_t ways_idx,
                                std::size_t arity_idx) const
{
    return itlbMosaic_.at(ways_idx).at(arity_idx)->stats();
}

Pfn
TranslationSim::vanillaPfnOf(Vpn vpn) const
{
    auto *self = const_cast<TranslationSim *>(this);
    const VanillaWalkResult walk =
        self->vanillaPtFor(activeAsid_).walk(vpn);
    return walk.present ? walk.pfn : invalidPfn;
}

Pfn
TranslationSim::mosaicPfnOf(Vpn vpn) const
{
    auto *self = const_cast<TranslationSim *>(this);
    const MosaicWalkResult walk =
        self->mosaicPtsFor(activeAsid_).front()->walk(vpn);
    if (!walk.present)
        return invalidPfn;
    const CandidateSet cand = allocator_.mapper().candidates(
        PageId{activeAsid_, vpn});
    return allocator_.mapper().toPfn(cand, walk.cpfn);
}

void
TranslationSim::ensureMapped(Vpn vpn)
{
    VanillaPageTable &vanilla_pt = vanillaPtFor(activeAsid_);
    if (vanilla_pt.walk(vpn).present)
        return;

    // Vanilla side: bump allocation of a fresh frame.
    vanilla_pt.map(vpn, vanillaNextPfn_++);

    // Mosaic side: iceberg placement. Memory is sized well below the
    // conflict regime for this experiment, so a conflict means the
    // harness configured too little memory.
    ++clock_;
    const CandidateSet cand = allocator_.mapper().candidates(
        PageId{activeAsid_, vpn});
    const std::optional<Placement> placement =
        allocator_.place(cand, frames_);
    if (!placement) {
        fatal("translation_sim: mosaic memory too small for workload "
              "(associativity conflict during demand mapping)");
    }
    frames_.map(placement->pfn, PageId{activeAsid_, vpn}, clock_);
    for (auto &pt : mosaicPtsFor(activeAsid_))
        pt->setCpfn(vpn, placement->cpfn);
    if (!designs_.empty()) {
        auto [cpfn, inserted] =
            designCpfns_.emplace(packPageId(PageId{activeAsid_, vpn}));
        cpfn = placement->cpfn;
        (void)inserted;
    }
    ++mappedPages_;
}

void
TranslationSim::translate(Vpn vpn, bool kernel)
{
    if (kernel) {
        // Vanilla maps the kernel with 2 MiB pages; each mosaic TLB
        // caches kernel pages as conventional full entries. Kernel
        // mappings are global: one ASID tag shared by everyone.
        VanillaPageTable &kernel_pt = vanillaPtFor(kernelAsid);
        VanillaWalkResult walk = kernel_pt.walk(vpn);
        if (!walk.present) {
            // Allocate a 512-frame-aligned huge region lazily.
            vanillaNextPfn_ = (vanillaNextPfn_ + 511) & ~Pfn{511};
            kernel_pt.mapHuge(vpn, vanillaNextPfn_);
            vanillaNextPfn_ += 512;
            walk = kernel_pt.walk(vpn);
        }
        for (auto &tlb : vanillaTlbs_) {
            if (!tlb->lookup(kernelAsid, vpn))
                tlb->fillHuge(kernelAsid, vpn, walk.pfn - (vpn & 0x1FF));
        }
        for (auto &row : mosaicTlbs_) {
            for (auto &tlb : row) {
                if (!tlb->lookupConventional(kernelAsid, vpn))
                    tlb->fillConventional(kernelAsid, vpn, walk.pfn);
            }
        }
        return;
    }

    const Asid asid = activeAsid_;
    ensureMapped(vpn);

    for (auto &tlb : vanillaTlbs_) {
        if (!tlb->lookup(asid, vpn)) {
            const VanillaWalkResult walk = vanillaPtFor(asid).walk(vpn);
            tlb->fill(asid, vpn, walk.pfn);
        }
    }

    const Cpfn unmapped = allocator_.mapper().codec().invalid();
    MosaicPtSet &pts = mosaicPtsFor(asid);
    for (std::size_t a = 0; a < pts.size(); ++a) {
        bool walked = false;
        MosaicWalkResult walk;
        for (auto &row : mosaicTlbs_) {
            MosaicTlb &tlb = *row[a];
            if (!tlb.lookup(asid, vpn)) {
                if (!walked) {
                    walk = pts[a]->walk(vpn);
                    walked = true;
                }
                tlb.fill(asid, vpn, walk.toc, unmapped);
            }
        }
    }

    for (auto &design : designs_)
        design->access(asid, vpn, designWalker_);
}

void
TranslationSim::instructionFetch()
{
    const InstrConfig &i = config_.instr;
    std::uint64_t offset;
    if (instrRng_.chance(i.hotFraction))
        offset = instrRng_.below(i.hotBytes);
    else
        offset = instrRng_.below(i.codeBytes);
    const Vpn vpn = vpnOf(codeBase_ + offset);
    const Asid asid = activeAsid_;
    ensureMapped(vpn);

    for (auto &tlb : itlbVanilla_) {
        if (!tlb->lookup(asid, vpn)) {
            const VanillaWalkResult walk = vanillaPtFor(asid).walk(vpn);
            tlb->fill(asid, vpn, walk.pfn);
        }
    }
    const Cpfn unmapped = allocator_.mapper().codec().invalid();
    MosaicPtSet &pts = mosaicPtsFor(asid);
    for (std::size_t a = 0; a < pts.size(); ++a) {
        for (auto &row : itlbMosaic_) {
            MosaicTlb &tlb = *row[a];
            if (!tlb.lookup(asid, vpn)) {
                const MosaicWalkResult walk = pts[a]->walk(vpn);
                tlb.fill(asid, vpn, walk.toc, unmapped);
            }
        }
    }
}

void
TranslationSim::kernelAccess()
{
    const KernelConfig &k = config_.kernel;
    std::uint64_t offset;
    if (kernelRng_.chance(k.hotFraction))
        offset = kernelRng_.below(k.hotBytes);
    else
        offset = kernelRng_.below(k.regionBytes);
    ++accesses_;
    translate(vpnOf(kernelBase_ + offset), true);
}

void
TranslationSim::accessBatch(std::span<const MemRef> block)
{
    // The whole TLB grid probes the same VPN per reference, so one
    // lookahead reference's sets are warmed across every instance
    // while the current reference translates. The apply loop is the
    // scalar path itself: equivalence is by identical call sequence.
    constexpr std::size_t lookahead = 4;
    for (std::size_t i = 0; i < block.size(); ++i) {
        if (i + lookahead < block.size()) {
            const Vpn vpn = vpnOf(block[i + lookahead].vaddr);
            for (const auto &tlb : vanillaTlbs_)
                tlb->prefetchSets(vpn);
            for (const auto &row : mosaicTlbs_) {
                for (const auto &tlb : row)
                    tlb->prefetchSets(vpn);
            }
            for (const auto &design : designs_)
                design->prefetchSets(vpn);
        }
        access(block[i].vaddr, block[i].write);
    }
}

void
TranslationSim::access(Addr vaddr, bool write)
{
    ++accesses_;
    translate(vpnOf(vaddr), false);

    if (shardedVm_)
        shardedVm_->touch(activeAsid_, vpnOf(vaddr), write);

    if (config_.instr.enabled)
        instructionFetch();

    if (config_.kernel.accessEvery != 0 &&
            ++sinceKernel_ >= config_.kernel.accessEvery) {
        sinceKernel_ = 0;
        kernelAccess();
    }
}

} // namespace mosaic
