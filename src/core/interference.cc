#include "core/interference.hh"

#include <algorithm>
#include <chrono>
#include <span>

#include "core/batch_pipeline.hh"
#include "core/experiment_export.hh"
#include "core/translation_sim.hh"

namespace mosaic
{

namespace
{

using Clock = std::chrono::steady_clock;

std::uint64_t
designMetric(const TranslationDesign &design, std::string_view key)
{
    std::uint64_t out = 0;
    forEachDesignMetric(design,
                        [&](const char *name, std::uint64_t value) {
                            if (key == name)
                                out = value;
                        });
    return out;
}

/** Design indices in the cell's spec list. */
constexpr std::size_t kVanilla = 0;
constexpr std::size_t kMosaic = 1;
constexpr std::size_t kPwc = 2;

std::vector<std::string>
interferenceSpecs(const InterferenceOptions &options)
{
    const std::string a = std::to_string(options.arity);
    return {
        "vanilla",
        "mosaic:arity=" + a,
        "pwc:base=mosaic,arity=" + a,
    };
}

TenantDesignCounters
snapshot(const TranslationSim &sim)
{
    TenantDesignCounters s;
    s.vanillaMisses = designMetric(sim.design(kVanilla), "misses");
    s.vanillaWalkRefs = designMetric(sim.design(kVanilla), "walkRefs");
    s.mosaicMisses = designMetric(sim.design(kMosaic), "misses");
    s.mosaicWalkRefs = designMetric(sim.design(kMosaic), "walkRefs");
    s.pwcMisses = designMetric(sim.design(kPwc), "misses");
    s.pwcWalkRefs = designMetric(sim.design(kPwc), "walkRefs");
    return s;
}

void
accumulateDelta(TenantDesignCounters &into,
                const TenantDesignCounters &before,
                const TenantDesignCounters &after)
{
    into.vanillaMisses += after.vanillaMisses - before.vanillaMisses;
    into.vanillaWalkRefs +=
        after.vanillaWalkRefs - before.vanillaWalkRefs;
    into.mosaicMisses += after.mosaicMisses - before.mosaicMisses;
    into.mosaicWalkRefs += after.mosaicWalkRefs - before.mosaicWalkRefs;
    into.pwcMisses += after.pwcMisses - before.pwcMisses;
    into.pwcWalkRefs += after.pwcWalkRefs - before.pwcWalkRefs;
}

/** Feed trace[begin, end) to the sim, honoring MOSAIC_BATCH. */
void
feed(TranslationSim &sim, const std::vector<MemRef> &trace,
     std::size_t begin, std::size_t end, unsigned block)
{
    if (block > 1) {
        for (std::size_t i = begin; i < end; i += block) {
            const std::size_t n = std::min<std::size_t>(block, end - i);
            sim.accessBatch(std::span<const MemRef>(&trace[i], n));
        }
    } else {
        for (std::size_t i = begin; i < end; ++i)
            sim.access(trace[i].vaddr, trace[i].write);
    }
}

std::uint64_t
slowdownPermille(std::uint64_t accesses, std::uint64_t shared_walk,
                 std::uint64_t solo_walk)
{
    const std::uint64_t solo_cost = accesses + solo_walk;
    if (solo_cost == 0)
        return 1000;
    return (accesses + shared_walk) * 1000 / solo_cost;
}

} // namespace

std::uint64_t
InterferenceTenantResult::vanillaSlowdownPermille() const
{
    return slowdownPermille(accesses, shared.vanillaWalkRefs,
                            solo.vanillaWalkRefs);
}

std::uint64_t
InterferenceTenantResult::mosaicSlowdownPermille() const
{
    return slowdownPermille(accesses, shared.mosaicWalkRefs,
                            solo.mosaicWalkRefs);
}

std::vector<InterferenceMix>
defaultInterferenceMixes()
{
    return {
        {"gpu_kv",
         {{WorkloadKind::WarpGpu, 1.0}, {WorkloadKind::KvServer, 1.0}}},
        {"server_mix",
         {{WorkloadKind::KvServer, 1.0},
          {WorkloadKind::WebSession, 1.0},
          {WorkloadKind::ScanAnalytics, 1.0}}},
        {"gpu_scan",
         {{WorkloadKind::WarpGpu, 1.0},
          {WorkloadKind::ScanAnalytics, 1.0}}},
        {"full_stack",
         {{WorkloadKind::WarpGpu, 1.0},
          {WorkloadKind::KvServer, 1.0},
          {WorkloadKind::WebSession, 1.0},
          {WorkloadKind::ScanAnalytics, 1.0}}},
    };
}

InterferenceCell
runInterferenceCell(const InterferenceOptions &options,
                    std::size_t mix_index)
{
    const auto start = Clock::now();
    const InterferenceMix &mix = options.mixes.at(mix_index);
    const unsigned block = batchBlockFromEnv();

    // Record each tenant's reference stream; streams are pure
    // functions of (seed, mix, tenant), never of scheduling.
    std::vector<std::vector<MemRef>> traces(mix.tenants.size());
    InterferenceCell cell;
    cell.mixName = mix.name;
    cell.tenants.resize(mix.tenants.size());
    std::uint64_t total_footprint = 0;
    for (std::size_t t = 0; t < mix.tenants.size(); ++t) {
        const InterferenceTenant &tenant = mix.tenants[t];
        const auto workload = makeFig6Workload(
            tenant.kind, options.scale * tenant.scale,
            experimentCellSeed(options.seed, mix_index * 64 + t));
        VectorSink sink;
        workload->run(sink);
        traces[t] = sink.trace();
        cell.tenants[t].kind = tenant.kind;
        cell.tenants[t].footprintBytes =
            workload->info().footprintBytes;
        cell.tenants[t].accesses = traces[t].size();
        total_footprint += workload->info().footprintBytes;
    }

    TranslationSimConfig config;
    config.memory = ampleGeometry(total_footprint);
    config.tlbEntries = options.tlbEntries;
    config.waysList = {options.ways};
    config.arities = {options.arity};
    config.kernel.accessEvery = 0;
    config.designWays = options.ways;
    config.designSpecs = interferenceSpecs(options);
    config.seed = options.seed;

    // Shared run: round-robin quanta until every trace drains, with
    // per-tenant delta attribution at quantum boundaries.
    {
        config.vmShards = options.vmShards;
        TranslationSim sim(config);
        std::vector<std::size_t> cursor(mix.tenants.size(), 0);
        bool work_left = true;
        while (work_left) {
            work_left = false;
            for (std::size_t t = 0; t < mix.tenants.size(); ++t) {
                const auto &trace = traces[t];
                if (cursor[t] >= trace.size())
                    continue;
                sim.setActiveAsid(static_cast<Asid>(t + 1));
                const std::size_t end = std::min(
                    trace.size(), cursor[t] + options.quantum);
                const TenantDesignCounters before = snapshot(sim);
                feed(sim, trace, cursor[t], end, block);
                cursor[t] = end;
                accumulateDelta(cell.tenants[t].shared, before,
                                snapshot(sim));
                cell.tenants[t].reachPagesSum +=
                    sim.design(kMosaic).reachPages();
                ++cell.tenants[t].quanta;
                work_left = work_left || cursor[t] < trace.size();
            }
        }
        cell.accesses = sim.totalAccesses();
        if (const ShardedMosaicVm *vm = sim.shardedVm()) {
            const VmStats &s = vm->stats();
            cell.vmShards = vm->numShards();
            cell.vmMinorFaults = s.minorFaults;
            cell.vmSwapOuts = s.swapOuts;
            cell.vmConflicts = s.conflicts;
            cell.vmSteals = vm->counters().steals;
            cell.vmResidentPages = vm->residentPages();
        }
    }

    // Solo baselines: each tenant alone on an identical machine.
    config.vmShards = 0;
    for (std::size_t t = 0; t < mix.tenants.size(); ++t) {
        TranslationSim solo(config);
        solo.setActiveAsid(static_cast<Asid>(t + 1));
        feed(solo, traces[t], 0, traces[t].size(), block);
        accumulateDelta(cell.tenants[t].solo, TenantDesignCounters{},
                        snapshot(solo));
    }

    cell.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return cell;
}

std::vector<InterferenceCell>
runInterference(const InterferenceOptions &options, ThreadPool &pool)
{
    std::vector<InterferenceCell> cells(options.mixes.size());
    parallelFor(pool, cells.size(), [&](std::size_t i) {
        cells[i] = runInterferenceCell(options, i);
    });
    return cells;
}

std::vector<InterferenceCell>
runInterference(const InterferenceOptions &options)
{
    return runInterference(options, ThreadPool::shared());
}

void
recordInterference(telemetry::Registry &r, const InterferenceCell &cell)
{
    const std::string mix = "interference." + cell.mixName;
    r.counter(mix + ".accesses", cell.accesses);
    r.counter(mix + ".tenants", cell.tenants.size());
    if (cell.vmShards != 0) {
        r.counter(mix + ".vm.shards", cell.vmShards);
        r.counter(mix + ".vm.minorFaults", cell.vmMinorFaults);
        r.counter(mix + ".vm.swapOuts", cell.vmSwapOuts);
        r.counter(mix + ".vm.conflicts", cell.vmConflicts);
        r.counter(mix + ".vm.steals", cell.vmSteals);
        r.counter(mix + ".vm.residentPages", cell.vmResidentPages);
    }
    for (std::size_t t = 0; t < cell.tenants.size(); ++t) {
        const InterferenceTenantResult &res = cell.tenants[t];
        const std::string base = mix + ".tenant" + std::to_string(t) +
                                 "." + metricWorkloadKey(res.kind);
        r.counter(base + ".footprintBytes", res.footprintBytes);
        r.counter(base + ".accesses", res.accesses);
        r.counter(base + ".quanta", res.quanta);
        r.counter(base + ".meanReachPages", res.meanReachPages());
        const auto record = [&](const std::string &prefix,
                                const TenantDesignCounters &c) {
            r.counter(prefix + ".vanilla.misses", c.vanillaMisses);
            r.counter(prefix + ".vanilla.walkRefs", c.vanillaWalkRefs);
            r.counter(prefix + ".mosaic.misses", c.mosaicMisses);
            r.counter(prefix + ".mosaic.walkRefs", c.mosaicWalkRefs);
            r.counter(prefix + ".pwc.misses", c.pwcMisses);
            r.counter(prefix + ".pwc.walkRefs", c.pwcWalkRefs);
        };
        record(base + ".shared", res.shared);
        record(base + ".solo", res.solo);
        r.counter(base + ".slowdown.vanillaPermille",
                  res.vanillaSlowdownPermille());
        r.counter(base + ".slowdown.mosaicPermille",
                  res.mosaicSlowdownPermille());
    }
}

} // namespace mosaic
