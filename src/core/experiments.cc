#include "core/experiments.hh"

#include "core/translation_sim.hh"
#include "core/vm_touch_sink.hh"
#include "os/linux_vm.hh"
#include "os/mosaic_vm.hh"

namespace mosaic
{

namespace
{

/** Mosaic memory big enough that Fig 6 never sees conflicts. */
MemoryGeometry
ampleGeometry(std::uint64_t footprint_bytes)
{
    MemoryGeometry g;
    const std::uint64_t pages = footprint_bytes / pageSize + 1;
    const std::uint64_t frames = pages * 13 / 10 + 4096;
    g.numFrames = (frames / g.slotsPerBucket() + 1) * g.slotsPerBucket();
    return g;
}

} // namespace

Fig6Result
runFig6(WorkloadKind kind, const Fig6Options &options)
{
    const std::unique_ptr<Workload> workload =
        makeFig6Workload(kind, options.scale, options.seed);

    TranslationSimConfig config;
    config.memory = ampleGeometry(workload->info().footprintBytes);
    config.tlbEntries = options.tlbEntries;
    config.waysList = options.waysList;
    config.arities = options.arities;
    if (!options.kernelHugePages)
        config.kernel.accessEvery = 0;
    config.seed = options.seed;

    TranslationSim sim(config);
    workload->run(sim);

    Fig6Result result;
    result.kind = kind;
    result.footprintBytes = workload->info().footprintBytes;
    result.accesses = sim.totalAccesses();
    result.arities = options.arities;
    for (std::size_t w = 0; w < options.waysList.size(); ++w) {
        Fig6Row row;
        row.ways = options.waysList[w];
        row.vanillaMisses = sim.vanillaStats(w).misses;
        for (std::size_t a = 0; a < options.arities.size(); ++a)
            row.mosaicMisses.push_back(sim.mosaicStats(w, a).misses);
        result.rows.push_back(std::move(row));
    }
    return result;
}

Table3Row
runTable3(WorkloadKind kind, const Table3Options &options)
{
    Table3Row row;
    row.kind = kind;

    const std::uint64_t mem_bytes =
        std::uint64_t{options.memFrames} * pageSize;
    const auto footprint = static_cast<std::uint64_t>(
        static_cast<double>(mem_bytes) * options.footprintFactor);

    for (unsigned run = 0; run < options.runs; ++run) {
        const std::uint64_t seed = options.seed + 1000 * run;
        const std::unique_ptr<Workload> workload =
            makeFootprintWorkload(kind, footprint, seed);
        row.footprintBytes = workload->info().footprintBytes;

        MosaicVmConfig config;
        config.geometry.numFrames = options.memFrames;
        config.geometry.hashSeed = seed ^ 0xA110C;
        config.seed = seed;
        MosaicVm vm(config);

        VmTouchSink sink(vm, 1);
        workload->run(sink);

        if (vm.stats().firstConflictUtilization >= 0) {
            row.firstConflictPct.add(
                100.0 * vm.stats().firstConflictUtilization);
        }
        if (vm.stats().steadyUtilization.count() > 0)
            row.steadyPct.add(100.0 * vm.stats().steadyUtilization.mean());
    }
    return row;
}

double
Table4Row::differencePct() const
{
    const double linux_io = linuxSwapIo.mean();
    const double mosaic_io = mosaicSwapIo.mean();
    if (linux_io == 0.0)
        return 0.0;
    return 100.0 * (linux_io - mosaic_io) / linux_io;
}

Table4Row
runTable4(WorkloadKind kind, const Table4Options &options)
{
    Table4Row row;
    row.kind = kind;

    const std::uint64_t mem_bytes =
        std::uint64_t{options.memFrames} * pageSize;
    const auto footprint = static_cast<std::uint64_t>(
        static_cast<double>(mem_bytes) * options.footprintFactor);

    for (unsigned run = 0; run < options.runs; ++run) {
        const std::uint64_t seed = options.seed + 1000 * run;
        const std::unique_ptr<Workload> workload =
            makeFootprintWorkload(kind, footprint, seed);
        row.footprintBytes = workload->info().footprintBytes;

        LinuxVmConfig linux_config;
        linux_config.numFrames = options.memFrames;
        LinuxVm linux_vm(linux_config);
        VmTouchSink linux_sink(linux_vm, 1);
        workload->run(linux_sink);
        row.linuxSwapIo.add(
            static_cast<double>(linux_vm.stats().swapIns +
                                linux_vm.stats().swapOuts));

        MosaicVmConfig mosaic_config;
        mosaic_config.geometry.numFrames = options.memFrames;
        mosaic_config.geometry.hashSeed = seed ^ 0xA110C;
        mosaic_config.seed = seed;
        MosaicVm mosaic_vm(mosaic_config);
        VmTouchSink mosaic_sink(mosaic_vm, 1);
        workload->run(mosaic_sink);
        row.mosaicSwapIo.add(
            static_cast<double>(mosaic_vm.stats().swapIns +
                                mosaic_vm.stats().swapOuts));
    }
    return row;
}

} // namespace mosaic
