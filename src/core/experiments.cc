#include "core/experiments.hh"

#include <chrono>

#include "core/batch_pipeline.hh"
#include "core/translation_sim.hh"
#include "core/vm_touch_sink.hh"
#include "os/linux_vm.hh"
#include "os/mosaic_vm.hh"
#include "util/parse.hh"

namespace mosaic
{

MemoryGeometry
ampleGeometry(std::uint64_t footprint_bytes)
{
    MemoryGeometry g;
    const std::uint64_t pages = footprint_bytes / pageSize + 1;
    const std::uint64_t frames = pages * 13 / 10 + 4096;
    g.numFrames = (frames / g.slotsPerBucket() + 1) * g.slotsPerBucket();
    return g;
}

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One Table 3 repetition, fully self-contained. */
struct Table3Sample
{
    std::uint64_t footprintBytes = 0;
    double firstConflictPct = -1.0; // < 0: no conflict observed
    double steadyPct = -1.0;        // < 0: no steady-state samples
    double seconds = 0.0;
};

Table3Sample
runTable3Cell(WorkloadKind kind, const Table3Options &options,
              unsigned run)
{
    const auto start = Clock::now();
    const std::uint64_t seed = experimentCellSeed(options.seed, run);

    const std::uint64_t mem_bytes =
        std::uint64_t{options.memFrames} * pageSize;
    const auto footprint = static_cast<std::uint64_t>(
        static_cast<double>(mem_bytes) * options.footprintFactor);
    const std::unique_ptr<Workload> workload =
        makeFootprintWorkload(kind, footprint, seed);

    MosaicVmConfig config;
    config.geometry.numFrames = options.memFrames;
    config.geometry.hashSeed = seed ^ 0xA110C;
    config.seed = seed;
    MosaicVm vm(config);

    // Scalar or batched per MOSAIC_BATCH; results are identical by
    // the touchBatch contract (tests/test_batch_pipeline.cc).
    const auto sink = makeVmTouchSink(vm, 1, batchBlockFromEnv());
    workload->run(*sink);
    sink->flush();

    Table3Sample sample;
    sample.footprintBytes = workload->info().footprintBytes;
    if (vm.stats().firstConflictUtilization >= 0) {
        sample.firstConflictPct =
            100.0 * vm.stats().firstConflictUtilization;
    }
    if (vm.stats().steadyUtilization.count() > 0)
        sample.steadyPct = 100.0 * vm.stats().steadyUtilization.mean();
    sample.seconds = secondsSince(start);
    return sample;
}

/** One Table 4 repetition (both VMs), fully self-contained. */
struct Table4Sample
{
    std::uint64_t footprintBytes = 0;
    double linuxSwapIo = 0.0;
    double mosaicSwapIo = 0.0;
    double seconds = 0.0;
};

Table4Sample
runTable4Cell(WorkloadKind kind, const Table4Options &options,
              unsigned run)
{
    const auto start = Clock::now();
    const std::uint64_t seed = experimentCellSeed(options.seed, run);

    const std::uint64_t mem_bytes =
        std::uint64_t{options.memFrames} * pageSize;
    const auto footprint = static_cast<std::uint64_t>(
        static_cast<double>(mem_bytes) * options.footprintFactor);
    const std::unique_ptr<Workload> workload =
        makeFootprintWorkload(kind, footprint, seed);

    Table4Sample sample;
    sample.footprintBytes = workload->info().footprintBytes;

    LinuxVmConfig linux_config;
    linux_config.numFrames = options.memFrames;
    LinuxVm linux_vm(linux_config);
    const unsigned block = batchBlockFromEnv();
    const auto linux_sink = makeVmTouchSink(linux_vm, 1, block);
    workload->run(*linux_sink);
    linux_sink->flush();
    sample.linuxSwapIo =
        static_cast<double>(linux_vm.stats().swapIns +
                            linux_vm.stats().swapOuts);

    MosaicVmConfig mosaic_config;
    mosaic_config.geometry.numFrames = options.memFrames;
    mosaic_config.geometry.hashSeed = seed ^ 0xA110C;
    mosaic_config.seed = seed;
    MosaicVm mosaic_vm(mosaic_config);
    const auto mosaic_sink = makeVmTouchSink(mosaic_vm, 1, block);
    workload->run(*mosaic_sink);
    mosaic_sink->flush();
    sample.mosaicSwapIo =
        static_cast<double>(mosaic_vm.stats().swapIns +
                            mosaic_vm.stats().swapOuts);

    sample.seconds = secondsSince(start);
    return sample;
}

} // namespace

Fig6Cell
runFig6Cell(WorkloadKind kind, const Fig6Options &options,
            std::size_t ways_index)
{
    const auto start = Clock::now();

    // The reference stream is shared by every cell of the panel (the
    // figure compares TLB geometries on one trace), so the workload
    // and sim seeds come from options.seed alone; this cell merely
    // owns private generator instances.
    const std::unique_ptr<Workload> workload =
        makeFig6Workload(kind, options.scale, options.seed);

    TranslationSimConfig config;
    config.memory = ampleGeometry(workload->info().footprintBytes);
    config.tlbEntries = options.tlbEntries;
    config.waysList = {options.waysList.at(ways_index)};
    config.arities = options.arities;
    if (!options.kernelHugePages)
        config.kernel.accessEvery = 0;
    config.seed = options.seed;

    // MOSAIC_FULL_POOL=k (k >= 1) lifts the scaled-down-memory wart:
    // the cell runs against the paper's real 4 GiB / 1 Mi-frame pool,
    // demand-paged through a k-shard ShardedMosaicVm (DESIGN.md §17)
    // instead of a footprint-sized ample pool. Malformed values exit
    // via envUnsigned's strict parse — never a silent default.
    if (const std::uint64_t shards = envUnsigned("MOSAIC_FULL_POOL", 0);
            shards >= 1) {
        MemoryGeometry full = MemoryGeometry::paperLinuxPool();
        full.hashSeed = config.memory.hashSeed;
        config.memory = full;
        config.vmShards = shards;
    }

    TranslationSim sim(config);
    if (const unsigned block = batchBlockFromEnv(); block > 1) {
        BatchTranslationSink sink(sim, block);
        workload->run(sink);
        sink.flush();
    } else {
        workload->run(sim);
    }

    Fig6Cell cell;
    cell.footprintBytes = workload->info().footprintBytes;
    cell.accesses = sim.totalAccesses();
    cell.row.ways = options.waysList.at(ways_index);
    cell.row.vanillaMisses = sim.vanillaStats(0).misses;
    for (std::size_t a = 0; a < options.arities.size(); ++a)
        cell.row.mosaicMisses.push_back(sim.mosaicStats(0, a).misses);
    cell.seconds = secondsSince(start);
    return cell;
}

Fig6Result
runFig6(WorkloadKind kind, const Fig6Options &options,
        ThreadPool &pool)
{
    std::vector<Fig6Cell> cells(options.waysList.size());
    parallelFor(pool, cells.size(), [&](std::size_t w) {
        cells[w] = runFig6Cell(kind, options, w);
    });

    Fig6Result result;
    result.kind = kind;
    result.arities = options.arities;
    for (Fig6Cell &cell : cells) {
        // Identical across cells (one shared reference stream).
        result.footprintBytes = cell.footprintBytes;
        result.accesses = cell.accesses;
        result.cellSeconds += cell.seconds;
        result.rows.push_back(std::move(cell.row));
    }
    return result;
}

Fig6Result
runFig6(WorkloadKind kind, const Fig6Options &options)
{
    return runFig6(kind, options, ThreadPool::shared());
}

Table3Row
runTable3(WorkloadKind kind, const Table3Options &options,
          ThreadPool &pool)
{
    std::vector<Table3Sample> samples(options.runs);
    parallelFor(pool, samples.size(), [&](std::size_t run) {
        samples[run] =
            runTable3Cell(kind, options, static_cast<unsigned>(run));
    });

    Table3Row row;
    row.kind = kind;
    for (const Table3Sample &sample : samples) {
        row.footprintBytes = sample.footprintBytes;
        if (sample.firstConflictPct >= 0)
            row.firstConflictPct.add(sample.firstConflictPct);
        if (sample.steadyPct >= 0)
            row.steadyPct.add(sample.steadyPct);
        row.cellSeconds += sample.seconds;
    }
    return row;
}

Table3Row
runTable3(WorkloadKind kind, const Table3Options &options)
{
    return runTable3(kind, options, ThreadPool::shared());
}

double
Table4Row::differencePct() const
{
    const double linux_io = linuxSwapIo.mean();
    const double mosaic_io = mosaicSwapIo.mean();
    if (linux_io == 0.0)
        return 0.0;
    return 100.0 * (linux_io - mosaic_io) / linux_io;
}

Table4Row
runTable4(WorkloadKind kind, const Table4Options &options,
          ThreadPool &pool)
{
    std::vector<Table4Sample> samples(options.runs);
    parallelFor(pool, samples.size(), [&](std::size_t run) {
        samples[run] =
            runTable4Cell(kind, options, static_cast<unsigned>(run));
    });

    Table4Row row;
    row.kind = kind;
    for (const Table4Sample &sample : samples) {
        row.footprintBytes = sample.footprintBytes;
        row.linuxSwapIo.add(sample.linuxSwapIo);
        row.mosaicSwapIo.add(sample.mosaicSwapIo);
        row.cellSeconds += sample.seconds;
    }
    return row;
}

Table4Row
runTable4(WorkloadKind kind, const Table4Options &options)
{
    return runTable4(kind, options, ThreadPool::shared());
}

} // namespace mosaic
