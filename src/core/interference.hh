/**
 * @file
 * The multiprogrammed interference sweep (DESIGN.md §15): mixes of
 * workload engines co-scheduled as concurrent ASIDs on one simulated
 * machine, context-switching every quantum. TLB entries are
 * ASID-tagged (nothing flushes), so tenants compete for capacity —
 * the sweep reports, per tenant, the misses/walk-cost it saw while
 * scheduled and its slowdown relative to running alone on the same
 * machine.
 *
 * Attribution is exact, not sampled: the simulation is serial within
 * a cell, so the delta of every design counter across a tenant's
 * quantum belongs to that tenant (plus the cold misses its
 * co-runners caused it — which is the interference being measured).
 * Each mix is one cell on the thread pool; a cell's tenant streams
 * are pure functions of (options.seed, mix index, tenant index) via
 * experimentCellSeed, so runs are bit-identical at any MOSAIC_THREADS.
 */

#ifndef MOSAIC_CORE_INTERFERENCE_HH_
#define MOSAIC_CORE_INTERFERENCE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiments.hh"
#include "telemetry/registry.hh"
#include "util/thread_pool.hh"
#include "workloads/factory.hh"

namespace mosaic
{

/** One co-scheduled tenant of a mix. */
struct InterferenceTenant
{
    WorkloadKind kind{};

    /** Per-tenant workload scale, multiplied by the sweep scale. */
    double scale = 1.0;
};

/** A named mix of tenants sharing one machine. */
struct InterferenceMix
{
    std::string name;
    std::vector<InterferenceTenant> tenants;
};

/** The default mixes: GPU + server pairings plus the full stack. */
std::vector<InterferenceMix> defaultInterferenceMixes();

/** Options for the interference sweep. */
struct InterferenceOptions
{
    std::vector<InterferenceMix> mixes = defaultInterferenceMixes();

    /** Global workload scale multiplier (same scale as Figure 6). */
    double scale = 0.25;

    unsigned tlbEntries = 1024;
    unsigned ways = 8;

    /** Mosaic arity of the mosaic-backed designs. */
    unsigned arity = 8;

    /** Accesses per scheduling quantum. */
    std::size_t quantum = 4096;

    /**
     * Shard count of the ride-along multi-tenant VM engine inside the
     * shared-machine run (DESIGN.md §17): 0 (default) = off. Nonzero
     * attaches a ShardedMosaicVm to the shared TranslationSim so each
     * tenant's data stream also exercises demand paging under its own
     * ASID. Solo baselines never attach one — they measure TLB
     * interference, which the VM engine does not perturb.
     */
    std::size_t vmShards = 0;

    std::uint64_t seed = 1;
};

/** Per-design counters a tenant accumulated (shared or solo run). */
struct TenantDesignCounters
{
    std::uint64_t vanillaMisses = 0;
    std::uint64_t vanillaWalkRefs = 0;
    std::uint64_t mosaicMisses = 0;
    std::uint64_t mosaicWalkRefs = 0;
    std::uint64_t pwcMisses = 0;
    std::uint64_t pwcWalkRefs = 0;
};

/** One tenant's results within a mix. */
struct InterferenceTenantResult
{
    WorkloadKind kind{};
    std::uint64_t footprintBytes = 0;
    std::uint64_t accesses = 0;
    std::uint64_t quanta = 0;

    /** Counters attributed to this tenant's quanta in the shared run. */
    TenantDesignCounters shared;

    /** The same counters when the tenant runs alone on the machine. */
    TenantDesignCounters solo;

    /** Sum over this tenant's quantum ends of the mosaic design's
     *  instantaneous reach (pages); mean = sum / quanta. */
    std::uint64_t reachPagesSum = 0;

    /** Mean mosaic-design reach (pages) while this tenant ran. */
    std::uint64_t meanReachPages() const
    {
        return quanta == 0 ? 0 : reachPagesSum / quanta;
    }

    /**
     * Cross-tenant slowdown in permille under the modeled memory
     * cost (accesses + walkRefs of the given design): 1000 = no
     * interference. Integer arithmetic — golden-test stable.
     */
    std::uint64_t vanillaSlowdownPermille() const;
    std::uint64_t mosaicSlowdownPermille() const;
};

/** One mix cell. */
struct InterferenceCell
{
    std::string mixName;
    std::uint64_t accesses = 0;
    std::vector<InterferenceTenantResult> tenants;

    /** Shard count the ride-along VM engine ran with (0 = off). */
    std::size_t vmShards = 0;

    /** Ride-along VM engine figures from the shared run; all zero
     *  when vmShards == 0. */
    std::uint64_t vmMinorFaults = 0;
    std::uint64_t vmSwapOuts = 0;
    std::uint64_t vmConflicts = 0;
    std::uint64_t vmSteals = 0;
    std::uint64_t vmResidentPages = 0;

    /** Wall-clock seconds this cell took (timing only). */
    double seconds = 0.0;
};

/** Run one mix (shared run + per-tenant solo baselines). */
InterferenceCell runInterferenceCell(const InterferenceOptions &options,
                                     std::size_t mix_index);

/** Run every mix on @p pool, cells in mix order. */
std::vector<InterferenceCell>
runInterference(const InterferenceOptions &options, ThreadPool &pool);

/** runInterference on ThreadPool::shared(). */
std::vector<InterferenceCell>
runInterference(const InterferenceOptions &options);

/** Register one cell's metrics as
 *  "interference.<mix>.tenant<i>.<workload>.<metric>". */
void recordInterference(telemetry::Registry &r,
                        const InterferenceCell &cell);

} // namespace mosaic

#endif // MOSAIC_CORE_INTERFERENCE_HH_
