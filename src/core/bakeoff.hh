/**
 * @file
 * The translation-design bake-off (DESIGN.md §14): run every
 * registered design — the four paper variants plus the
 * Virtuoso-patterned stride prefetcher, two-level page-walk cache,
 * and range TLB — head-to-head on the paper's workloads, one cell
 * per (workload × mosaic arity), and report measured reach, miss
 * rate, and modeled walk cost per design.
 *
 * Each cell is one TranslationSim whose designSpecs list covers all
 * seven kinds (the mosaic-backed ones pinned to the cell's arity),
 * so every design sees the identical reference stream. The kernel
 * stream is off: the bake-off compares translation designs on the
 * workload itself, not on the huge-page kernel artifact.
 */

#ifndef MOSAIC_CORE_BAKEOFF_HH_
#define MOSAIC_CORE_BAKEOFF_HH_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiments.hh"
#include "telemetry/registry.hh"
#include "util/thread_pool.hh"
#include "workloads/factory.hh"

namespace mosaic
{

/** Options for the bake-off sweep. */
struct BakeoffOptions
{
    /** Workload size multiplier (same scale as Figure 6). */
    double scale = 0.25;

    /** Base-array geometry every design starts from. */
    unsigned tlbEntries = 1024;
    unsigned ways = 8;

    /** Mosaic arities to pin the mosaic-backed designs to. */
    std::vector<unsigned> arities{4, 16, 64};

    /** Workloads to sweep: the four paper workloads plus the
     *  scenario-diversity engines (DESIGN.md §15). */
    std::vector<WorkloadKind> kinds{
        WorkloadKind::Graph500,   WorkloadKind::BTree,
        WorkloadKind::Gups,       WorkloadKind::XsBench,
        WorkloadKind::WarpGpu,    WorkloadKind::KvServer,
        WorkloadKind::WebSession, WorkloadKind::ScanAnalytics};

    std::uint64_t seed = 1;
};

/** One design's full metric dump in one cell. */
struct BakeoffDesignResult
{
    /** Registry kind ("vanilla" ... "range"); the metric-key segment. */
    std::string kind;

    /** Full design name (registry spec round trip; display only). */
    std::string name;

    /** Every metric forEachDesignMetric exposes, in visit order. */
    std::vector<std::pair<std::string, std::uint64_t>> metrics;

    /** Value of metric @p key, 0 when absent. */
    std::uint64_t metric(std::string_view key) const;

    /** misses / accesses (0 when no accesses). */
    double missRate() const;

    /** walkRefs / accesses — the modeled walk cost per reference. */
    double walkRefsPerAccess() const;
};

/** One (workload × arity) cell: all designs on one reference stream. */
struct BakeoffCell
{
    WorkloadKind kind{};
    unsigned arity = 0;
    std::uint64_t footprintBytes = 0;
    std::uint64_t accesses = 0;
    std::vector<BakeoffDesignResult> designs;

    /** Wall-clock seconds this cell took (timing only). */
    double seconds = 0.0;
};

/** The registry specs one cell drives, in translationDesignKinds()
 *  order: all seven kinds, mosaic-backed ones at @p arity. */
std::vector<std::string> bakeoffSpecs(const BakeoffOptions &options,
                                      unsigned arity);

/** Run one cell (shared reference stream semantics as Figure 6:
 *  the workload is derived from options.seed alone). */
BakeoffCell runBakeoffCell(WorkloadKind kind,
                           const BakeoffOptions &options,
                           std::size_t arity_index);

/** Run the whole grid on @p pool, cells in (kind, arity) order. */
std::vector<BakeoffCell> runBakeoff(const BakeoffOptions &options,
                                    ThreadPool &pool);

/** runBakeoff on ThreadPool::shared(). */
std::vector<BakeoffCell> runBakeoff(const BakeoffOptions &options);

/** Register one cell's metrics as
 *  "bakeoff.<workload>.arity<A>.<kind>.<metric>". */
void recordBakeoff(telemetry::Registry &r, const BakeoffCell &cell);

} // namespace mosaic

#endif // MOSAIC_CORE_BAKEOFF_HH_
