#include "core/experiment_export.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/parse.hh"

namespace mosaic
{

std::string
metricWorkloadKey(WorkloadKind kind)
{
    std::string key = workloadName(kind);
    std::transform(key.begin(), key.end(), key.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return key;
}

void
recordFig6(telemetry::Registry &r, const Fig6Result &result)
{
    const std::string base = "fig6." + metricWorkloadKey(result.kind);
    r.counter(base + ".footprintBytes", result.footprintBytes);
    r.counter(base + ".accesses", result.accesses);
    for (const Fig6Row &row : result.rows) {
        const std::string ways =
            base + ".ways" + std::to_string(row.ways);
        r.counter(ways + ".vanilla.misses", row.vanillaMisses);
        for (std::size_t a = 0; a < result.arities.size(); ++a) {
            r.counter(ways + ".mosaic" +
                          std::to_string(result.arities[a]) + ".misses",
                      row.mosaicMisses.at(a));
        }
    }
}

void
recordTable3(telemetry::Registry &r, const Table3Row &row)
{
    // Several rows share a workload (one per footprint), so the
    // footprint is part of the name to keep names unique.
    const std::string base = "table3." + metricWorkloadKey(row.kind) +
                             ".footprint" +
                             std::to_string(row.footprintBytes);
    r.counter(base + ".footprintBytes", row.footprintBytes);
    r.stat(base + ".firstConflictPct", row.firstConflictPct);
    r.stat(base + ".steadyPct", row.steadyPct);
}

void
recordTable4(telemetry::Registry &r, const Table4Row &row)
{
    const std::string base = "table4." + metricWorkloadKey(row.kind) +
                             ".footprint" +
                             std::to_string(row.footprintBytes);
    r.counter(base + ".footprintBytes", row.footprintBytes);
    r.stat(base + ".linuxSwapIo", row.linuxSwapIo);
    r.stat(base + ".mosaicSwapIo", row.mosaicSwapIo);
    r.gauge(base + ".differencePct", row.differencePct());
}

namespace
{

/** Bit-exact double -> text (see RunningStat::encode). */
std::string
hexDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%la", v);
    return buf;
}

/** Parse a hexfloat token; false when the token isn't one number. */
bool
parseDouble(const std::string &token, double *out)
{
    const char *begin = token.c_str();
    char *end = nullptr;
    *out = std::strtod(begin, &end);
    return end != begin && *end == '\0';
}

/** Read one "key rest-of-line" line; DataLoss on EOF or mismatch. */
Status
keyedLine(std::istream &in, const char *key, std::string *rest)
{
    std::string line;
    if (!std::getline(in, line))
        return Status::dataLoss(std::string("checkpoint truncated "
                                            "before '") +
                                key + "' line");
    const std::string prefix = std::string(key) + " ";
    if (line.rfind(prefix, 0) != 0)
        return Status::dataLoss(std::string("checkpoint line is not '") +
                                key + " ...': '" + line + "'");
    *rest = line.substr(prefix.size());
    return Status();
}

/** keyedLine + strict decimal parse of the whole payload. */
Status
keyedU64(std::istream &in, const char *key, std::uint64_t *out)
{
    std::string rest;
    if (Status s = keyedLine(in, key, &rest); !s.ok())
        return s;
    if (!parseU64(rest, out))
        return Status::dataLoss(std::string("checkpoint field '") + key +
                                "' is not an unsigned integer: '" +
                                rest + "'");
    return Status();
}

/** keyedLine + strict hexfloat parse of the whole payload. */
Status
keyedDouble(std::istream &in, const char *key, double *out)
{
    std::string rest;
    if (Status s = keyedLine(in, key, &rest); !s.ok())
        return s;
    if (!parseDouble(rest, out))
        return Status::dataLoss(std::string("checkpoint field '") + key +
                                "' is not a hexfloat: '" + rest + "'");
    return Status();
}

/** keyedLine + RunningStat::decode with a field-naming error. */
Status
keyedStat(std::istream &in, const char *key, RunningStat *out)
{
    std::string rest;
    if (Status s = keyedLine(in, key, &rest); !s.ok())
        return s;
    if (!out->decode(rest))
        return Status::dataLoss(std::string("checkpoint field '") + key +
                                "' is not a RunningStat encoding: '" +
                                rest + "'");
    return Status();
}

/** Decode an encoded WorkloadKind, rejecting out-of-range values. */
Status
keyedKind(std::istream &in, WorkloadKind *out)
{
    std::uint64_t raw = 0;
    if (Status s = keyedU64(in, "kind", &raw); !s.ok())
        return s;
    if (raw > static_cast<std::uint64_t>(WorkloadKind::KvStore))
        return Status::dataLoss("checkpoint field 'kind' is not a "
                                "workload kind: " +
                                std::to_string(raw));
    *out = static_cast<WorkloadKind>(raw);
    return Status();
}

} // namespace

std::string
encodeFig6Cell(const Fig6Cell &cell)
{
    std::ostringstream out;
    out << "ways " << cell.row.ways << '\n';
    out << "vanilla " << cell.row.vanillaMisses << '\n';
    out << "mosaic";
    for (const std::uint64_t m : cell.row.mosaicMisses)
        out << ' ' << m;
    out << '\n';
    out << "footprint " << cell.footprintBytes << '\n';
    out << "accesses " << cell.accesses << '\n';
    out << "seconds " << hexDouble(cell.seconds) << '\n';
    return out.str();
}

Status
decodeFig6Cell(const std::string &text, Fig6Cell *out)
{
    std::istringstream in(text);
    std::string rest;
    Fig6Cell cell;
    std::uint64_t ways = 0;
    if (Status s = keyedU64(in, "ways", &ways); !s.ok())
        return s;
    if (ways == 0 || ways > 0xFFFFFFFFull)
        return Status::dataLoss("checkpoint field 'ways' is out of "
                                "range: " +
                                std::to_string(ways));
    cell.row.ways = static_cast<unsigned>(ways);
    if (Status s = keyedU64(in, "vanilla", &cell.row.vanillaMisses);
            !s.ok())
        return s;
    if (Status s = keyedLine(in, "mosaic", &rest); !s.ok())
        return s;
    std::istringstream misses(rest);
    std::string token;
    while (misses >> token) {
        std::uint64_t m = 0;
        if (!parseU64(token, &m))
            return Status::dataLoss("checkpoint field 'mosaic' has a "
                                    "non-integer miss count: '" +
                                    token + "'");
        cell.row.mosaicMisses.push_back(m);
    }
    if (cell.row.mosaicMisses.empty())
        return Status::dataLoss("checkpoint field 'mosaic' lists no "
                                "miss counts");
    if (Status s = keyedU64(in, "footprint", &cell.footprintBytes);
            !s.ok())
        return s;
    if (Status s = keyedU64(in, "accesses", &cell.accesses); !s.ok())
        return s;
    if (Status s = keyedDouble(in, "seconds", &cell.seconds); !s.ok())
        return s;
    *out = std::move(cell);
    return Status();
}

std::string
encodeTable3Row(const Table3Row &row)
{
    std::ostringstream out;
    out << "kind " << static_cast<int>(row.kind) << '\n';
    out << "footprint " << row.footprintBytes << '\n';
    out << "firstConflictPct " << row.firstConflictPct.encode() << '\n';
    out << "steadyPct " << row.steadyPct.encode() << '\n';
    out << "seconds " << hexDouble(row.cellSeconds) << '\n';
    return out.str();
}

Status
decodeTable3Row(const std::string &text, Table3Row *out)
{
    std::istringstream in(text);
    Table3Row row;
    if (Status s = keyedKind(in, &row.kind); !s.ok())
        return s;
    if (Status s = keyedU64(in, "footprint", &row.footprintBytes);
            !s.ok())
        return s;
    if (Status s = keyedStat(in, "firstConflictPct",
                             &row.firstConflictPct);
            !s.ok())
        return s;
    if (Status s = keyedStat(in, "steadyPct", &row.steadyPct); !s.ok())
        return s;
    if (Status s = keyedDouble(in, "seconds", &row.cellSeconds);
            !s.ok())
        return s;
    *out = std::move(row);
    return Status();
}

std::string
encodeTable4Row(const Table4Row &row)
{
    std::ostringstream out;
    out << "kind " << static_cast<int>(row.kind) << '\n';
    out << "footprint " << row.footprintBytes << '\n';
    out << "linuxSwapIo " << row.linuxSwapIo.encode() << '\n';
    out << "mosaicSwapIo " << row.mosaicSwapIo.encode() << '\n';
    out << "seconds " << hexDouble(row.cellSeconds) << '\n';
    return out.str();
}

Status
decodeTable4Row(const std::string &text, Table4Row *out)
{
    std::istringstream in(text);
    Table4Row row;
    if (Status s = keyedKind(in, &row.kind); !s.ok())
        return s;
    if (Status s = keyedU64(in, "footprint", &row.footprintBytes);
            !s.ok())
        return s;
    if (Status s = keyedStat(in, "linuxSwapIo", &row.linuxSwapIo);
            !s.ok())
        return s;
    if (Status s = keyedStat(in, "mosaicSwapIo", &row.mosaicSwapIo);
            !s.ok())
        return s;
    if (Status s = keyedDouble(in, "seconds", &row.cellSeconds);
            !s.ok())
        return s;
    *out = std::move(row);
    return Status();
}

} // namespace mosaic
