#include "core/experiment_export.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace mosaic
{

std::string
metricWorkloadKey(WorkloadKind kind)
{
    std::string key = workloadName(kind);
    std::transform(key.begin(), key.end(), key.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return key;
}

void
recordFig6(telemetry::Registry &r, const Fig6Result &result)
{
    const std::string base = "fig6." + metricWorkloadKey(result.kind);
    r.counter(base + ".footprintBytes", result.footprintBytes);
    r.counter(base + ".accesses", result.accesses);
    for (const Fig6Row &row : result.rows) {
        const std::string ways =
            base + ".ways" + std::to_string(row.ways);
        r.counter(ways + ".vanilla.misses", row.vanillaMisses);
        for (std::size_t a = 0; a < result.arities.size(); ++a) {
            r.counter(ways + ".mosaic" +
                          std::to_string(result.arities[a]) + ".misses",
                      row.mosaicMisses.at(a));
        }
    }
}

void
recordTable3(telemetry::Registry &r, const Table3Row &row)
{
    // Several rows share a workload (one per footprint), so the
    // footprint is part of the name to keep names unique.
    const std::string base = "table3." + metricWorkloadKey(row.kind) +
                             ".footprint" +
                             std::to_string(row.footprintBytes);
    r.counter(base + ".footprintBytes", row.footprintBytes);
    r.stat(base + ".firstConflictPct", row.firstConflictPct);
    r.stat(base + ".steadyPct", row.steadyPct);
}

void
recordTable4(telemetry::Registry &r, const Table4Row &row)
{
    const std::string base = "table4." + metricWorkloadKey(row.kind) +
                             ".footprint" +
                             std::to_string(row.footprintBytes);
    r.counter(base + ".footprintBytes", row.footprintBytes);
    r.stat(base + ".linuxSwapIo", row.linuxSwapIo);
    r.stat(base + ".mosaicSwapIo", row.mosaicSwapIo);
    r.gauge(base + ".differencePct", row.differencePct());
}

namespace
{

/** Bit-exact double -> text (see RunningStat::encode). */
std::string
hexDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%la", v);
    return buf;
}

/** Parse a hexfloat token; false when the token isn't one number. */
bool
parseDouble(const std::string &token, double *out)
{
    const char *begin = token.c_str();
    char *end = nullptr;
    *out = std::strtod(begin, &end);
    return end != begin && *end == '\0';
}

/** Read one "key rest-of-line" line; false on EOF or key mismatch. */
bool
keyedLine(std::istream &in, const char *key, std::string *rest)
{
    std::string line;
    if (!std::getline(in, line))
        return false;
    const std::string prefix = std::string(key) + " ";
    if (line.rfind(prefix, 0) != 0)
        return false;
    *rest = line.substr(prefix.size());
    return true;
}

} // namespace

std::string
encodeFig6Cell(const Fig6Cell &cell)
{
    std::ostringstream out;
    out << "ways " << cell.row.ways << '\n';
    out << "vanilla " << cell.row.vanillaMisses << '\n';
    out << "mosaic";
    for (const std::uint64_t m : cell.row.mosaicMisses)
        out << ' ' << m;
    out << '\n';
    out << "footprint " << cell.footprintBytes << '\n';
    out << "accesses " << cell.accesses << '\n';
    out << "seconds " << hexDouble(cell.seconds) << '\n';
    return out.str();
}

bool
decodeFig6Cell(const std::string &text, Fig6Cell *out)
{
    std::istringstream in(text);
    std::string rest;
    Fig6Cell cell;
    if (!keyedLine(in, "ways", &rest))
        return false;
    cell.row.ways = static_cast<unsigned>(std::strtoul(
        rest.c_str(), nullptr, 10));
    if (!keyedLine(in, "vanilla", &rest))
        return false;
    cell.row.vanillaMisses = std::strtoull(rest.c_str(), nullptr, 10);
    if (!keyedLine(in, "mosaic", &rest))
        return false;
    std::istringstream misses(rest);
    std::uint64_t m = 0;
    while (misses >> m)
        cell.row.mosaicMisses.push_back(m);
    if (!keyedLine(in, "footprint", &rest))
        return false;
    cell.footprintBytes = std::strtoull(rest.c_str(), nullptr, 10);
    if (!keyedLine(in, "accesses", &rest))
        return false;
    cell.accesses = std::strtoull(rest.c_str(), nullptr, 10);
    if (!keyedLine(in, "seconds", &rest) ||
            !parseDouble(rest, &cell.seconds))
        return false;
    *out = std::move(cell);
    return true;
}

std::string
encodeTable3Row(const Table3Row &row)
{
    std::ostringstream out;
    out << "kind " << static_cast<int>(row.kind) << '\n';
    out << "footprint " << row.footprintBytes << '\n';
    out << "firstConflictPct " << row.firstConflictPct.encode() << '\n';
    out << "steadyPct " << row.steadyPct.encode() << '\n';
    out << "seconds " << hexDouble(row.cellSeconds) << '\n';
    return out.str();
}

bool
decodeTable3Row(const std::string &text, Table3Row *out)
{
    std::istringstream in(text);
    std::string rest;
    Table3Row row;
    if (!keyedLine(in, "kind", &rest))
        return false;
    row.kind = static_cast<WorkloadKind>(
        std::strtol(rest.c_str(), nullptr, 10));
    if (!keyedLine(in, "footprint", &rest))
        return false;
    row.footprintBytes = std::strtoull(rest.c_str(), nullptr, 10);
    if (!keyedLine(in, "firstConflictPct", &rest) ||
            !row.firstConflictPct.decode(rest))
        return false;
    if (!keyedLine(in, "steadyPct", &rest) ||
            !row.steadyPct.decode(rest))
        return false;
    if (!keyedLine(in, "seconds", &rest) ||
            !parseDouble(rest, &row.cellSeconds))
        return false;
    *out = std::move(row);
    return true;
}

std::string
encodeTable4Row(const Table4Row &row)
{
    std::ostringstream out;
    out << "kind " << static_cast<int>(row.kind) << '\n';
    out << "footprint " << row.footprintBytes << '\n';
    out << "linuxSwapIo " << row.linuxSwapIo.encode() << '\n';
    out << "mosaicSwapIo " << row.mosaicSwapIo.encode() << '\n';
    out << "seconds " << hexDouble(row.cellSeconds) << '\n';
    return out.str();
}

bool
decodeTable4Row(const std::string &text, Table4Row *out)
{
    std::istringstream in(text);
    std::string rest;
    Table4Row row;
    if (!keyedLine(in, "kind", &rest))
        return false;
    row.kind = static_cast<WorkloadKind>(
        std::strtol(rest.c_str(), nullptr, 10));
    if (!keyedLine(in, "footprint", &rest))
        return false;
    row.footprintBytes = std::strtoull(rest.c_str(), nullptr, 10);
    if (!keyedLine(in, "linuxSwapIo", &rest) ||
            !row.linuxSwapIo.decode(rest))
        return false;
    if (!keyedLine(in, "mosaicSwapIo", &rest) ||
            !row.mosaicSwapIo.decode(rest))
        return false;
    if (!keyedLine(in, "seconds", &rest) ||
            !parseDouble(rest, &row.cellSeconds))
        return false;
    *out = std::move(row);
    return true;
}

} // namespace mosaic
