#include "core/experiment_export.hh"

#include <algorithm>
#include <cctype>

namespace mosaic
{

std::string
metricWorkloadKey(WorkloadKind kind)
{
    std::string key = workloadName(kind);
    std::transform(key.begin(), key.end(), key.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return key;
}

void
recordFig6(telemetry::Registry &r, const Fig6Result &result)
{
    const std::string base = "fig6." + metricWorkloadKey(result.kind);
    r.counter(base + ".footprintBytes", result.footprintBytes);
    r.counter(base + ".accesses", result.accesses);
    for (const Fig6Row &row : result.rows) {
        const std::string ways =
            base + ".ways" + std::to_string(row.ways);
        r.counter(ways + ".vanilla.misses", row.vanillaMisses);
        for (std::size_t a = 0; a < result.arities.size(); ++a) {
            r.counter(ways + ".mosaic" +
                          std::to_string(result.arities[a]) + ".misses",
                      row.mosaicMisses.at(a));
        }
    }
}

void
recordTable3(telemetry::Registry &r, const Table3Row &row)
{
    // Several rows share a workload (one per footprint), so the
    // footprint is part of the name to keep names unique.
    const std::string base = "table3." + metricWorkloadKey(row.kind) +
                             ".footprint" +
                             std::to_string(row.footprintBytes);
    r.counter(base + ".footprintBytes", row.footprintBytes);
    r.stat(base + ".firstConflictPct", row.firstConflictPct);
    r.stat(base + ".steadyPct", row.steadyPct);
}

void
recordTable4(telemetry::Registry &r, const Table4Row &row)
{
    const std::string base = "table4." + metricWorkloadKey(row.kind) +
                             ".footprint" +
                             std::to_string(row.footprintBytes);
    r.counter(base + ".footprintBytes", row.footprintBytes);
    r.stat(base + ".linuxSwapIo", row.linuxSwapIo);
    r.stat(base + ".mosaicSwapIo", row.mosaicSwapIo);
    r.gauge(base + ".differencePct", row.differencePct());
}

} // namespace mosaic
