#include "core/request_log.hh"

#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace mosaic
{

namespace
{

constexpr const char *logMagic = "mosaic-request-log v1";

constexpr std::size_t payloadBytes = 20;

std::uint32_t
fnv1a32(const unsigned char *data, std::size_t n)
{
    std::uint32_t h = 2166136261u;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 16777619u;
    }
    return h;
}

void
putU16(unsigned char *out, std::uint16_t v)
{
    out[0] = static_cast<unsigned char>(v);
    out[1] = static_cast<unsigned char>(v >> 8);
}

void
putU32(unsigned char *out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out[i] = static_cast<unsigned char>(v >> (8 * i));
}

void
putU64(unsigned char *out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
getU32(const unsigned char *in)
{
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v |= std::uint32_t{in[i]} << (8 * i);
    return v;
}

std::uint64_t
getU64(const unsigned char *in)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v |= std::uint64_t{in[i]} << (8 * i);
    return v;
}

std::array<unsigned char, logRecordBytes>
encodeRecord(const LogRecord &record)
{
    std::array<unsigned char, logRecordBytes> buf{};
    buf[0] = static_cast<unsigned char>(record.kind);
    buf[1] = record.write ? 1 : 0;
    putU16(&buf[2], 0);
    putU64(&buf[4], record.seq);
    putU64(&buf[12], record.vaddr);
    putU32(&buf[payloadBytes], fnv1a32(buf.data(), payloadBytes));
    return buf;
}

/** False when the checksum fails or the kind byte is unknown. */
bool
decodeRecord(const unsigned char *buf, LogRecord *out)
{
    if (getU32(buf + payloadBytes) != fnv1a32(buf, payloadBytes))
        return false;
    if (buf[0] != static_cast<unsigned char>(LogRecordKind::Translate))
        return false;
    out->kind = static_cast<LogRecordKind>(buf[0]);
    out->write = buf[1] != 0;
    out->seq = getU64(buf + 4);
    out->vaddr = getU64(buf + 12);
    return true;
}

} // namespace

RequestLogWriter::~RequestLogWriter()
{
    close();
}

Status
RequestLogWriter::open(const std::string &path,
                       const std::string &fingerprint)
{
    close();
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        return Status::ioError("cannot open request log '" + path +
                               "' for writing");
    path_ = path;
    const std::string header = std::string(logMagic) +
                               "\nfingerprint " + fingerprint + "\n";
    if (std::fwrite(header.data(), 1, header.size(), file_) !=
            header.size()) {
        close();
        return Status::ioError("cannot write request-log header to '" +
                               path + "'");
    }
    writtenBytes_ = header.size();
    flushedBytes_ = 0;
    return flush();
}

Status
RequestLogWriter::openForAppend(const std::string &path,
                                std::uint64_t durable_bytes)
{
    close();
    // Drop any torn tail first so appends extend the durable prefix.
    std::error_code ec;
    std::filesystem::resize_file(path, durable_bytes, ec);
    if (ec) {
        return Status::ioError("cannot truncate request log '" + path +
                               "' to its durable prefix (" +
                               ec.message() + ")");
    }
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr)
        return Status::ioError("cannot open request log '" + path +
                               "' for append");
    path_ = path;
    writtenBytes_ = durable_bytes;
    flushedBytes_ = durable_bytes;
    return {};
}

Status
RequestLogWriter::append(const LogRecord &record)
{
    if (file_ == nullptr)
        return Status::internal("request log is not open");
    const auto buf = encodeRecord(record);
    if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size())
        return Status::ioError("short write to request log '" + path_ +
                               "'");
    writtenBytes_ += buf.size();
    return {};
}

Status
RequestLogWriter::flush()
{
    if (file_ == nullptr)
        return Status::internal("request log is not open");
    if (std::fflush(file_) != 0)
        return Status::ioError("cannot flush request log '" + path_ +
                               "'");
    flushedBytes_ = writtenBytes_;
    return {};
}

void
RequestLogWriter::crash()
{
    if (file_ == nullptr)
        return;
    // Abandon the buffered suffix, then cut the file back to the
    // watermark: exactly what the kernel would keep had the process
    // died after the last successful flush().
    std::fclose(file_);
    file_ = nullptr;
    std::error_code ec;
    std::filesystem::resize_file(path_, flushedBytes_, ec);
    if (ec) {
        warn("request log '" + path_ +
             "': simulated crash could not truncate to the flushed "
             "offset (" + ec.message() + ")");
    }
}

void
RequestLogWriter::close()
{
    if (file_ == nullptr)
        return;
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
    flushedBytes_ = writtenBytes_;
}

Result<RequestLogContents>
readRequestLog(const std::string &path, const std::string &fingerprint)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return Status::notFound("no request log at '" + path + "'");
    std::string line;
    if (!std::getline(in, line) || line != logMagic) {
        return Status::dataLoss("request log '" + path +
                                "' has a foreign or corrupt header");
    }
    if (!std::getline(in, line) ||
            line != "fingerprint " + fingerprint) {
        return Status::dataLoss(
            "request log '" + path +
            "' was written under a different configuration");
    }
    RequestLogContents contents;
    contents.durableBytes = static_cast<std::uint64_t>(in.tellg());
    unsigned char buf[logRecordBytes];
    for (;;) {
        in.read(reinterpret_cast<char *>(buf), logRecordBytes);
        if (in.gcount() != static_cast<std::streamsize>(logRecordBytes)) {
            contents.tornTail = in.gcount() != 0;
            break;
        }
        LogRecord record;
        if (!decodeRecord(buf, &record)) {
            contents.tornTail = true;
            break;
        }
        contents.records.push_back(record);
        contents.durableBytes += logRecordBytes;
    }
    return contents;
}

} // namespace mosaic
