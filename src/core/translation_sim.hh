/**
 * @file
 * The translation simulator behind Figure 6: every data reference of
 * a workload is fed simultaneously to a conventional TLB and to
 * mosaic TLBs of several arities — and, across the other sweep axis,
 * to instances of every associativity — mirroring the paper's gem5
 * model, which runs a vanilla and a mosaic TLB side by side on one
 * execution (§3.1).
 *
 * Memory is ample in this experiment (no swapping); the simulator
 * performs demand mapping: the first touch of a page allocates a
 * frame on the vanilla side (bump allocation) and a mosaic placement
 * via the iceberg allocator, then installs page-table entries in
 * every page table.
 *
 * A configurable background "kernel" access stream models the
 * artifact the paper documents: the vanilla kernel is mapped with
 * 2 MiB huge pages, giving vanilla a small advantage, while in mosaic
 * mode each kernel page consumes a whole conventional TLB entry.
 */

#ifndef MOSAIC_CORE_TRANSLATION_SIM_HH_
#define MOSAIC_CORE_TRANSLATION_SIM_HH_

#include <memory>
#include <span>
#include <vector>

#include <string>

#include "mem/frame_table.hh"
#include "mem/mosaic_allocator.hh"
#include "os/sharded_vm.hh"
#include "pt/mosaic_page_table.hh"
#include "pt/vanilla_page_table.hh"
#include "tlb/mosaic_tlb.hh"
#include "tlb/translation_design.hh"
#include "tlb/vanilla_tlb.hh"
#include "util/flat_map.hh"
#include "util/random.hh"
#include "workloads/access_sink.hh"

namespace mosaic
{

/** Background kernel accesses (huge-mapped on the vanilla side). */
struct KernelConfig
{
    /** Zero disables the kernel stream. */
    unsigned accessEvery = 64;

    /** Size of the modeled kernel working region. */
    std::uint64_t regionBytes = std::uint64_t{64} << 20;

    /** Fraction of kernel accesses hitting the hot subset. */
    double hotFraction = 0.9;

    /** Size of the hot subset. */
    std::uint64_t hotBytes = std::uint64_t{1} << 20;
};

/**
 * Synthetic instruction-fetch stream for the ITLB (Table 1a models
 * a unified 1024-entry L1 ITLB). Fetches loop over a hot code
 * region with occasional excursions into cold library text; with
 * realistic code sizes the ITLB contribution is tiny, which is why
 * it is off by default and Figure 6 reports the data side.
 */
struct InstrConfig
{
    /** Emit one fetch translation per data access when true. */
    bool enabled = false;

    /** Total text segment modeled. */
    std::uint64_t codeBytes = std::uint64_t{2} << 20;

    /** Fraction of fetches staying in the hot loop region. */
    double hotFraction = 0.95;

    /** Size of the hot region. */
    std::uint64_t hotBytes = std::uint64_t{64} << 10;
};

/** Configuration of the dual-TLB sweep simulator. */
struct TranslationSimConfig
{
    /** Mosaic physical memory; must comfortably exceed the workload
     *  footprint (no swapping in this experiment). */
    MemoryGeometry memory{};

    /** Total TLB entries (Table 1a: 1024). */
    unsigned tlbEntries = 1024;

    /** TLB associativities to instantiate; tlbEntries = fully
     *  associative (paper: direct, 2, 4, 8, full). */
    std::vector<unsigned> waysList{1, 2, 4, 8, 1024};

    /** Mosaic arities to instantiate (paper: 4..64). */
    std::vector<unsigned> arities{4, 8, 16, 32, 64};

    KernelConfig kernel{};
    InstrConfig instr{};

    /**
     * Registry specs (DESIGN.md §14) of pluggable translation designs
     * driven alongside the builtin grid: every *data* reference is fed
     * to each design after the grid TLBs (the kernel and instruction
     * streams stay grid-only, so design stats compare workloads, not
     * the huge-page artifact). A bad spec is a configuration error
     * (fatal). Empty = no designs, zero overhead.
     */
    std::vector<std::string> designSpecs;

    /** Default associativity for designSpecs entries that do not set
     *  'ways' explicitly (their entry count defaults to tlbEntries). */
    unsigned designWays = 8;

    /**
     * Shard count of the optional multi-tenant VM engine
     * (DESIGN.md §17) riding the data stream: 0 (default) = none,
     * k >= 1 = attach a ShardedMosaicVm with k shards whose pool is
     * `memory` rounded up to a splittable size, and touch it once
     * per data reference in the active ASID. Ride-along demand
     * paging only — the TLB grid and design results are unaffected,
     * so existing goldens hold at the default.
     */
    std::size_t vmShards = 0;

    Asid asid = 1;
    std::uint64_t seed = 7;
};

/** Feeds one reference stream to the whole TLB configuration grid. */
class TranslationSim : public AccessSink
{
  public:
    explicit TranslationSim(const TranslationSimConfig &config);

    /** One workload data reference (AccessSink). */
    void access(Addr vaddr, bool write) override;

    /**
     * Process a block of data references. Exactly equivalent to
     * calling access() per reference in order — the batch only adds
     * a prefetch stage that warms each reference's TLB set lines a
     * fixed lookahead ahead of the translate that consumes them.
     */
    void accessBatch(std::span<const MemRef> block);

    /**
     * Switch the address space subsequent accesses run in — a
     * context switch. TLB entries are ASID-tagged, so nothing is
     * flushed; translations of other processes simply stop hitting.
     */
    void setActiveAsid(Asid asid) { activeAsid_ = asid; }

    Asid activeAsid() const { return activeAsid_; }

    std::size_t numWays() const { return config_.waysList.size(); }
    std::size_t numArities() const { return config_.arities.size(); }

    /** Pluggable designs built from config.designSpecs, in order. */
    std::size_t numDesigns() const { return designs_.size(); }
    const TranslationDesign &
    design(std::size_t i) const
    {
        return *designs_.at(i);
    }

    const TlbStats &vanillaStats(std::size_t ways_idx) const;
    const TlbStats &mosaicStats(std::size_t ways_idx,
                                std::size_t arity_idx) const;

    /** ITLB counters (meaningful only with instr.enabled). */
    const TlbStats &itlbVanillaStats(std::size_t ways_idx) const;
    const TlbStats &itlbMosaicStats(std::size_t ways_idx,
                                    std::size_t arity_idx) const;

    /** Total references processed (workload + kernel). */
    std::uint64_t totalAccesses() const { return accesses_; }

    /** Workload pages demand-mapped so far. */
    std::uint64_t mappedPages() const { return mappedPages_; }

    /** PFN backing a page on the vanilla side; invalidPfn if the
     *  page was never touched. */
    Pfn vanillaPfnOf(Vpn vpn) const;

    /** PFN backing a page on the mosaic side; invalidPfn if the
     *  page was never touched. */
    Pfn mosaicPfnOf(Vpn vpn) const;

    /** Mosaic frame metadata, for consistency checks in tests. */
    const FrameTable &mosaicFrames() const { return frames_; }

    /** The sharded VM engine; nullptr unless config.vmShards > 0. */
    ShardedMosaicVm *shardedVm() { return shardedVm_.get(); }
    const ShardedMosaicVm *shardedVm() const { return shardedVm_.get(); }

  private:
    void ensureMapped(Vpn vpn);
    void kernelAccess();
    void instructionFetch();
    void translate(Vpn vpn, bool kernel);

    /**
     * The designs' window onto this simulator's page tables
     * (DESIGN.md §14): full PFNs come from the vanilla page table
     * (whose bump allocation is the contiguity designs' best case),
     * mosaic ToCs from the per-page CPFN record ensureMapped keeps —
     * one CPFN per page, valid for every arity, so designs may use
     * arities the mosaic grid does not instantiate.
     */
    class DesignWalker final : public TranslationWalker
    {
      public:
        explicit DesignWalker(TranslationSim &sim) : sim_(sim) {}

        std::optional<Pfn> pfnOf(Asid asid, Vpn vpn) override;
        void tocOf(Asid asid, Vpn vpn, unsigned arity,
                   std::span<Cpfn> out) override;
        Cpfn unmappedCode() const override;

      private:
        TranslationSim &sim_;
    };

    TranslationSimConfig config_;

    // Vanilla side (one page table per address space).
    std::vector<std::unique_ptr<VanillaTlb>> vanillaTlbs_;
    FlatMap<Asid, std::unique_ptr<VanillaPageTable>> vanillaPts_;
    Pfn vanillaNextPfn_ = 0;

    /** Mosaic page tables of one address space, one per arity. */
    using MosaicPtSet = std::vector<std::unique_ptr<MosaicPageTable>>;

    MosaicPtSet &mosaicPtsFor(Asid asid);
    VanillaPageTable &vanillaPtFor(Asid asid);

    // Mosaic side: per-ASID page tables, TLB grid [ways][arity].
    MosaicAllocator allocator_;
    FrameTable frames_;
    FlatMap<Asid, MosaicPtSet> mosaicPts_;
    std::vector<std::vector<std::unique_ptr<MosaicTlb>>> mosaicTlbs_;

    // Instruction TLBs (same grid shape, fed by synthetic fetches).
    std::vector<std::unique_ptr<VanillaTlb>> itlbVanilla_;
    std::vector<std::vector<std::unique_ptr<MosaicTlb>>> itlbMosaic_;

    /** Optional sharded multi-tenant VM engine fed the data stream. */
    std::unique_ptr<ShardedMosaicVm> shardedVm_;

    // Pluggable designs (data stream only) and their walker state:
    // CPFN by packPageId(asid, vpn), recorded only when designs exist.
    std::vector<std::unique_ptr<TranslationDesign>> designs_;
    FlatMap<std::uint64_t, Cpfn> designCpfns_;
    DesignWalker designWalker_{*this};

    // Kernel stream state.
    Addr kernelBase_;
    Rng kernelRng_;
    unsigned sinceKernel_ = 0;

    // Instruction stream state.
    Addr codeBase_ = Addr{0x400000};
    Rng instrRng_{0xF37C4};

    Asid activeAsid_;
    std::uint64_t accesses_ = 0;
    std::uint64_t mappedPages_ = 0;
    Tick clock_ = 0;
};

} // namespace mosaic

#endif // MOSAIC_CORE_TRANSLATION_SIM_HH_
