#include "core/bakeoff.hh"

#include <chrono>

#include "core/batch_pipeline.hh"
#include "core/experiment_export.hh"
#include "core/translation_sim.hh"
#include "tlb/design_registry.hh"

namespace mosaic
{

namespace
{

using Clock = std::chrono::steady_clock;

} // namespace

std::uint64_t
BakeoffDesignResult::metric(std::string_view key) const
{
    for (const auto &[name, value] : metrics) {
        if (name == key)
            return value;
    }
    return 0;
}

double
BakeoffDesignResult::missRate() const
{
    const std::uint64_t accesses = metric("accesses");
    if (accesses == 0)
        return 0.0;
    return static_cast<double>(metric("misses")) /
           static_cast<double>(accesses);
}

double
BakeoffDesignResult::walkRefsPerAccess() const
{
    const std::uint64_t accesses = metric("accesses");
    if (accesses == 0)
        return 0.0;
    return static_cast<double>(metric("walkRefs")) /
           static_cast<double>(accesses);
}

std::vector<std::string>
bakeoffSpecs(const BakeoffOptions &options, unsigned arity)
{
    const std::string a = std::to_string(arity);
    (void)options;
    return {
        "vanilla",
        "mosaic:arity=" + a,
        "coalesced",
        "perforated",
        "stride:base=mosaic,arity=" + a + ",mode=arbitrary",
        "pwc:base=mosaic,arity=" + a,
        "range",
    };
}

BakeoffCell
runBakeoffCell(WorkloadKind kind, const BakeoffOptions &options,
               std::size_t arity_index)
{
    const auto start = Clock::now();
    const unsigned arity = options.arities.at(arity_index);

    // One shared reference stream per workload (the bake-off compares
    // designs on the same trace), so the workload seed ignores the
    // cell index, exactly like Figure 6.
    const std::unique_ptr<Workload> workload =
        makeFig6Workload(kind, options.scale, options.seed);

    TranslationSimConfig config;
    config.memory = ampleGeometry(workload->info().footprintBytes);
    config.tlbEntries = options.tlbEntries;
    config.waysList = {options.ways};
    config.arities = {arity};
    config.kernel.accessEvery = 0;
    config.designWays = options.ways;
    config.designSpecs = bakeoffSpecs(options, arity);
    config.seed = options.seed;

    TranslationSim sim(config);
    if (const unsigned block = batchBlockFromEnv(); block > 1) {
        BatchTranslationSink sink(sim, block);
        workload->run(sink);
        sink.flush();
    } else {
        workload->run(sim);
    }

    BakeoffCell cell;
    cell.kind = kind;
    cell.arity = arity;
    cell.footprintBytes = workload->info().footprintBytes;
    cell.accesses = sim.totalAccesses();
    for (std::size_t i = 0; i < sim.numDesigns(); ++i) {
        const TranslationDesign &design = sim.design(i);
        BakeoffDesignResult result;
        result.name = design.name();
        result.kind =
            config.designSpecs[i].substr(0, config.designSpecs[i].find(':'));
        forEachDesignMetric(design,
                            [&](const char *name, std::uint64_t value) {
                                result.metrics.emplace_back(name, value);
                            });
        cell.designs.push_back(std::move(result));
    }
    cell.seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    return cell;
}

std::vector<BakeoffCell>
runBakeoff(const BakeoffOptions &options, ThreadPool &pool)
{
    const std::size_t arities = options.arities.size();
    std::vector<BakeoffCell> cells(options.kinds.size() * arities);
    parallelFor(pool, cells.size(), [&](std::size_t i) {
        cells[i] = runBakeoffCell(options.kinds[i / arities], options,
                                  i % arities);
    });
    return cells;
}

std::vector<BakeoffCell>
runBakeoff(const BakeoffOptions &options)
{
    return runBakeoff(options, ThreadPool::shared());
}

void
recordBakeoff(telemetry::Registry &r, const BakeoffCell &cell)
{
    const std::string base = "bakeoff." + metricWorkloadKey(cell.kind) +
                             ".arity" + std::to_string(cell.arity);
    r.counter(base + ".footprintBytes", cell.footprintBytes);
    r.counter(base + ".accesses", cell.accesses);
    for (const BakeoffDesignResult &design : cell.designs) {
        const std::string prefix = base + "." + design.kind + ".";
        for (const auto &[name, value] : design.metrics)
            r.counter(prefix + name, value);
    }
}

} // namespace mosaic
