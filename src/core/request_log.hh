/**
 * @file
 * The per-session request log (write-ahead log) behind mosaicd's
 * crash recovery, plus the RequestLog seam on the touch-sink path
 * (DESIGN.md §16).
 *
 * Format: a two-line text header (magic + fingerprint, the shared
 * checkpoint convention of fault/checkpoint.hh) followed by fixed-
 * size binary records:
 *
 *     u8  kind    u8 write    u16 reserved (0)
 *     u64 seq     u64 vaddr
 *     u32 fnv1a-32 over the 20 payload bytes
 *
 * Every record is checksummed individually so a reader can tell a
 * cleanly-ended log from one torn mid-record by a crash: reading
 * stops at the first short or checksum-failing record and reports
 * how many bytes of durable prefix precede it. A torn tail is NOT
 * data loss — it is a request whose acceptance never reached the
 * client (mosaicd acks only after flush), so recovery discards it
 * and the client's retry resubmits.
 *
 * The writer tracks its flushed offset explicitly, which is what
 * lets the chaos tests simulate a kill precisely: a simulated crash
 * truncates the file to the flushed offset, dropping exactly the
 * bytes a real process death would have lost.
 */

#ifndef MOSAIC_CORE_REQUEST_LOG_HH_
#define MOSAIC_CORE_REQUEST_LOG_HH_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/status.hh"
#include "util/types.hh"
#include "workloads/access_sink.hh"

namespace mosaic
{

/** Record kinds; the log is open to non-translate control records. */
enum class LogRecordKind : std::uint8_t
{
    /** One translation request (vaddr + write flag). */
    Translate = 1,
};

/** One framed log record. */
struct LogRecord
{
    LogRecordKind kind = LogRecordKind::Translate;
    bool write = false;

    /** Per-session sequence number; dense from 0 in submit order. */
    std::uint64_t seq = 0;

    Addr vaddr = 0;

    bool operator==(const LogRecord &) const = default;
};

/** Serialized size of one record on disk. */
constexpr std::size_t logRecordBytes = 24;

/** Append-only writer with an explicit flushed-offset watermark. */
class RequestLogWriter
{
  public:
    RequestLogWriter() = default;
    ~RequestLogWriter();

    RequestLogWriter(const RequestLogWriter &) = delete;
    RequestLogWriter &operator=(const RequestLogWriter &) = delete;

    /**
     * Create (truncate) the log at @p path and write the header.
     * The header counts toward flushedBytes only after flush().
     */
    Status open(const std::string &path,
                const std::string &fingerprint);

    /**
     * Re-open an existing log for appending after @p durable_bytes
     * (recovery: the durable prefix was just replayed; appends
     * continue where it ended, dropping any torn tail).
     */
    Status openForAppend(const std::string &path,
                         std::uint64_t durable_bytes);

    /** Append one record (buffered; durable only after flush()). */
    Status append(const LogRecord &record);

    /** Push buffered records to the OS and advance the watermark. */
    Status flush();

    /** Bytes guaranteed durable against process death. */
    std::uint64_t flushedBytes() const { return flushedBytes_; }

    /** Bytes appended (flushed or not). */
    std::uint64_t writtenBytes() const { return writtenBytes_; }

    bool isOpen() const { return file_ != nullptr; }

    /**
     * Simulated process death: close the file and truncate it to
     * the flushed watermark, losing exactly the unflushed suffix.
     */
    void crash();

    /** Flush and close cleanly. */
    void close();

  private:
    std::FILE *file_ = nullptr;
    std::string path_;
    std::uint64_t writtenBytes_ = 0;
    std::uint64_t flushedBytes_ = 0;
};

/** The durable contents of one request log. */
struct RequestLogContents
{
    std::vector<LogRecord> records;

    /** Bytes of durable prefix (header + whole valid records). */
    std::uint64_t durableBytes = 0;

    /** True when a torn/corrupt tail was discarded after the
     *  durable prefix. */
    bool tornTail = false;
};

/**
 * Read a request log. NotFound when absent, DataLoss when the header
 * is foreign or the fingerprint mismatches (a log from a different
 * configuration must not replay), Ok otherwise — a torn tail is
 * reported in the result, not as an error (see file comment).
 */
Result<RequestLogContents> readRequestLog(
    const std::string &path, const std::string &fingerprint);

/**
 * The RequestLog seam on the touch-sink path: tees every access
 * into a log (with self-assigned dense seq) before forwarding to
 * the inner sink. Lets any workload run be captured as a replayable
 * request log, and is what mosaicd's recovery drives replay through.
 * Append/flush failures surface through status() — the stream keeps
 * flowing to the inner sink (degraded, like a failed telemetry
 * write), and callers that need the log decide what to do.
 */
class LoggingSink : public AccessSink
{
  public:
    LoggingSink(RequestLogWriter &log, AccessSink &inner)
        : log_(log), inner_(inner)
    {
    }

    void
    access(Addr vaddr, bool write) override
    {
        if (status_.ok()) {
            status_ = log_.append(LogRecord{
                LogRecordKind::Translate, write, nextSeq_, vaddr});
        }
        ++nextSeq_;
        inner_.access(vaddr, write);
    }

    void
    flush() override
    {
        if (status_.ok())
            status_ = log_.flush();
        inner_.flush();
    }

    /** First append/flush failure, sticky; Ok while healthy. */
    const Status &status() const { return status_; }

  private:
    RequestLogWriter &log_;
    AccessSink &inner_;
    std::uint64_t nextSeq_ = 0;
    Status status_;
};

} // namespace mosaic

#endif // MOSAIC_CORE_REQUEST_LOG_HH_
