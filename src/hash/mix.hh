/**
 * @file
 * Small mixing functions: a strong 64-bit finalizer and a
 * deliberately weak multiplicative hash used only by the hash-quality
 * ablation benchmark (to show why Mosaic needs a good hash family).
 */

#ifndef MOSAIC_HASH_MIX_HH_
#define MOSAIC_HASH_MIX_HH_

#include <cstdint>

namespace mosaic
{

/** MurmurHash3 fmix64: a fast, high-quality 64-bit finalizer. */
constexpr std::uint64_t
mix64(std::uint64_t k)
{
    k ^= k >> 33;
    k *= 0xFF51AFD7ED558CCDull;
    k ^= k >> 33;
    k *= 0xC4CEB9FE1A85EC53ull;
    k ^= k >> 33;
    return k;
}

/**
 * Fibonacci (multiplicative) hashing. Adequate for sequential keys,
 * but its outputs for probe offset k are strongly correlated, which
 * the ablation shows causes early associativity conflicts.
 */
constexpr std::uint64_t
weakMultiplicativeHash(std::uint64_t k, unsigned probe = 0)
{
    return (k + probe) * 0x9E3779B97F4A7C15ull;
}

} // namespace mosaic

#endif // MOSAIC_HASH_MIX_HH_
