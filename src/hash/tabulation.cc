#include "hash/tabulation.hh"

#include "util/random.hh"

namespace mosaic
{

TabulationHash::TabulationHash(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &table : tables_) {
        for (auto &entry : table)
            entry = static_cast<std::uint32_t>(splitmix64(sm));
    }
}

std::uint32_t
TabulationHash::hash(std::uint64_t key, unsigned k) const
{
    std::uint32_t h = 0;
    for (unsigned i = 0; i < numTables; ++i) {
        const auto byte = static_cast<unsigned>((key >> (8 * i)) & 0xFF);
        h ^= tables_[i][(byte + k) & 0xFF];
    }
    return h;
}

void
TabulationHash::hashMany(std::uint64_t key, std::span<std::uint32_t> out) const
{
    for (auto &h : out)
        h = 0;
    for (unsigned i = 0; i < numTables; ++i) {
        const auto byte = static_cast<unsigned>((key >> (8 * i)) & 0xFF);
        for (unsigned k = 0; k < out.size(); ++k)
            out[k] ^= tables_[i][(byte + k) & 0xFF];
    }
}

std::uint32_t
TabulationHash::tableEntry(unsigned table, unsigned index) const
{
    return tables_.at(table).at(index & 0xFF);
}

} // namespace mosaic
