#include "hash/tabulation.hh"

#include <cassert>

#include "util/random.hh"

namespace mosaic
{

TabulationHash::TabulationHash(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    // The base 256 entries must be drawn in exactly this order — the
    // hash function (and every placement digest derived from it) is
    // defined by it. The mirrored tail is a copy, not fresh draws.
    for (auto &table : tables_) {
        for (unsigned e = 0; e < tableEntries; ++e)
            table[e] = static_cast<std::uint32_t>(splitmix64(sm));
        for (unsigned j = 0; j + 1 < maxProbes; ++j)
            table[tableEntries + j] = table[j];
    }
}

std::uint32_t
TabulationHash::hash(std::uint64_t key, unsigned k) const
{
    std::uint32_t h = 0;
    for (unsigned i = 0; i < numTables; ++i) {
        const auto byte = static_cast<unsigned>((key >> (8 * i)) & 0xFF);
        h ^= tables_[i][(byte + k) & 0xFF];
    }
    return h;
}

void
TabulationHash::hashMany(std::uint64_t key, std::span<std::uint32_t> out) const
{
    for (auto &h : out)
        h = 0;
    for (unsigned i = 0; i < numTables; ++i) {
        const auto byte = static_cast<unsigned>((key >> (8 * i)) & 0xFF);
        for (unsigned k = 0; k < out.size(); ++k)
            out[k] ^= tables_[i][(byte + k) & 0xFF];
    }
}

void
TabulationHash::probeAll(std::uint64_t key, std::span<std::uint32_t> out) const
{
    assert(out.size() <= maxProbes &&
           "probeAll batch exceeds the mirrored window");
    std::uint32_t acc[maxProbes] = {};
    for (unsigned i = 0; i < numTables; ++i) {
        const auto byte = static_cast<unsigned>((key >> (8 * i)) & 0xFF);
        // One read per table: the window [byte, byte + out.size())
        // is contiguous thanks to the mirrored tail, and equals the
        // (byte + k) mod 256 entries hash() would fetch one by one.
        const std::uint32_t *window = &tables_[i][byte];
        for (unsigned k = 0; k < out.size(); ++k)
            acc[k] ^= window[k];
    }
    probeTableReads_ += numTables;
    for (unsigned k = 0; k < out.size(); ++k)
        out[k] = acc[k];
}

std::uint32_t
TabulationHash::tableEntry(unsigned table, unsigned index) const
{
    return tables_.at(table).at(index & 0xFF);
}

} // namespace mosaic
