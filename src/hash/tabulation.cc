#include "hash/tabulation.hh"

#include <cassert>

#include "util/random.hh"

namespace mosaic
{

TabulationHash::TabulationHash(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    // The base 256 entries must be drawn in exactly this order — the
    // hash function (and every placement digest derived from it) is
    // defined by it. The mirrored tail is a copy, not fresh draws.
    for (auto &table : tables_) {
        for (unsigned e = 0; e < tableEntries; ++e)
            table[e] = static_cast<std::uint32_t>(splitmix64(sm));
        for (unsigned j = 0; j + 1 < maxProbes; ++j)
            table[tableEntries + j] = table[j];
    }
}

std::uint32_t
TabulationHash::hash(std::uint64_t key, unsigned k) const
{
    std::uint32_t h = 0;
    for (unsigned i = 0; i < numTables; ++i) {
        const auto byte = static_cast<unsigned>((key >> (8 * i)) & 0xFF);
        h ^= tables_[i][(byte + k) & 0xFF];
    }
    return h;
}

void
TabulationHash::hashMany(std::uint64_t key, std::span<std::uint32_t> out) const
{
    for (auto &h : out)
        h = 0;
    for (unsigned i = 0; i < numTables; ++i) {
        const auto byte = static_cast<unsigned>((key >> (8 * i)) & 0xFF);
        for (unsigned k = 0; k < out.size(); ++k)
            out[k] ^= tables_[i][(byte + k) & 0xFF];
    }
}

void
TabulationHash::probeAll(std::uint64_t key, std::span<std::uint32_t> out) const
{
    assert(out.size() <= maxProbes &&
           "probeAll batch exceeds the mirrored window");
    if (out.empty())
        return; // no probes requested: no table port activity
    std::uint32_t acc[maxProbes] = {};
    for (unsigned i = 0; i < numTables; ++i) {
        const auto byte = static_cast<unsigned>((key >> (8 * i)) & 0xFF);
        // One read per table: the window [byte, byte + out.size())
        // is contiguous thanks to the mirrored tail, and equals the
        // (byte + k) mod 256 entries hash() would fetch one by one.
        const std::uint32_t *window = &tables_[i][byte];
        for (unsigned k = 0; k < out.size(); ++k)
            acc[k] ^= window[k];
    }
    probeTableReads_ += numTables;
    for (unsigned k = 0; k < out.size(); ++k)
        out[k] = acc[k];
}

namespace
{

/**
 * Sweep with the probe width fixed at compile time: per key, the full
 * 8-table accumulation runs in a register-resident accumulator (the
 * unrolled window XOR vectorizes), and the result is stored once —
 * no read-modify-write passes over the output array. Bit-identical to
 * the runtime-width loop below — only the codegen differs.
 */
template <unsigned W, typename Tables>
void
sweepFixedWidth(const Tables &tables, std::span<const std::uint64_t> keys,
                std::uint32_t *out)
{
    std::uint32_t *acc = out;
    for (const std::uint64_t key : keys) {
        std::uint32_t h[W] = {};
        for (unsigned i = 0; i < TabulationHash::numTables; ++i) {
            const auto byte =
                static_cast<unsigned>((key >> (8 * i)) & 0xFF);
            const std::uint32_t *window = &tables[i][byte];
            for (unsigned k = 0; k < W; ++k)
                h[k] ^= window[k];
        }
        for (unsigned k = 0; k < W; ++k)
            acc[k] = h[k];
        acc += W;
    }
}

} // namespace

void
TabulationHash::probeAllMany(std::span<const std::uint64_t> keys,
                             unsigned width, std::uint32_t *out) const
{
    assert(width <= maxProbes &&
           "probeAllMany batch exceeds the mirrored window");
    if (width == 0 || keys.empty())
        return;
    // Each key consumes one window read per table, so the per-key
    // cost equals the scalar probeAll() bound. Common widths dispatch
    // to a fixed-width sweep whose window XOR unrolls; the fallback
    // is a table-major sweep that amortizes the table working set
    // across the block. Both are bit-identical to per-key probeAll().
    switch (width) {
    case 7:
        sweepFixedWidth<7>(tables_, keys, out);
        break;
    case 8:
        sweepFixedWidth<8>(tables_, keys, out);
        break;
    default:
        for (std::size_t j = 0; j < keys.size() * width; ++j)
            out[j] = 0;
        for (unsigned i = 0; i < numTables; ++i) {
            const auto &table = tables_[i];
            std::uint32_t *acc = out;
            for (const std::uint64_t key : keys) {
                const auto byte =
                    static_cast<unsigned>((key >> (8 * i)) & 0xFF);
                const std::uint32_t *window = &table[byte];
                for (unsigned k = 0; k < width; ++k)
                    acc[k] ^= window[k];
                acc += width;
            }
        }
        break;
    }
    probeTableReads_ += std::uint64_t{numTables} * keys.size();
}

void
TabulationHash::hashKeys(std::span<const std::uint64_t> keys, unsigned k,
                         std::uint32_t *out) const
{
    for (std::size_t j = 0; j < keys.size(); ++j)
        out[j] = 0;
    for (unsigned i = 0; i < numTables; ++i) {
        const auto &table = tables_[i];
        for (std::size_t j = 0; j < keys.size(); ++j) {
            const auto byte =
                static_cast<unsigned>((keys[j] >> (8 * i)) & 0xFF);
            out[j] ^= table[(byte + k) & 0xFF];
        }
    }
}

std::uint32_t
TabulationHash::tableEntry(unsigned table, unsigned index) const
{
    return tables_.at(table).at(index & 0xFF);
}

} // namespace mosaic
