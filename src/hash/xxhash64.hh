/**
 * @file
 * A from-scratch implementation of the xxHash64 algorithm.
 *
 * The paper's Linux prototype hashes (ASID, VPN) pairs with xxHash,
 * "a fast hash algorithm available in the mainline Linux kernel"
 * (§3.2). We implement XXH64 from the published specification so the
 * OS-side experiments can use the same function family.
 */

#ifndef MOSAIC_HASH_XXHASH64_HH_
#define MOSAIC_HASH_XXHASH64_HH_

#include <cstddef>
#include <cstdint>

namespace mosaic
{

/** XXH64 of an arbitrary byte buffer. */
std::uint64_t xxhash64(const void *data, std::size_t len,
                       std::uint64_t seed = 0);

/** XXH64 of a single 64-bit word (the common Mosaic use). */
std::uint64_t xxhash64(std::uint64_t word, std::uint64_t seed = 0);

} // namespace mosaic

#endif // MOSAIC_HASH_XXHASH64_HH_
