#include "hash/xxhash64.hh"

#include <cstring>

namespace mosaic
{

namespace
{

constexpr std::uint64_t prime1 = 0x9E3779B185EBCA87ull;
constexpr std::uint64_t prime2 = 0xC2B2AE3D27D4EB4Full;
constexpr std::uint64_t prime3 = 0x165667B19E3779F9ull;
constexpr std::uint64_t prime4 = 0x85EBCA77C2B2AE63ull;
constexpr std::uint64_t prime5 = 0x27D4EB2F165667C5ull;

constexpr std::uint64_t
rotl(std::uint64_t x, int r)
{
    return (x << r) | (x >> (64 - r));
}

std::uint64_t
read64(const unsigned char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v; // little-endian hosts only, as in the Linux kernel use
}

std::uint32_t
read32(const unsigned char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

constexpr std::uint64_t
round64(std::uint64_t acc, std::uint64_t input)
{
    acc += input * prime2;
    acc = rotl(acc, 31);
    acc *= prime1;
    return acc;
}

constexpr std::uint64_t
mergeRound(std::uint64_t acc, std::uint64_t val)
{
    acc ^= round64(0, val);
    acc = acc * prime1 + prime4;
    return acc;
}

constexpr std::uint64_t
avalanche(std::uint64_t h)
{
    h ^= h >> 33;
    h *= prime2;
    h ^= h >> 29;
    h *= prime3;
    h ^= h >> 32;
    return h;
}

} // namespace

std::uint64_t
xxhash64(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    const unsigned char *end = p + len;
    std::uint64_t h;

    if (len >= 32) {
        std::uint64_t v1 = seed + prime1 + prime2;
        std::uint64_t v2 = seed + prime2;
        std::uint64_t v3 = seed;
        std::uint64_t v4 = seed - prime1;
        do {
            v1 = round64(v1, read64(p));
            v2 = round64(v2, read64(p + 8));
            v3 = round64(v3, read64(p + 16));
            v4 = round64(v4, read64(p + 24));
            p += 32;
        } while (p + 32 <= end);
        h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
        h = mergeRound(h, v1);
        h = mergeRound(h, v2);
        h = mergeRound(h, v3);
        h = mergeRound(h, v4);
    } else {
        h = seed + prime5;
    }

    h += static_cast<std::uint64_t>(len);

    while (p + 8 <= end) {
        h ^= round64(0, read64(p));
        h = rotl(h, 27) * prime1 + prime4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= static_cast<std::uint64_t>(read32(p)) * prime1;
        h = rotl(h, 23) * prime2 + prime3;
        p += 4;
    }
    while (p < end) {
        h ^= static_cast<std::uint64_t>(*p) * prime5;
        h = rotl(h, 11) * prime1;
        ++p;
    }

    return avalanche(h);
}

std::uint64_t
xxhash64(std::uint64_t word, std::uint64_t seed)
{
    return xxhash64(&word, sizeof(word), seed);
}

} // namespace mosaic
