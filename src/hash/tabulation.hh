/**
 * @file
 * Tabulation hashing with multi-output probing, as used on the Mosaic
 * TLB critical path (paper §3.1, Figure 4).
 *
 * The hash of a 64-bit input A is the XOR of one 32-bit table lookup
 * per input byte: H(A) = XOR_i T_i[byte_i(A)]. To obtain several
 * independent-enough hash functions from a single set of tables
 * (saving chip area), output k probes each table at an offset of k:
 * H_k(A) = XOR_i T_i[(byte_i(A) + k) mod 256].
 *
 * Mosaic evaluates 1 + d = 7 outputs per translation: H_0 selects the
 * front-yard bucket and H_1..H_6 the backyard candidates.
 */

#ifndef MOSAIC_HASH_TABULATION_HH_
#define MOSAIC_HASH_TABULATION_HH_

#include <array>
#include <cstdint>
#include <span>

namespace mosaic
{

/**
 * Simple tabulation hash over 64-bit keys with probed multi-output.
 *
 * The static tables are filled from a seeded PRNG at construction, so
 * two instances with the same seed compute identical functions — a
 * requirement for the OS and the simulated hardware to agree on page
 * placements.
 */
class TabulationHash
{
  public:
    /** Number of byte-indexed tables (one per input byte). */
    static constexpr unsigned numTables = 8;

    /** Entries per table (one per byte value). */
    static constexpr unsigned tableEntries = 256;

    /** Construct with tables filled from the given seed. */
    explicit TabulationHash(std::uint64_t seed = 1);

    /** Hash output k of the given key (probed lookup). */
    std::uint32_t hash(std::uint64_t key, unsigned k = 0) const;

    /**
     * Compute outputs 0..out.size()-1 of the key in one pass.
     * Mirrors the hardware, which reads all probe offsets from each
     * table in parallel and muxes the XOR results.
     */
    void hashMany(std::uint64_t key, std::span<std::uint32_t> out) const;

    /** Raw table entry, exposed for the Verilog generator. */
    std::uint32_t tableEntry(unsigned table, unsigned index) const;

  private:
    std::array<std::array<std::uint32_t, tableEntries>, numTables> tables_;
};

} // namespace mosaic

#endif // MOSAIC_HASH_TABULATION_HH_
