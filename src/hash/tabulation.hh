/**
 * @file
 * Tabulation hashing with multi-output probing, as used on the Mosaic
 * TLB critical path (paper §3.1, Figure 4).
 *
 * The hash of a 64-bit input A is the XOR of one 32-bit table lookup
 * per input byte: H(A) = XOR_i T_i[byte_i(A)]. To obtain several
 * independent-enough hash functions from a single set of tables
 * (saving chip area), output k probes each table at an offset of k:
 * H_k(A) = XOR_i T_i[(byte_i(A) + k) mod 256].
 *
 * Mosaic evaluates 1 + d = 7 outputs per translation: H_0 selects the
 * front-yard bucket and H_1..H_6 the backyard candidates. The batched
 * probeAll() path mirrors the hardware exactly: each table is read
 * once and yields every probe offset in the same pass.
 */

#ifndef MOSAIC_HASH_TABULATION_HH_
#define MOSAIC_HASH_TABULATION_HH_

#include <array>
#include <cstdint>
#include <span>

namespace mosaic
{

/**
 * Simple tabulation hash over 64-bit keys with probed multi-output.
 *
 * The static tables are filled from a seeded PRNG at construction, so
 * two instances with the same seed compute identical functions — a
 * requirement for the OS and the simulated hardware to agree on page
 * placements.
 */
class TabulationHash
{
  public:
    /** Number of byte-indexed tables (one per input byte). */
    static constexpr unsigned numTables = 8;

    /** Entries per table (one per byte value). */
    static constexpr unsigned tableEntries = 256;

    /** Largest probe batch probeAll() supports in one pass. */
    static constexpr unsigned maxProbes = 8;

    /** Construct with tables filled from the given seed. */
    explicit TabulationHash(std::uint64_t seed = 1);

    /** Hash output k of the given key (probed lookup). */
    std::uint32_t hash(std::uint64_t key, unsigned k = 0) const;

    /**
     * Compute outputs 0..out.size()-1 of the key in one pass.
     * Mirrors the hardware, which reads all probe offsets from each
     * table in parallel and muxes the XOR results.
     */
    void hashMany(std::uint64_t key, std::span<std::uint32_t> out) const;

    /**
     * Batched probe: outputs 0..out.size()-1 with exactly one read
     * per table (numTables = 8 reads total, independent of the probe
     * count). Requires out.size() <= maxProbes. The probe offsets
     * (byte + k) mod 256 land in a contiguous window because the
     * tables carry a mirrored tail (entries 256..256+maxProbes-2
     * duplicate entries 0..maxProbes-2), so one block read per table
     * covers all offsets — the software analogue of the hardware's
     * wide table port. Results are bit-identical to hash()/hashMany().
     */
    void probeAll(std::uint64_t key, std::span<std::uint32_t> out) const;

    /**
     * probeAll() over a whole block of keys in one table-by-table
     * sweep: for each table, every key's probe window is read before
     * moving to the next table, so the block amortizes the table
     * working set (8 tables x ~1 KiB) across all keys instead of
     * re-streaming it per key. Writes key-major output — key i's
     * probes land at out[i * width .. i * width + width) — and is
     * bit-identical to calling probeAll() per key. Accounting matches
     * the scalar bound exactly: numTables reads are charged per key,
     * so a block of B keys reports 8 * B reads. Requires
     * width <= maxProbes; width == 0 charges nothing.
     */
    void probeAllMany(std::span<const std::uint64_t> keys, unsigned width,
                      std::uint32_t *out) const;

    /**
     * Batched single-output hash: out[i] = hash(keys[i], k) for every
     * key, swept table by table like probeAllMany(). Matches the
     * scalar hash() accounting (none — hash() models the dedicated
     * single-port lookup, not the probe port).
     */
    void hashKeys(std::span<const std::uint64_t> keys, unsigned k,
                  std::uint32_t *out) const;

    /** Raw table entry, exposed for the Verilog generator. */
    std::uint32_t tableEntry(unsigned table, unsigned index) const;

    /** Cumulative table reads performed by probeAll() (testing). */
    std::uint64_t probeTableReads() const { return probeTableReads_; }

    /** Reset the probeAll() read counter (testing). */
    void resetProbeTableReads() { probeTableReads_ = 0; }

  private:
    // Each table carries maxProbes-1 mirrored entries past index 255
    // so a probe window starting at any byte stays contiguous.
    static constexpr unsigned paddedEntries =
        tableEntries + maxProbes - 1;

    std::array<std::array<std::uint32_t, paddedEntries>, numTables>
        tables_;
    mutable std::uint64_t probeTableReads_ = 0;
};

} // namespace mosaic

#endif // MOSAIC_HASH_TABULATION_HH_
