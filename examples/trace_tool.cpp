/**
 * @file
 * Trace utility: record any of the paper workloads to a binary trace
 * file, inspect a trace, or replay one through the dual-TLB
 * simulator — the trace-driven workflow architects use to sweep
 * designs without re-running workloads.
 *
 * Usage:
 *   trace_tool record <graph500|btree|gups|xsbench> <scale> <file>
 *   trace_tool info <file>
 *   trace_tool replay <file> [arity]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/translation_sim.hh"
#include "util/table.hh"
#include "workloads/factory.hh"
#include "workloads/trace_file.hh"

using namespace mosaic;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  %s record <graph500|btree|gups|xsbench> <scale> "
                 "<file>\n"
                 "  %s info <file>\n"
                 "  %s replay <file> [arity]\n",
                 argv0, argv0, argv0);
    return 2;
}

int
record(const std::string &name, double scale, const std::string &path)
{
    WorkloadKind kind;
    if (name == "graph500")
        kind = WorkloadKind::Graph500;
    else if (name == "btree")
        kind = WorkloadKind::BTree;
    else if (name == "gups")
        kind = WorkloadKind::Gups;
    else if (name == "xsbench")
        kind = WorkloadKind::XsBench;
    else
        return 2;

    const auto workload = makeFig6Workload(kind, scale);
    TraceWriter writer(path);
    workload->run(writer);
    writer.close();
    std::printf("recorded %llu references of %s (%.1f MiB footprint) "
                "to %s\n",
                static_cast<unsigned long long>(writer.records()),
                workloadName(kind).c_str(),
                workload->info().footprintBytes / (1024.0 * 1024.0),
                path.c_str());
    return 0;
}

int
info(const std::string &path)
{
    TraceReader reader(path);
    CountingSink sink;
    reader.replay(sink);
    std::printf("%s: %llu references, %llu writes (%.1f%%), pages "
                "[%llu, %llu], span %.1f MiB\n",
                path.c_str(),
                static_cast<unsigned long long>(sink.accesses()),
                static_cast<unsigned long long>(sink.writes()),
                100.0 * static_cast<double>(sink.writes()) /
                    static_cast<double>(sink.accesses()),
                static_cast<unsigned long long>(sink.minVpn()),
                static_cast<unsigned long long>(sink.maxVpn()),
                static_cast<double>(sink.maxVpn() - sink.minVpn()) *
                    pageSize / (1024.0 * 1024.0));
    return 0;
}

int
replay(const std::string &path, unsigned arity)
{
    // Size mosaic memory from the trace's page span.
    TraceReader probe(path);
    CountingSink extent;
    probe.replay(extent);

    TranslationSimConfig config;
    const std::uint64_t span_pages =
        extent.maxVpn() - extent.minVpn() + 1;
    config.memory.numFrames =
        ((span_pages * 13 / 10 + 4096) / 64 + 1) * 64;
    config.waysList = {8};
    config.arities = {arity};
    TranslationSim sim(config);

    TraceReader reader(path);
    reader.replay(sim);

    std::printf("replayed %llu references\n",
                static_cast<unsigned long long>(sim.totalAccesses()));
    std::printf("  vanilla TLB misses:  %s\n",
                withCommas(sim.vanillaStats(0).misses).c_str());
    std::printf("  mosaic-%u TLB misses: %s\n", arity,
                withCommas(sim.mosaicStats(0, 0).misses).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage(argv[0]);
    const std::string mode = argv[1];
    if (mode == "record" && argc == 5)
        return record(argv[2], std::atof(argv[3]), argv[4]);
    if (mode == "info" && argc == 3)
        return info(argv[2]);
    if (mode == "replay" && (argc == 3 || argc == 4))
        return replay(argv[2],
                      argc == 4
                          ? static_cast<unsigned>(std::atoi(argv[3]))
                          : 4);
    return usage(argv[0]);
}
