/**
 * @file
 * Quickstart: the mosaic-pages library in ~80 lines.
 *
 * Walks through the core pipeline by hand: hash a virtual page to
 * its candidate buckets, place it with the iceberg allocator, encode
 * the placement as a 7-bit CPFN, cache it in a mosaic TLB entry, and
 * translate through the TLB — printing each step.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "mem/frame_table.hh"
#include "mem/mosaic_allocator.hh"
#include "pt/mosaic_page_table.hh"
#include "tlb/mosaic_tlb.hh"

using namespace mosaic;

int
main()
{
    // Physical memory: 16 MiB = 4096 frames = 64 iceberg buckets of
    // 56 front-yard + 8 backyard slots (the paper's geometry).
    MemoryGeometry geometry;
    geometry.numFrames = 4096;
    MosaicAllocator allocator(geometry);
    FrameTable frames(geometry.numFrames);

    std::printf("mosaic pages quickstart\n");
    std::printf("memory: %zu frames, %zu buckets, associativity h=%u, "
                "CPFN bits=%u\n\n",
                geometry.numFrames, geometry.numBuckets(),
                geometry.associativity(),
                allocator.mapper().codec().bits());

    // A mosaic TLB with 64 entries, 4-way, arity 4, and the page
    // table whose leaves hold the tables of contents.
    const Cpfn unmapped = allocator.mapper().codec().invalid();
    MosaicTlb tlb(TlbGeometry{64, 4}, 4);
    MosaicPageTable page_table(4, unmapped);

    const Asid asid = 1;
    const auto no_ghosts = [](const Frame &) { return false; };

    // Map four virtually contiguous pages (one mosaic page).
    for (Vpn vpn = 0x400; vpn < 0x404; ++vpn) {
        const PageId id{asid, vpn};
        const CandidateSet cand = allocator.mapper().candidates(id);
        const auto placement = allocator.place(cand, frames, no_ghosts);
        if (!placement) {
            std::printf("associativity conflict (memory full)\n");
            return 1;
        }
        frames.map(placement->pfn, id, /*now=*/vpn);
        page_table.setCpfn(vpn, placement->cpfn);

        const auto decoded =
            allocator.mapper().codec().decode(placement->cpfn);
        std::printf("vpn 0x%llx -> front bucket %u, backyards "
                    "[%u %u %u %u %u %u] -> %s slot %u -> pfn 0x%llx "
                    "(CPFN 0x%02x)\n",
                    static_cast<unsigned long long>(vpn),
                    cand.frontBucket, cand.backBuckets[0],
                    cand.backBuckets[1], cand.backBuckets[2],
                    cand.backBuckets[3], cand.backBuckets[4],
                    cand.backBuckets[5],
                    decoded.front ? "front" : "backyard",
                    decoded.offset,
                    static_cast<unsigned long long>(placement->pfn),
                    placement->cpfn);
    }

    // One TLB fill covers the whole mosaic page.
    const MosaicWalkResult walk = page_table.walk(0x400);
    tlb.fill(asid, 0x400, walk.toc, unmapped);
    std::printf("\nfilled one TLB entry with the 4-slot table of "
                "contents\n");

    for (Vpn vpn = 0x400; vpn < 0x404; ++vpn) {
        const auto cpfn = tlb.lookup(asid, vpn);
        const CandidateSet cand =
            allocator.mapper().candidates(PageId{asid, vpn});
        std::printf("translate vpn 0x%llx: TLB %s, pfn 0x%llx\n",
                    static_cast<unsigned long long>(vpn),
                    cpfn ? "hit" : "miss",
                    cpfn ? static_cast<unsigned long long>(
                               allocator.mapper().toPfn(cand, *cpfn))
                         : 0ull);
    }

    std::printf("\nTLB stats: %llu accesses, %llu hits, %llu misses "
                "-> one entry now covers 16 KiB of discontiguous "
                "frames\n",
                static_cast<unsigned long long>(tlb.stats().accesses),
                static_cast<unsigned long long>(tlb.stats().hits),
                static_cast<unsigned long long>(tlb.stats().misses));
    return 0;
}
