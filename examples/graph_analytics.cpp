/**
 * @file
 * Graph analytics scenario: the workload class the paper leads with
 * (graph BFS with pointer-chasing over a multi-hundred-MiB working
 * set). Runs a Graph500 R-MAT BFS through the dual-TLB simulator
 * and reports how many TLB misses a mosaic TLB removes at each
 * arity, on otherwise identical hardware.
 *
 * Usage: graph_analytics [scale]
 *   scale (default 0.25) multiplies the graph size; 1.0 is a ~76 MiB
 *   footprint, the paper used ~1 GiB.
 */

#include <cstdio>
#include <cstdlib>

#include "core/experiments.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace mosaic;

int
main(int argc, char **argv)
{
    Fig6Options options;
    options.scale = argc > 1 ? std::atof(argv[1]) : 0.25;
    options.waysList = {8}; // a typical L2 TLB organization
    options.arities = {4, 8, 16, 32, 64};

    std::printf("graph analytics: BFS over an R-MAT graph "
                "(scale %.3g)\n\n", options.scale);
    const Fig6Result result = runFig6(WorkloadKind::Graph500, options);

    std::printf("footprint: %.1f MiB, %llu memory references\n",
                result.footprintBytes / (1024.0 * 1024.0),
                static_cast<unsigned long long>(result.accesses));

    const Fig6Row &row = result.rows.front();
    std::printf("\n8-way 1024-entry TLB:\n");
    std::printf("  vanilla TLB misses: %s\n",
                withCommas(row.vanillaMisses).c_str());
    for (std::size_t a = 0; a < result.arities.size(); ++a) {
        std::printf("  mosaic-%-2u misses:   %12s  (%.1f%% fewer)\n",
                    result.arities[a],
                    withCommas(row.mosaicMisses[a]).c_str(),
                    percentReduction(
                        static_cast<double>(row.vanillaMisses),
                        static_cast<double>(row.mosaicMisses[a])));
    }
    std::printf("\nEvery mosaic configuration uses the same number "
                "of TLB entries as the vanilla TLB; the reach comes "
                "from 7-bit compressed translations, not more "
                "hardware.\n");
    return 0;
}
