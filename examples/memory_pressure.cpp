/**
 * @file
 * Memory-pressure scenario: a database-style B+-tree index whose
 * footprint exceeds physical memory. Runs the same page-touch
 * stream through the Linux-like baseline VM and through Mosaic
 * (iceberg allocation + Horizon LRU) and compares swap traffic,
 * fault counts, and ghost-page activity — the §4.2/§4.3 story in
 * one program.
 *
 * Usage: memory_pressure [overcommit] [frames]
 *   overcommit (default 1.10): footprint / memory.
 *   frames     (default 16384): physical frames (64 MiB).
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/vm_touch_sink.hh"
#include "os/linux_vm.hh"
#include "os/mosaic_vm.hh"
#include "workloads/factory.hh"

using namespace mosaic;

int
main(int argc, char **argv)
{
    const double overcommit = argc > 1 ? std::atof(argv[1]) : 1.10;
    const auto frames = static_cast<std::size_t>(
        argc > 2 ? std::atol(argv[2]) : 16 * 1024);
    const auto footprint = static_cast<std::uint64_t>(
        static_cast<double>(frames) * pageSize * overcommit);

    std::printf("memory pressure: B+-tree index, %.0f MiB footprint "
                "on %.0f MiB of memory (%.0f%% over-committed)\n\n",
                footprint / (1024.0 * 1024.0),
                frames * pageSize / (1024.0 * 1024.0),
                (overcommit - 1.0) * 100.0);

    // Same workload instance semantics for both VMs.
    const auto make_workload = [&] {
        return makeFootprintWorkload(WorkloadKind::BTree, footprint, 42);
    };

    LinuxVmConfig linux_config;
    linux_config.numFrames = frames;
    LinuxVm linux_vm(linux_config);
    {
        VmTouchSink sink(linux_vm, 1);
        make_workload()->run(sink);
    }

    MosaicVmConfig mosaic_config;
    mosaic_config.geometry.numFrames = frames;
    MosaicVm mosaic_vm(mosaic_config);
    {
        VmTouchSink sink(mosaic_vm, 1);
        make_workload()->run(sink);
    }

    const VmStats &lx = linux_vm.stats();
    const VmStats &mo = mosaic_vm.stats();

    std::printf("%-28s %14s %14s\n", "", "Linux", "Mosaic");
    std::printf("%-28s %14llu %14llu\n", "swap-outs (pages)",
                (unsigned long long)lx.swapOuts,
                (unsigned long long)mo.swapOuts);
    std::printf("%-28s %14llu %14llu\n", "swap-ins (pages)",
                (unsigned long long)lx.swapIns,
                (unsigned long long)mo.swapIns);
    std::printf("%-28s %14llu %14llu\n", "major faults",
                (unsigned long long)lx.majorFaults,
                (unsigned long long)mo.majorFaults);
    std::printf("%-28s %14.2f %14.2f\n", "swap starts at (% util)",
                100.0 * lx.firstSwapOutUtilization,
                100.0 * mo.firstSwapOutUtilization);
    std::printf("%-28s %14s %14.2f\n", "first conflict (% util)", "-",
                100.0 * mo.firstConflictUtilization);
    std::printf("%-28s %14s %14llu\n", "ghost rescues", "-",
                (unsigned long long)mo.ghostRescues);
    std::printf("%-28s %14s %14llu\n", "ghost evictions", "-",
                (unsigned long long)mo.ghostEvictions);

    const double diff = lx.swapIo() == 0
        ? 0.0
        : 100.0 *
              (static_cast<double>(lx.swapIo()) -
               static_cast<double>(mo.swapIo())) /
              static_cast<double>(lx.swapIo());
    std::printf("\ntotal swap I/O: Linux %llu vs Mosaic %llu "
                "(%+.1f%% in Mosaic's favor)\n",
                (unsigned long long)lx.swapIo(),
                (unsigned long long)mo.swapIo(), diff);
    std::printf("\nMosaic's 104-frame mapping restriction did not "
                "show up until ~98%% utilization, and Horizon LRU's "
                "ghost pages recovered %llu re-references that "
                "strict eviction would have paid swap-ins for.\n",
                (unsigned long long)mo.ghostRescues);
    return 0;
}
