/**
 * @file
 * Multi-tenant scenario: several processes time-share one core and
 * one TLB — a graph-analytics job, a key-value store, and an HPC
 * kernel. Shows the mosaic TLB holding its advantage as tenants
 * stack (ASID tags avoid flushes; per-entry reach fights the
 * combined working set), plus memory-side isolation: every tenant's
 * pages land in its own hash-scattered frames.
 *
 * Usage: multi_tenant [scale] [quantum]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/translation_sim.hh"
#include "util/table.hh"
#include "workloads/factory.hh"

using namespace mosaic;

int
main(int argc, char **argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 0.125;
    const auto quantum = static_cast<std::size_t>(
        argc > 2 ? std::atol(argv[2]) : 50'000);

    const WorkloadKind tenants[] = {WorkloadKind::Graph500,
                                    WorkloadKind::KvStore,
                                    WorkloadKind::XsBench};

    std::printf("multi-tenant: 3 processes sharing a 1024-entry "
                "8-way TLB, %zu-access quanta\n\n", quantum);

    // Record each tenant's reference stream.
    std::vector<VectorSink> traces(std::size(tenants));
    std::uint64_t total_footprint = 0;
    for (std::size_t t = 0; t < std::size(tenants); ++t) {
        const auto workload =
            makeFig6Workload(tenants[t], scale, 42 + t);
        workload->run(traces[t]);
        total_footprint += workload->info().footprintBytes;
        std::printf("tenant %zu: %-8s footprint %6.1f MiB, %9zu "
                    "references\n",
                    t + 1, workloadName(tenants[t]).c_str(),
                    workload->info().footprintBytes / (1024.0 * 1024.0),
                    traces[t].trace().size());
    }

    TranslationSimConfig config;
    config.memory.numFrames =
        ((total_footprint / pageSize * 13 / 10 + 4096) / 64 + 1) * 64;
    config.waysList = {8};
    config.arities = {4, 16};
    TranslationSim sim(config);

    // Round-robin scheduling.
    std::vector<std::size_t> cursor(std::size(tenants), 0);
    bool work_left = true;
    std::uint64_t switches = 0;
    while (work_left) {
        work_left = false;
        for (std::size_t t = 0; t < std::size(tenants); ++t) {
            const auto &trace = traces[t].trace();
            if (cursor[t] >= trace.size())
                continue;
            sim.setActiveAsid(static_cast<Asid>(t + 1));
            ++switches;
            const std::size_t end =
                std::min(trace.size(), cursor[t] + quantum);
            for (; cursor[t] < end; ++cursor[t])
                sim.access(trace[cursor[t]].vaddr,
                           trace[cursor[t]].write);
            work_left = work_left || cursor[t] < trace.size();
        }
    }

    std::printf("\n%llu context switches, zero TLB flushes (ASID "
                "tags)\n\n",
                static_cast<unsigned long long>(switches));
    std::printf("%-14s %14s\n", "", "TLB misses");
    std::printf("%-14s %14s\n", "vanilla",
                withCommas(sim.vanillaStats(0).misses).c_str());
    std::printf("%-14s %14s\n", "mosaic-4",
                withCommas(sim.mosaicStats(0, 0).misses).c_str());
    std::printf("%-14s %14s\n", "mosaic-16",
                withCommas(sim.mosaicStats(0, 1).misses).c_str());
    std::printf("\nmemory: %llu pages demand-mapped through the "
                "iceberg allocator with zero conflicts at %.1f%% "
                "utilization\n",
                static_cast<unsigned long long>(sim.mappedPages()),
                100.0 * sim.mosaicFrames().utilization());
    return 0;
}
