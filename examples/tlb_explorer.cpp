/**
 * @file
 * TLB design-space explorer: run any of the four paper workloads
 * against a user-chosen grid of TLB associativities and mosaic
 * arities, printing the Figure 6-style miss matrix. Useful for
 * poking at configurations the paper didn't plot (e.g. tiny TLBs,
 * arity 2... er, 1).
 *
 * Usage: tlb_explorer [workload] [scale] [entries]
 *   workload: graph500|btree|gups|xsbench|kvstore (default graph500)
 *   scale:    workload size multiplier           (default 0.25)
 *   entries:  TLB entries                        (default 1024)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/experiments.hh"
#include "util/table.hh"

using namespace mosaic;

int
main(int argc, char **argv)
{
    WorkloadKind kind = WorkloadKind::Graph500;
    if (argc > 1) {
        const std::string name = argv[1];
        if (name == "btree")
            kind = WorkloadKind::BTree;
        else if (name == "gups")
            kind = WorkloadKind::Gups;
        else if (name == "xsbench")
            kind = WorkloadKind::XsBench;
        else if (name == "kvstore")
            kind = WorkloadKind::KvStore;
        else if (name != "graph500") {
            std::fprintf(stderr,
                         "usage: %s [graph500|btree|gups|xsbench|kvstore] "
                         "[scale] [entries]\n",
                         argv[0]);
            return 2;
        }
    }

    Fig6Options options;
    options.scale = argc > 2 ? std::atof(argv[2]) : 0.25;
    options.tlbEntries =
        argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 1024;
    options.waysList = {1, 2, 4, 8, options.tlbEntries};
    options.arities = {1, 4, 8, 16, 32, 64};

    std::printf("tlb explorer: %s, scale %.3g, %u-entry TLB\n",
                workloadName(kind).c_str(), options.scale,
                options.tlbEntries);

    const Fig6Result r = runFig6(kind, options);
    std::printf("footprint %.1f MiB, %llu references\n\n",
                r.footprintBytes / (1024.0 * 1024.0),
                static_cast<unsigned long long>(r.accesses));

    std::vector<std::string> headers{"assoc", "Vanilla"};
    for (const unsigned a : r.arities)
        headers.push_back("Mosaic-" + std::to_string(a));
    TextTable table(std::move(headers));
    for (const Fig6Row &row : r.rows) {
        table.beginRow();
        table.cell(row.ways == 1 ? std::string("Direct")
                                 : (row.ways >= options.tlbEntries
                                        ? std::string("Full")
                                        : std::to_string(row.ways) +
                                              "-Way"));
        table.cell(row.vanillaMisses);
        for (const std::uint64_t misses : row.mosaicMisses)
            table.cell(misses);
    }
    table.print(std::cout);

    std::printf("\nNote: Mosaic-1 isolates the encoding change "
                "(no reach gain); comparing it to Vanilla shows the "
                "pure cost/benefit of compressed entries.\n");
    return 0;
}
