/**
 * @file
 * Emits the synthesizable Verilog for the tabulation-hash circuit
 * that sits on the Mosaic TLB critical path (paper §4.4, Figure 4),
 * with the table contents of a concrete seeded hash instance, plus
 * the structural cost estimate for the chosen configuration.
 *
 * Usage: generate_verilog [num_hashes] [output.v]
 *   num_hashes: probed outputs to generate (default 7 = 1 + d)
 *   output.v:   file to write (default: stdout summary only)
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "hash/tabulation.hh"
#include "hwmodel/circuit_model.hh"
#include "hwmodel/verilog_gen.hh"

using namespace mosaic;

int
main(int argc, char **argv)
{
    VerilogOptions options;
    options.numHashes =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 7;

    const TabulationHash hash(/*seed=*/1);
    const std::string verilog = generateVerilog(hash, options);

    CircuitParams params;
    params.numHashes = options.numHashes;
    const TabulationCircuitModel model(params);
    const FpgaCost fpga = model.fpga();
    const AsicCost asic = model.asic();

    std::printf("tabulation hash circuit, H = %u probed outputs\n",
                options.numHashes);
    std::printf("  FPGA estimate: %llu LUTs, %llu registers, "
                "%.3f ns (%.0f MHz)\n",
                (unsigned long long)fpga.luts,
                (unsigned long long)fpga.registers, fpga.latencyNs,
                fpga.maxFrequencyMhz());
    std::printf("  28nm estimate: %.0f ps (%.1f GHz), %.3f kGE\n",
                asic.latencyPs, asic.maxFrequencyGhz(), asic.areaKge);
    std::printf("  RTL size: %zu bytes\n", verilog.size());

    if (argc > 2) {
        std::ofstream out(argv[2]);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n", argv[2]);
            return 1;
        }
        out << verilog;
        std::printf("  wrote %s\n", argv[2]);
        // Companion self-checking testbench.
        const std::string tb_path = std::string(argv[2]) + "_tb.v";
        std::ofstream tb(tb_path);
        tb << generateTestbench(hash, options, 128);
        std::printf("  wrote %s (128 self-checking vectors)\n",
                    tb_path.c_str());
    } else {
        std::printf("\n(pass an output path to write the RTL; "
                    "printing the module header)\n\n");
        std::cout << verilog.substr(0, verilog.find(");")) << ");\n";
    }
    return 0;
}
